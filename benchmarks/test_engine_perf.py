"""Benchmark: engine backends on the analytic 56-point paper grid.

Covers the engine's acceptance bar: on a cold cache, the ``thread``
backend (which shares the process, its registries, and the in-memory LRU
tier) evaluates the analytic grid at least 1.5x faster than the
``process`` backend — per-point cost here is far below process pool
start-up and IPC overhead — and a warm re-run on the same engine
performs zero pipeline evaluations (every point is served from the LRU
tier without touching disk).
"""

import time

from repro.engine import Engine, evaluate_job
from repro.sweep import ResultCache, SweepSpec

#: 4 capacities x 2 flows x 7 bandwidths = 56 design points.
GRID = SweepSpec(bandwidths=(2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))

_EVALUATIONS = []


def _counting_evaluate(job):
    """In-process evaluation wrapper counting every real pipeline run."""
    _EVALUATIONS.append(job.key)
    return evaluate_job(job)


def _cold_run_seconds(backend: str, tmp_path, rounds: int = 3) -> float:
    """Best-of-``rounds`` cold wall time for one backend (fresh cache each)."""
    best = float("inf")
    for i in range(rounds):
        cache = ResultCache(tmp_path / f"{backend}-{i}")
        engine = Engine(backend=backend, workers=4, cache=cache)
        t0 = time.perf_counter()
        outcome = engine.run(GRID.jobs())
        best = min(best, time.perf_counter() - t0)
        assert outcome.stats.evaluated == len(GRID)
        assert outcome.stats.failed == 0
    return best


def test_thread_backend_beats_process_on_analytic_grid(tmp_path):
    assert len(GRID) == 56
    t_thread = _cold_run_seconds("thread", tmp_path)
    t_process = _cold_run_seconds("process", tmp_path)
    print(f"\ncold 56-point grid: thread {t_thread * 1e3:.1f}ms   "
          f"process {t_process * 1e3:.1f}ms   "
          f"ratio {t_process / t_thread:.2f}x")
    assert t_thread * 1.5 <= t_process, (
        f"thread backend should be >= 1.5x faster on the analytic grid "
        f"(thread {t_thread:.3f}s vs process {t_process:.3f}s)"
    )


def test_warm_rerun_performs_zero_evaluations(tmp_path):
    _EVALUATIONS.clear()
    engine = Engine(
        backend="thread",
        workers=4,
        cache=ResultCache(tmp_path),
        evaluate=_counting_evaluate,
    )
    cold = engine.run(GRID.jobs())
    assert cold.stats.evaluated == len(GRID)
    assert len(_EVALUATIONS) == len(GRID)

    t0 = time.perf_counter()
    warm = engine.run(GRID.jobs())
    t_warm = time.perf_counter() - t0
    assert len(_EVALUATIONS) == len(GRID)  # not one more pipeline run
    assert warm.stats.evaluated == 0
    assert warm.stats.memory_hits == len(GRID)  # LRU tier, disk untouched
    assert warm.stats.disk_hits == 0
    assert warm.points() == cold.points()
    print(f"\nwarm 56-point re-run: {t_warm * 1e3:.2f}ms, "
          f"0 evaluations, {warm.stats.memory_hits} LRU hits")
