"""Benchmark: regenerate Figure 6 (matmul cycle-count speedup surface).

Sweeps SPM capacity x off-chip bandwidth through the phase-level cycle
model and prints the speedup surface with the paper's headline numbers.
"""

from repro.experiments import fig6, paper_data


def test_fig6(benchmark):
    points = benchmark(fig6.run)
    print()
    print(fig6.format_rows(points))
    headline = fig6.speedup_8mib_over_1mib(points)
    for bw, expected in paper_data.FIG6_SPEEDUP_8MIB_OVER_1MIB.items():
        assert abs(headline[bw] - expected) < 0.02
