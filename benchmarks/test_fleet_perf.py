"""Benchmark: cross-scenario fleet batching vs serial fast simulation.

Races :class:`~repro.simulator.fleet.FleetEngine` (the structure-of-
arrays engine behind the ``batched`` execution backend) against a serial
loop of :class:`~repro.simulator.fast.FastEngine` runs over the same
scenario grids.  Assertions cover **correctness only** (every lane
verified and bit-identical to its serial twin); timings are printed and
recorded in ``BENCH_fleet.json`` — a trajectory artifact the benchmarks
CI job uploads and ``repro trajectory append --fleet`` folds into the
tracked trajectory — so speed regressions show up in the log without
failing the job on shared-runner timing variance.

The headline grid is 256 one-core lanes of seed-varied dot products:
equal program lengths keep every lane in lockstep, which is the shape
sweeps and search generations produce (many variations of one workload
family) and where the ≥ 3x acceptance number lives.  The multi-core and
mixed-dimension grids record honest secondary numbers for batches whose
lanes retire at different cycles.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.kernels.workloads import prepare_dotp
from repro.obs.report import stamp_bench
from repro.simulator.fast import FastEngine
from repro.simulator.fleet import FleetEngine

ARTIFACT = Path("BENCH_fleet.json")

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _warmup():
    """One tiny fleet so import costs stay out of the races."""
    config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)
    lanes = [prepare_dotp(config, 16, 1, seed=s)[0] for s in range(2)]
    FleetEngine(lanes).run()


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the speedup artifact after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    payload = stamp_bench({
        "benchmark": "fleet batched-vs-fast",
        "generated_unix": int(time.time()),
        "results": _RESULTS,
    })
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")


def _snapshot(cluster, result):
    """Everything the acceptance gate calls 'byte-identical per lane'."""
    snap = {"result": (result.cycles, result.instructions,
                       result.barrier_episodes)}
    for i, core in enumerate(cluster.cores):
        stats = core.stats
        snap[f"core{i}"] = (
            core.export_state()["regs"], stats.cycles, stats.instructions,
            stats.load_stall_cycles, stats.store_stall_cycles,
            stats.barrier_stall_cycles, stats.icache_stall_cycles,
            stats.branch_stall_cycles, stats.conflict_retries,
        )
    router = cluster.router.stats
    snap["router"] = (router.local_accesses, router.group_accesses,
                      router.cluster_accesses, router.bank_conflicts,
                      router.port_conflicts)
    for t, tile in enumerate(cluster.tiles):
        for b, bank in enumerate(tile.spm.banks):
            snap[f"bank{t}.{b}"] = (bank.busy_cycle, bank.stats.reads,
                                    bank.stats.writes, bank.stats.conflicts,
                                    tuple(bank.export_words()))
    return snap


def _race(name: str, make_lanes, rounds: int = 2) -> None:
    """Min-of-``rounds`` race on fresh clusters; asserts correctness only."""
    serial_best = fleet_best = float("inf")
    identical = True
    verified = 0
    for _ in range(rounds):
        serial_lanes = make_lanes()
        fleet_lanes = make_lanes()

        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            serial_results = [
                FastEngine(cluster).run() for cluster, _fin in serial_lanes
            ]
            serial_best = min(serial_best, time.perf_counter() - t0)

            t0 = time.perf_counter()
            outcomes = FleetEngine(
                [cluster for cluster, _fin in fleet_lanes]
            ).run()
            fleet_best = min(fleet_best, time.perf_counter() - t0)
        finally:
            gc.enable()

        assert all(out.error is None for out in outcomes)
        for (s_cluster, _s), s_res, (f_cluster, f_fin), out in zip(
            serial_lanes, serial_results, fleet_lanes, outcomes
        ):
            run = f_fin(out.result)
            assert run.correct
            verified += 1
            if _snapshot(s_cluster, s_res) != _snapshot(
                f_cluster, out.result
            ):
                identical = False
    assert identical, f"{name}: fleet lanes diverged from FastEngine"
    speedup = serial_best / max(fleet_best, 1e-9)
    _RESULTS[name] = {
        "lanes": len(make_lanes()),
        "serial_s": round(serial_best, 4),
        "batched_s": round(fleet_best, 4),
        "speedup": round(speedup, 2),
        "identical": identical,
        "lanes_verified": verified,
    }
    print(f"\n{name}: serial {serial_best:.3f}s, fleet {fleet_best:.3f}s "
          f"-> {speedup:.2f}x ({verified} lanes verified, bit-identical)")


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


def test_lockstep_grid_256(config):
    """The headline: 256 seed-varied one-core dotp lanes in lockstep."""
    _race("lockstep_256x1core", lambda: [
        prepare_dotp(config, 512, 1, seed=s) for s in range(256)
    ])


def test_lockstep_grid_64(config):
    """The ≥32-lane acceptance shape at a smaller, CI-friendlier width."""
    _race("lockstep_64x1core", lambda: [
        prepare_dotp(config, 256, 1, seed=s) for s in range(64)
    ])


def test_multicore_batch(config):
    """16-core lanes: intra-lane barriers, honest secondary number."""
    _race("multicore_32x16core", lambda: [
        prepare_dotp(config, 256, 16, seed=s) for s in range(32)
    ])


def test_mixed_dims_batch(config):
    """Lanes of different program lengths retire at different cycles."""
    _race("mixed_dims_64x1core", lambda: [
        prepare_dotp(config, 128 + 4 * i, 1, seed=i) for i in range(64)
    ])
