"""Benchmark: regenerate Figure 8 (energy-efficiency gain @ 16 B/cycle).

Energy efficiency = kernel executions per joule; the paper reports gains
relative to MemPool-2D-1MiB with 3D-over-2D annotations per capacity.
"""

from repro.core.metrics import gain
from repro.experiments import fig789, paper_data


def test_fig8(benchmark):
    rows = benchmark(fig789.run)
    by_key = {(r.flow, r.capacity_mib): r for r in rows}
    print()
    print(f"{'config':>18} {'eff gain':>9} {'3D vs 2D':>9} {'paper':>8}")
    for row in rows:
        annotation = paper = ""
        if row.flow == "3D":
            rel = gain(
                row.metrics.energy_efficiency,
                by_key[("2D", row.capacity_mib)].metrics.energy_efficiency,
            )
            annotation = f"{rel * 100:+8.1f}%"
            paper = f"{paper_data.FIG8_3D_VS_2D_GAIN[row.capacity_mib] * 100:+7.1f}%"
        print(
            f"MemPool-{row.flow}-{row.capacity_mib}MiB".rjust(18)
            + f" {row.efficiency_gain * 100:+8.1f}% {annotation:>9} {paper:>8}"
        )
    # Shape assertions: 3D beats 2D per capacity; 2D degrades with capacity.
    for cap in (1, 2, 4, 8):
        assert (
            by_key[("3D", cap)].efficiency_gain > by_key[("2D", cap)].efficiency_gain
        )
    assert by_key[("2D", 8)].efficiency_gain < by_key[("2D", 1)].efficiency_gain
