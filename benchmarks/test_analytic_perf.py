"""Benchmark: the calibrated analytic tier vs fast vs batched evaluation.

Two questions, one artifact (``BENCH_analytic.json``):

* **Accuracy** — re-fit every registered predictor from scratch and
  record its full residual distribution; the *structural* assertion is
  that each achieved probe error honours the predictor's declared bound
  (the tier-0 accuracy contract).  ``repro trajectory append
  --analytic`` folds the artifact into the tracked trajectory, where
  ``trajectory check`` gates on ``all_within_bound`` — never on timing.
* **Throughput** — evaluate the paper's full 56-point grid (4
  capacities x 2 flows x 7 bandwidths) through calibrated predictions
  and race that against a serial fast-engine loop and a FleetEngine
  batch over a subset, recording points/sec for all three tiers.  The
  acceptance floor (>= 50x over serial fast) is asserted here with a
  few-hundred-x margin; wall-clock numbers themselves are recorded,
  not gated.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro.analytic import calibrate, predict_cycles
from repro.analytic.store import _reset_stores
from repro.analytic.tier import analytic_engine
from repro.api import Scenario
from repro.api.registry import WORKLOADS, available_predictors
from repro.core.config import Flow, MemPoolConfig
from repro.kernels.workloads import prepare_dotp
from repro.obs.report import stamp_bench
from repro.simulator.fleet import FleetEngine

ARTIFACT = Path("BENCH_analytic.json")

#: The paper's exhaustive sweep axes (fig. 7-9).
GRID_CAPACITIES = (1, 2, 4, 8)
GRID_FLOWS = ("2D", "3D")
GRID_BANDWIDTHS = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Problem size of the throughput grid (off the dotp calibration dims).
GRID_DIM = 2048

#: Valid starting dims per workload (calibrate() swaps in its own dims).
SEED_DIMS = {
    "matmul": 16, "dotp": 512, "axpy": 512,
    "conv2d": 18, "matvec": 56, "stencil5": 18,
}

_RESULTS: dict[str, dict] = {}


def _grid():
    return [
        Scenario(capacity_mib=cap, flow=flow, bandwidth=bw,
                 matrix_dim=GRID_DIM, workload="dotp")
        for cap in GRID_CAPACITIES
        for flow in GRID_FLOWS
        for bw in GRID_BANDWIDTHS
    ]


@pytest.fixture(scope="module", autouse=True)
def _fresh_stores():
    """Benchmark fits its own calibrations, isolated from other modules."""
    _reset_stores()
    yield
    _reset_stores()


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the error/throughput artifact after the benchmarks ran."""
    yield
    if not _RESULTS:
        return
    payload = stamp_bench({
        "benchmark": "analytic tier-0 vs fast vs batched",
        "generated_unix": int(time.time()),
        "workloads": _RESULTS.get("workloads", {}),
        "throughput": _RESULTS.get("throughput", {}),
    })
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")


def test_error_distribution_within_declared_bounds():
    """Re-fit every predictor and record its residual distribution."""
    rows = {}
    for workload in available_predictors():
        scenario = Scenario(
            capacity_mib=1, flow="2D", bandwidth=16.0,
            matrix_dim=SEED_DIMS[workload], workload=workload,
        )
        record = calibrate(workload, scenario)
        rows[workload] = {
            "error_bound": record.error_bound,
            "achieved_error": round(record.achieved_error, 5),
            "within_bound": record.within_bound,
            "factor": round(record.factor, 4),
            "residuals": {d: round(e, 5)
                          for d, e in sorted(record.residuals.items())},
        }
        # The structural gate: accuracy is contractual, timing is not.
        assert record.within_bound, (
            f"{workload}: achieved {record.achieved_error:.3f} > "
            f"declared bound {record.error_bound:.3f}"
        )
    _RESULTS["workloads"] = rows
    print("\nachieved calibration error per workload:")
    for name, row in sorted(rows.items()):
        print(f"  {name:10s} {row['achieved_error']:.4f} "
              f"(bound {row['error_bound']:.2f})")


def test_throughput_56_point_grid_vs_fast_vs_batched():
    """Tier-0 evaluates the full paper grid; fast/batched race a subset."""
    grid = _grid()
    subset = [s for s in grid if s.capacity_mib == 1 and s.flow == "2D"]

    # Warm every (workload, arch-class) calibration the grid needs so
    # the timed loop measures prediction serving, not one-time fits.
    with analytic_engine():
        for cap in GRID_CAPACITIES:
            assert predict_cycles(
                grid[0].replace(capacity_mib=cap)
            ) is not None

    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        with analytic_engine():
            predictions = [predict_cycles(s) for s in grid]
        analytic_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        simulated = [float(WORKLOADS.get("dotp")(s)) for s in subset]
        fast_s = time.perf_counter() - t0

        lanes = [
            prepare_dotp(
                MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D),
                GRID_DIM, 256, seed=i,
            )
            for i in range(len(subset))
        ]
        t0 = time.perf_counter()
        outcomes = FleetEngine([cluster for cluster, _fin in lanes]).run()
        batched_s = time.perf_counter() - t0
    finally:
        gc.enable()

    assert all(p is not None for p in predictions)
    assert all(out.error is None for out in outcomes)
    for (_cluster, finish), out in zip(lanes, outcomes):
        assert finish(out.result).correct
    # Tier-0 accuracy sanity on the live grid: every prediction lands
    # within the declared dotp bound of its simulated twin.
    bound = 0.05
    for scenario, measured in zip(subset, simulated):
        with analytic_engine():
            predicted = predict_cycles(scenario)
        assert abs(predicted - measured) / measured <= bound

    analytic_pps = len(grid) / max(analytic_s, 1e-9)
    fast_pps = len(subset) / max(fast_s, 1e-9)
    batched_pps = len(lanes) / max(batched_s, 1e-9)
    speedup = analytic_pps / fast_pps
    _RESULTS["throughput"] = {
        "grid_points": len(grid),
        "analytic_s": round(analytic_s, 5),
        "analytic_points_per_s": round(analytic_pps, 1),
        "fast_points": len(subset),
        "fast_s": round(fast_s, 4),
        "fast_points_per_s": round(fast_pps, 2),
        "batched_points": len(lanes),
        "batched_s": round(batched_s, 4),
        "batched_points_per_s": round(batched_pps, 2),
        "speedup_vs_fast": round(speedup, 1),
    }
    print(f"\n56-point grid: analytic {analytic_pps:,.0f} pts/s, "
          f"fast {fast_pps:.1f} pts/s, batched {batched_pps:.1f} pts/s "
          f"-> {speedup:,.0f}x vs serial fast")
    # The acceptance floor, with a few-hundred-x margin: a warm
    # prediction is arithmetic, a fast-engine point is a simulation.
    assert speedup >= 50.0
