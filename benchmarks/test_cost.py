"""Benchmark: implementation-cost analysis (Section V-A's cost remark).

The paper notes the *combined* die area is the metric relevant for cost.
This bench turns that into money: dies per wafer, Murphy yield, bonding
yield, and cost per good unit, for every configuration.
"""

from repro.core.config import CAPACITIES_MIB, Flow, MemPoolConfig
from repro.physical.cost import analyze_cost, cost_ratio_3d_over_2d
from repro.physical.flow2d import implement_group_2d
from repro.physical.flow3d import implement_group_3d


def run_cost_table():
    out = {}
    for cap in CAPACITIES_MIB:
        g2 = implement_group_2d(MemPoolConfig(cap, Flow.FLOW_2D))
        g3 = implement_group_3d(MemPoolConfig(cap, Flow.FLOW_3D))
        out[cap] = (g2, analyze_cost(g2), g3, analyze_cost(g3))
    return out


def test_cost_table(benchmark):
    table = benchmark(run_cost_table)
    print()
    print(f"{'cap':>4} {'2D mm2':>7} {'2D yld':>7} {'2D $':>7} "
          f"{'3D mm2x2':>8} {'3D yld':>7} {'3D $':>7} {'ratio':>6}")
    for cap, (g2, c2, g3, c3) in table.items():
        ratio = cost_ratio_3d_over_2d(g3, g2)
        print(f"{cap:>3}M {c2.die_area_mm2:7.1f} {c2.unit_yield:7.3f} "
              f"{c2.cost_per_good_unit_usd:7.2f} {c3.die_area_mm2:8.1f} "
              f"{c3.unit_yield:7.3f} {c3.cost_per_good_unit_usd:7.2f} {ratio:6.2f}")
        # 3D units cost more (two dies + bonding), but well under 2x:
        # each die is smaller and yields better.
        assert 1.0 < ratio < 2.0
    # The cost overhead shrinks with capacity, tracking the combined-area
    # overhead of Table II (+33 % at 1 MiB down to +9-16 % at 8 MiB).
    ratios = [cost_ratio_3d_over_2d(t[2], t[0]) for t in table.values()]
    assert ratios == sorted(ratios, reverse=True)
