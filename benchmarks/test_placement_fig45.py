"""Benchmark: Figures 4-5 mechanisms (channels, congestion, floorplans).

Prints the channel widths of the 2D and 3D groups (the paper: 3D channels
are ~18 % narrower), the congestion hot-spot figures of Figure 4, and the
memory-die floorplan arrays of Figure 3.
"""

from repro.core.config import CAPACITIES_MIB, Flow, MemPoolConfig
from repro.experiments import table2
from repro.physical.flow2d import implement_group_2d
from repro.physical.flow3d import implement_group_3d, memory_die_array


def run_placements():
    g2 = implement_group_2d(MemPoolConfig(8, Flow.FLOW_2D))
    g3 = implement_group_3d(MemPoolConfig(8, Flow.FLOW_3D))
    return g2, g3


def test_channels_and_congestion(benchmark):
    g2, g3 = benchmark(run_placements)
    w2 = g2.placement.channels.total_width_um
    w3 = g3.placement.channels.total_width_um
    print()
    print(f"2D channel total width: {w2:7.1f} um")
    print(f"3D channel total width: {w3:7.1f} um  ({(1 - w3 / w2) * 100:.1f}% narrower; paper ~18%)")
    print(f"2D center-channel demand: {g2.congestion.center_demand:.2f}")
    print(f"3D center-channel demand: {g3.congestion.center_demand:.2f}")
    for cap in CAPACITIES_MIB:
        array = memory_die_array(MemPoolConfig(cap, Flow.FLOW_3D))
        print(f"3D-{cap}MiB memory die: {array.rows}x{array.cols} array of {array.count} macros")
    assert 0.13 < 1 - w3 / w2 < 0.23
    array8 = memory_die_array(MemPoolConfig(8, Flow.FLOW_3D))
    assert {array8.rows, array8.cols} == {5, 3}
