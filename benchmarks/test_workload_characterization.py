"""Benchmark: workload characterization table on the cycle simulator.

Quantifies MemPool's architectural premise: a word-interleaved shared L1
keeps streaming kernels nearly conflict-free while most accesses are
remote-but-cheap (the 3/5-cycle classes).
"""

from repro.experiments.workloads_table import format_rows, run


def test_workload_characterization(benchmark):
    rows = benchmark.pedantic(lambda: run((4, 16)), iterations=1, rounds=2)
    print()
    print(format_rows(rows))
    streaming = [r for r in rows if r.kernel != "matvec"]
    assert all(r.conflict_rate < 0.08 for r in streaming)
