"""Benchmark: sweep engine vs the serial explorer, plus cache-hit resume.

Covers the subsystem's acceptance bar: a >= 50-point grid swept with 4
workers produces results identical to the serial ``Explorer`` for the
shared points, and a second invocation completes purely from the
content-addressed cache with zero re-evaluations.
"""

import time

from repro.core.explorer import Explorer
from repro.sweep import ResultCache, SweepExecutor, SweepSpec, record_to_point

#: 4 capacities x 2 flows x 7 bandwidths = 56 design points.
BANDWIDTHS = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)
GRID = SweepSpec(bandwidths=BANDWIDTHS)


def test_parallel_sweep_matches_serial_explorer(tmp_path):
    assert len(GRID) >= 50

    t0 = time.perf_counter()
    serial_points = {
        (bw, p.config.name): p
        for bw in BANDWIDTHS
        for p in Explorer(bandwidth=bw).explore()
    }
    t_serial = time.perf_counter() - t0

    cache = ResultCache(tmp_path)
    t0 = time.perf_counter()
    outcome = SweepExecutor(cache=cache, workers=4).run(GRID)
    t_parallel = time.perf_counter() - t0

    assert outcome.stats.evaluated == len(GRID)
    assert outcome.stats.failed == 0
    for record in outcome.ok_records:
        point = record_to_point(record)
        assert point == serial_points[(record["job"]["bandwidth"], point.config.name)]

    print(f"\nserial explorer {len(GRID)} pts: {t_serial:.2f}s   "
          f"parallel sweep: {t_parallel:.2f}s   "
          f"ratio {t_serial / t_parallel:.2f}x")


def test_cached_resweep_is_near_free(tmp_path, benchmark):
    cache = ResultCache(tmp_path)
    cold = SweepExecutor(cache=cache, workers=4).run(GRID)
    assert cold.stats.evaluated == len(GRID)

    warm = benchmark.pedantic(
        lambda: SweepExecutor(cache=cache, workers=4).run(GRID),
        iterations=1,
        rounds=3,
    )
    assert warm.stats.evaluated == 0
    assert warm.stats.cached == len(GRID)
    assert warm.points() == cold.points()
    speedup = cold.stats.duration_s / max(warm.stats.duration_s, 1e-9)
    print(f"\ncold sweep {cold.stats.duration_s:.2f}s -> "
          f"warm resweep {warm.stats.duration_s * 1e3:.1f}ms "
          f"({speedup:.0f}x)")
    assert warm.stats.duration_s < cold.stats.duration_s
