"""Ablation benchmarks: isolate the mechanisms behind the headline results.

Each ablation switches off one modeled mechanism and reports how the
Table II outcomes move:

* **closure noise off** — the purely mechanistic timing model (monotone
  frequency degradation; the paper's 2D-8MiB "lucky run" disappears);
* **F2F channel blockage off** — 3D channels shrink to the raw BEOL
  supply ratio, overstating the 3D footprint advantage;
* **shared-BEOL critical RC vs per-stack RC** — how much of the 3D
  frequency gain survives if critical routes pay the thin-stack penalty;
* **scoreboard vs blocking loads** — simulator-level CPI impact.
"""

import repro.physical.placement as placement
from repro.core.config import Flow, MemPoolConfig
from repro.core.metrics import normalize
from repro.kernels.matmul import run_matmul
from repro.physical.calibration import Calibration
from repro.physical.flow2d import implement_group_2d
from repro.physical.flow3d import implement_group_3d


def run_pair(capacity, calibration=None):
    kwargs = {}
    if calibration is not None:
        kwargs["calibration"] = calibration
    g2 = implement_group_2d(MemPoolConfig(capacity, Flow.FLOW_2D), **kwargs)
    g3 = implement_group_3d(MemPoolConfig(capacity, Flow.FLOW_3D), **kwargs)
    return g2, g3


def test_ablation_closure_noise(benchmark):
    """Without P&R noise the 2D frequency column degrades monotonically."""

    def run():
        mechanistic = Calibration(closure_adjust_ps={})
        freqs = {}
        for cap in (1, 2, 4, 8):
            g2, g3 = run_pair(cap, mechanistic)
            freqs[cap] = (g2.timing.frequency_mhz, g3.timing.frequency_mhz)
        return freqs

    freqs = benchmark(run)
    print()
    f2 = [freqs[c][0] for c in (1, 2, 4, 8)]
    f3 = [freqs[c][1] for c in (1, 2, 4, 8)]
    print("mechanistic 2D MHz:", [round(f) for f in f2])
    print("mechanistic 3D MHz:", [round(f) for f in f3])
    assert f2 == sorted(f2, reverse=True), "2D degradation must be monotone"
    assert f3 == sorted(f3, reverse=True), "3D degradation must be monotone"
    for a, b in zip(f2, f3):
        assert b > a, "3D stays faster at every capacity"


def test_ablation_f2f_blockage(benchmark):
    """Removing F2F landing-pad blockage over-shrinks the 3D channels."""

    def run():
        baseline = implement_group_3d(MemPoolConfig(1, Flow.FLOW_3D))
        original = placement.F2F_CHANNEL_BLOCKAGE
        placement.F2F_CHANNEL_BLOCKAGE = 0.0
        try:
            unblocked = implement_group_3d(MemPoolConfig(1, Flow.FLOW_3D))
        finally:
            placement.F2F_CHANNEL_BLOCKAGE = original
        return baseline, unblocked

    baseline, unblocked = benchmark(run)
    w_base = baseline.placement.channels.total_width_um
    w_free = unblocked.placement.channels.total_width_um
    print(f"\n3D channel width: {w_base:.0f} um with blockage, {w_free:.0f} um without")
    assert w_free < w_base
    assert unblocked.footprint_um2 < baseline.footprint_um2
    # Without blockage the channel ratio vs 2D drops well below the
    # paper's ~0.82.
    g2 = implement_group_2d(MemPoolConfig(1, Flow.FLOW_2D))
    ratio = w_free / g2.placement.channels.total_width_um
    print(f"channel ratio vs 2D without blockage: {ratio:.2f} (paper ~0.82)")
    assert ratio < 0.75


def test_ablation_sram_path_fraction(benchmark):
    """The SRAM path share drives the capacity-frequency slope."""
    from repro.physical.calibration import TimingCalibration

    def run():
        out = {}
        for fraction in (0.45, 0.90):
            cal = Calibration(
                timing=TimingCalibration(sram_path_fraction=fraction),
                closure_adjust_ps={},
            )
            g1 = implement_group_3d(MemPoolConfig(1, Flow.FLOW_3D), calibration=cal)
            g8 = implement_group_3d(MemPoolConfig(8, Flow.FLOW_3D), calibration=cal)
            out[fraction] = g1.timing.frequency_mhz / g8.timing.frequency_mhz
        return out

    slowdowns = benchmark(run)
    print(f"\n3D 1->8 MiB frequency ratio: {slowdowns}")
    assert slowdowns[0.90] > slowdowns[0.45], "steeper SRAM share, steeper slope"


def test_ablation_scoreboard(benchmark):
    """Non-blocking loads cut the simulated matmul CPI substantially."""
    config = MemPoolConfig(1, Flow.FLOW_2D)

    def run():
        blocking = run_matmul(config, n=16, num_cores=8, scoreboard=False)
        scoreboarded = run_matmul(config, n=16, num_cores=8, scoreboard=True)
        return blocking, scoreboarded

    blocking, scoreboarded = benchmark.pedantic(run, iterations=1, rounds=2)
    print(
        f"\nblocking CPI/MAC {blocking.cpi_mac:.2f} -> "
        f"scoreboard {scoreboarded.cpi_mac:.2f} (paper kernel ~2.9)"
    )
    assert scoreboarded.correct and blocking.correct
    assert scoreboarded.cpi_mac < 0.75 * blocking.cpi_mac


def test_ablation_double_buffering(benchmark):
    """Overlapping memory/compute phases vs the paper's serial schedule."""
    from repro.core.config import PAPER_MATRIX_DIM
    from repro.kernels.phases import (
        double_buffered_cycles,
        double_buffered_plan,
        matmul_cycles,
    )
    from repro.kernels.tiling import paper_tiling
    from repro.simulator.memsys import OffChipMemory, PAPER_BANDWIDTH_SWEEP

    def run():
        out = {}
        for bw in PAPER_BANDWIDTH_SWEEP:
            memory = OffChipMemory(bandwidth_bytes_per_cycle=bw)
            serial = matmul_cycles(paper_tiling(1), memory).total
            db = double_buffered_cycles(
                double_buffered_plan(PAPER_MATRIX_DIM, 1 << 20), memory
            ).total
            out[bw] = serial / db
        return out

    gains = benchmark(run)
    print()
    for bw, gain in gains.items():
        print(f"  double buffering @ {bw:>2} B/cyc: {gain:.3f}x over serial (1 MiB)")
    # Big win when starved, shrinking with bandwidth.
    assert gains[4] > 1.2
    assert gains[4] > gains[64]
