"""Benchmark: regenerate Table II (group implementation results).

Implements all eight groups through the full physical pipeline (netlist,
placement, wire length, congestion, buffering, timing, power) and prints
every Table II row next to the paper's values.
"""

from repro.experiments import table2


def test_table2(benchmark):
    rows = benchmark(table2.run)
    print()
    print(table2.format_rows(rows))
    assert len(rows) == 8
    for row in rows:
        assert row.modeled.frequency == row.modeled.frequency  # not NaN
        assert abs(row.modeled.footprint - row.paper_footprint) / row.paper_footprint < 0.05
        assert abs(row.modeled.frequency - row.paper_frequency) < 0.01
