"""Benchmark: guided search vs the exhaustive grid, plus cached re-search.

Covers the subsystem's acceptance bar: on the paper's 56-point space the
evolutionary strategy recovers the exhaustive grid's Pareto-best EDP and
energy points while spending at most half the grid's evaluations, and a
re-search against the same content-addressed cache performs zero new
evaluations (which is what makes ``repro search --resume`` free after a
kill).
"""

import time

from repro.search import Searcher, paper_space
from repro.sweep import ResultCache, SweepExecutor, SweepSpec, record_to_point

#: The exhaustive reference: 4 capacities x 2 flows x 7 bandwidths.
GRID = SweepSpec(bandwidths=(2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))


def _grid_optima():
    outcome = SweepExecutor().run(GRID)
    assert outcome.stats.failed == 0
    points = [record_to_point(r) for r in outcome.ok_records]
    return {
        "edp": min(p.edp for p in points),
        "energy_efficiency": max(p.energy_efficiency for p in points),
        "energy_j": min(p.kernel.energy_j for p in points),
    }


def test_evolutionary_recovers_grid_optima_at_half_the_evaluations(tmp_path):
    assert len(GRID) == 56
    best = _grid_optima()

    t0 = time.perf_counter()
    outcome = Searcher(
        paper_space(),
        objectives=("edp", "energy_efficiency"),
        strategy="evolutionary",
        budget=len(GRID) // 2,
        cache=ResultCache(tmp_path),
    ).run()
    duration = time.perf_counter() - t0

    assert outcome.stats.evaluated <= len(GRID) // 2
    found_edp = outcome.best("edp").objectives["edp"]
    found_eff = outcome.best("energy_efficiency").objectives[
        "energy_efficiency"
    ]
    assert found_edp == best["edp"]
    assert found_eff == best["energy_efficiency"]
    # Max executions/J and min J/execution rank identically, so the
    # search also recovered the grid's minimum-energy point.
    best_energy = min(
        record_to_point(c.record).kernel.energy_j
        for c in outcome.ok_candidates
    )
    assert best_energy == best["energy_j"]

    print(f"\nevolutionary {outcome.stats.proposed} evals "
          f"(grid: {len(GRID)}) in {duration:.2f}s -> "
          f"edp {found_edp:.4e}, eff {found_eff:.4e} (both grid-optimal)")


def test_cached_research_performs_zero_new_evaluations(tmp_path, benchmark):
    cache = ResultCache(tmp_path)

    def search():
        return Searcher(
            paper_space(),
            objectives=("edp", "energy_efficiency"),
            strategy="evolutionary",
            budget=28,
            cache=cache,
        ).run()

    cold = search()
    assert cold.stats.evaluated == 28

    warm = benchmark.pedantic(search, iterations=1, rounds=3)
    assert warm.stats.evaluated == 0
    assert warm.stats.cached == 28
    assert [c.key for c in warm.candidates] == [c.key for c in cold.candidates]
    speedup = cold.stats.duration_s / max(warm.stats.duration_s, 1e-9)
    print(f"\ncold search {cold.stats.duration_s * 1e3:.0f}ms -> "
          f"warm re-search {warm.stats.duration_s * 1e3:.0f}ms "
          f"({speedup:.1f}x, zero re-evaluations)")
