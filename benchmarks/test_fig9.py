"""Benchmark: regenerate Figure 9 (EDP variation @ 16 B/cycle).

EDP = kernel energy x runtime; lower is better.  The paper's optimum is
MemPool-3D-1MiB at -15.6 % below the baseline (our power fit puts
MemPool-3D-2MiB in a statistical tie).
"""

from repro.core.metrics import gain
from repro.experiments import fig789, paper_data


def test_fig9(benchmark):
    rows = benchmark(fig789.run)
    by_key = {(r.flow, r.capacity_mib): r for r in rows}
    print()
    print(f"{'config':>18} {'EDP var':>9} {'3D vs 2D':>9} {'paper':>8}")
    for row in rows:
        annotation = paper = ""
        if row.flow == "3D":
            rel = gain(row.metrics.edp, by_key[("2D", row.capacity_mib)].metrics.edp)
            annotation = f"{rel * 100:+8.1f}%"
            paper = f"{paper_data.FIG9_3D_EDP_VARIATION[row.capacity_mib] * 100:+7.1f}%"
        print(
            f"MemPool-{row.flow}-{row.capacity_mib}MiB".rjust(18)
            + f" {row.edp_variation * 100:+8.1f}% {annotation:>9} {paper:>8}"
        )
    best = fig789.best_edp_configuration(rows)
    print(f"\nEDP optimum: {best} (paper: MemPool-3D-1MiB)")
    assert best in ("MemPool-3D-1MiB", "MemPool-3D-2MiB")
    for cap in (1, 2, 4, 8):
        rel = gain(by_key[("3D", cap)].metrics.edp, by_key[("2D", cap)].metrics.edp)
        expected = paper_data.FIG9_3D_EDP_VARIATION[cap]
        assert abs(rel - expected) < 0.06
