"""Benchmark: warm-cache request throughput of the job-API service.

Runs the full 56-point paper grid through ``POST /v1/runs`` once to warm
the shared tiered cache, then hammers the sync endpoint from several
concurrent keep-alive clients.  Assertions cover **correctness only**
(every warm response is cache-sourced, and the engine performed exactly
one evaluation per design point — zero duplicates); the requests/second
figure is printed and recorded in ``BENCH_service.json``, the trajectory
artifact the benchmarks CI job uploads, so throughput regressions show
up in the log without failing the job on timing variance.
"""

import json
import threading
import time
from pathlib import Path

import pytest

from repro.client import ServiceClient
from repro.service import ReproService
from repro.obs.report import stamp_bench
from repro.sweep import SweepSpec

ARTIFACT = Path("BENCH_service.json")

#: 4 capacities x 2 flows x 7 bandwidths = 56 design points.
GRID = SweepSpec(bandwidths=(2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))

#: Concurrent keep-alive clients x sync requests each.
CLIENTS = 4
REQUESTS_PER_CLIENT = 400

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the throughput trajectory after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    payload = stamp_bench({
        "benchmark": "service warm-cache throughput",
        "generated_unix": int(time.time()),
        "results": _RESULTS,
    })
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")


def _count_evaluations(service: ReproService) -> list:
    """Wrap the service engine's evaluate to log every real pipeline run."""
    evaluations = []
    inner = service.engine.evaluate

    def counting_evaluate(job):
        evaluations.append(job.key)
        return inner(job)

    service.engine.evaluate = counting_evaluate
    return evaluations


def test_warm_sync_runs_sustain_thousands_of_requests(tmp_path):
    assert len(GRID) == 56
    scenarios = [job.scenario().to_dict() for job in GRID.jobs()]

    service = ReproService(port=0, cache_dir=str(tmp_path / "cache"))
    evaluations = _count_evaluations(service)
    with service.run_in_thread() as url:
        # Cold pass: one request evaluates the whole grid and fills the
        # shared tiered cache (memory LRU + disk JSONL).
        cold = ServiceClient(url).run(scenarios)
        assert len(cold) == len(scenarios)
        assert all(record["status"] == "ok" for record in cold)
        assert len(evaluations) == len(scenarios)

        # Warm pass: several keep-alive clients issue single-scenario
        # sync requests round-robin over the grid.
        sources = []
        errors = []

        def hammer(offset: int) -> None:
            client = ServiceClient(url)
            mine = []
            try:
                for i in range(REQUESTS_PER_CLIENT):
                    scenario = scenarios[(offset + i) % len(scenarios)]
                    (record,) = client.run([scenario])
                    mine.append(record["source"])
            except Exception as exc:  # surfaced below, not swallowed
                errors.append(exc)
            sources.extend(mine)

        threads = [
            threading.Thread(target=hammer, args=(k * 7,))
            for k in range(CLIENTS)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0

    assert not errors, errors[0]
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(sources) == total
    # Every warm response came from the cache, and the engine never
    # re-evaluated a point: zero duplicate evaluations.
    assert set(sources) == {"cache"}
    assert len(evaluations) == len(scenarios)
    assert len(set(evaluations)) == len(evaluations)

    rps = total / elapsed
    print(f"\nwarm sync /v1/runs: {total} requests over {CLIENTS} "
          f"connections in {elapsed:.2f}s = {rps:,.0f} req/s "
          f"(evaluations: {len(evaluations)}, duplicates: 0)")
    _RESULTS["warm_sync_runs"] = {
        "grid_points": len(scenarios),
        "clients": CLIENTS,
        "requests": total,
        "seconds": round(elapsed, 4),
        "requests_per_s": round(rps, 1),
        "evaluations": len(evaluations),
        "duplicate_evaluations": 0,
    }


def test_warm_sweep_job_streams_the_grid_from_cache(tmp_path):
    """A submitted sweep over a warm cache streams every record as a
    cache hit; records/s is recorded alongside the sync figure."""
    service = ReproService(port=0, cache_dir=str(tmp_path / "cache"))
    evaluations = _count_evaluations(service)
    with service.run_in_thread() as url:
        client = ServiceClient(url)
        cold_id = client.submit_sweep(GRID)
        assert client.wait(cold_id, timeout_s=120)["state"] == "done"
        assert len(evaluations) == len(GRID)

        t0 = time.perf_counter()
        warm_id = client.submit_sweep(GRID)
        records = list(client.iter_results(warm_id))
        elapsed = time.perf_counter() - t0

    assert len(records) == len(GRID)
    assert {record["source"] for record in records} == {"cache"}
    assert len(evaluations) == len(GRID)  # nothing re-evaluated

    rps = len(records) / elapsed
    print(f"\nwarm streamed sweep: {len(records)} records in "
          f"{elapsed:.2f}s = {rps:,.0f} records/s (0 re-evaluations)")
    _RESULTS["warm_streamed_sweep"] = {
        "records": len(records),
        "seconds": round(elapsed, 4),
        "records_per_s": round(rps, 1),
        "re_evaluations": 0,
    }
