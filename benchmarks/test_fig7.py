"""Benchmark: regenerate Figure 7 (matmul performance gain @ 16 B/cycle).

Combines the Figure 6 cycle model with every group's achieved frequency
and prints the performance gains relative to MemPool-2D-1MiB, including
the per-capacity 3D-over-2D annotations.
"""

from repro.experiments import fig789, paper_data


def test_fig7(benchmark):
    rows = benchmark(fig789.run)
    print()
    print(f"{'config':>18} {'perf gain':>10} {'3D vs 2D':>9} {'paper':>8}")
    for row in rows:
        annotation = paper = ""
        if row.flow == "3D":
            annotation = f"{row.gain_3d_over_2d * 100:+8.1f}%"
            paper = f"{paper_data.FIG7_3D_VS_2D_GAIN[row.capacity_mib] * 100:+7.1f}%"
        print(
            f"MemPool-{row.flow}-{row.capacity_mib}MiB".rjust(18)
            + f" {row.performance_gain * 100:+9.1f}% {annotation:>9} {paper:>8}"
        )
    for row in rows:
        if row.flow == "3D":
            expected = paper_data.FIG7_3D_VS_2D_GAIN[row.capacity_mib]
            assert abs(row.gain_3d_over_2d - expected) < 0.01
