"""Benchmark: cycle-level simulator throughput, fast path vs reference.

Races the fast SoA engine against the reference cycle-by-cycle engine on
every simulator-backed workload (dotp/axpy/conv2d/matvec/stencil5), the
16x16/16-core blocked matmul, and the full blocked-matmul schedule.
Assertions cover **correctness only** (verified results, bit-identical
cycle counts); timings are printed and recorded in ``BENCH_sim.json`` —
a trajectory artifact the benchmarks CI job uploads — so speed
regressions show up in the log without ever failing the job on timing
variance.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.kernels.blocked import run_blocked_matmul
from repro.kernels.matmul import run_matmul
from repro.kernels.tiling import TilingPlan
from repro.kernels.workloads import (
    run_axpy,
    run_conv2d,
    run_dotp,
    run_matvec,
    run_stencil5,
)
from repro.obs.report import stamp_bench
from repro.simulator.memsys import OffChipMemory

ARTIFACT = Path("BENCH_sim.json")

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _warmup():
    """One tiny run per engine so imports/JIT-warm costs stay out of races."""
    config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)
    for engine in ("reference", "fast"):
        run_matmul(config, n=4, num_cores=4, sim_engine=engine)


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the speedup trajectory after the module's benchmarks ran."""
    yield
    if not _RESULTS:
        return
    payload = stamp_bench({
        "benchmark": "simulator fast-vs-reference",
        "generated_unix": int(time.time()),
        "workloads": _RESULTS,
    })
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")


def _race(name: str, runner, rounds: int = 3) -> None:
    """Time ``runner(engine)`` on both engines; assert equivalence only.

    Takes the best of ``rounds`` runs per engine so scheduler noise on
    shared CI runners does not distort the recorded trajectory.
    """
    timings = {}
    runs = {}
    for engine in ("reference", "fast"):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            runs[engine] = runner(engine)
            best = min(best, time.perf_counter() - t0)
        timings[engine] = best
    ref, fast = runs["reference"], runs["fast"]
    assert ref.correct and fast.correct
    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
    speedup = timings["reference"] / max(timings["fast"], 1e-9)
    _RESULTS[name] = {
        "reference_s": round(timings["reference"], 4),
        "fast_s": round(timings["fast"], 4),
        "speedup": round(speedup, 2),
        "cycles": int(ref.cycles),
    }
    print(f"\n{name}: reference {timings['reference']:.3f}s, "
          f"fast {timings['fast']:.3f}s -> {speedup:.2f}x "
          f"({ref.cycles} cycles, bit-identical)")


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


@pytest.mark.parametrize("workload", [
    "dotp", "axpy", "conv2d", "matvec", "stencil5",
])
def test_workload_fast_vs_reference(config, workload):
    runners = {
        "dotp": lambda e: run_dotp(config, 1024, 16, sim_engine=e),
        "axpy": lambda e: run_axpy(config, 1024, 16, sim_engine=e),
        "conv2d": lambda e: run_conv2d(config, 24, 24, 16, sim_engine=e),
        "matvec": lambda e: run_matvec(config, 48, 48, 16, sim_engine=e),
        "stencil5": lambda e: run_stencil5(config, 24, 24, 16, sim_engine=e),
    }
    _race(workload, runners[workload])


def test_blocked_matmul_fast_vs_reference(config):
    """The headline number: 16x16 blocked matmul on 16 cores."""
    _race("matmul16x16", lambda e: run_matmul(
        config, n=16, num_cores=16, blocked=True, sim_engine=e,
    ), rounds=5)


def test_blocked_schedule_fast_vs_reference(config):
    """Full memory/compute/writeback schedule, scoreboarded cores."""
    plan = TilingPlan(matrix_dim=16, tile_size=8, word_bytes=4)

    class _Shim:
        def __init__(self, run):
            self.cycles = run.total_cycles
            self.instructions = run.phases  # schedule-level invariant
            self.correct = run.correct

    _race("blocked_schedule", lambda e: _Shim(run_blocked_matmul(
        config, plan, OffChipMemory(), num_cores=16, sim_engine=e,
    )))


def test_blocked_matmul_simulation(benchmark):
    """Absolute throughput of the default (fast) engine, tracked."""
    config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)
    run = benchmark.pedantic(
        lambda: run_matmul(config, n=16, num_cores=16, blocked=True),
        iterations=1,
        rounds=3,
    )
    assert run.correct
    print(f"\n16x16 matmul on 16 cores: {run.cycles} cycles, "
          f"CPI/MAC {run.cpi_mac:.2f}")
