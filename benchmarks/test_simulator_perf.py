"""Benchmark: cycle-level simulator throughput.

Not a paper artifact, but the substrate every kernel measurement rests on:
benchmarks the instruction-level simulation rate of the blocked matmul and
verifies the result against numpy inside the benchmarked body.
"""

from repro.core.config import Flow, MemPoolConfig
from repro.kernels.matmul import run_matmul


def test_blocked_matmul_simulation(benchmark):
    config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)
    run = benchmark.pedantic(
        lambda: run_matmul(config, n=16, num_cores=16, blocked=True),
        iterations=1,
        rounds=3,
    )
    assert run.correct
    print(f"\n16x16 matmul on 16 cores: {run.cycles} cycles, CPI/MAC {run.cpi_mac:.2f}")
