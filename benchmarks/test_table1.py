"""Benchmark: regenerate Table I (tile implementation results).

Runs the tile implementation for all eight configurations and prints the
reproduced table next to the paper's values.
"""

from repro.experiments import table1


def test_table1(benchmark):
    rows = benchmark(table1.run)
    print()
    print(table1.format_rows(rows))
    assert len(rows) == 8
    for row in rows:
        assert abs(row.footprint_error) < 0.10
