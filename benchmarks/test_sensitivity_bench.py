"""Benchmark: bandwidth-sensitivity extension (optimal capacity crossover).

Repeats the Figures 7-9 ranking at every Figure 6 bandwidth, exposing how
the optimal SPM capacity moves with off-chip bandwidth.
"""

from repro.experiments import sensitivity


def test_sensitivity(benchmark):
    rows = benchmark(sensitivity.run)
    print()
    print(sensitivity.format_rows(rows))
    by_bw = {r.bandwidth: r for r in rows}
    # Crossover: big SPM wins starved, small 3D wins at high bandwidth.
    assert by_bw[4].best_performance.endswith(("4MiB", "8MiB"))
    assert by_bw[64].best_performance.endswith(("1MiB", "2MiB"))
    assert all("3D" in r.best_edp for r in rows)
