"""The ``remote`` execution backend: sharding, equivalence, fault tolerance.

The slow/crashing workloads are module-level functions so they pickle by
reference into the ``hello`` handshake; the fixture puts this directory
on ``PYTHONPATH`` so worker subprocesses can import them back.
"""

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.api.registry import WORKLOADS
from repro.engine import Engine
from repro.engine.backends import BACKENDS, run_one
from repro.engine.core import evaluate_job
from repro.service.pool import RemoteBackend
from repro.sweep import SweepSpec
from repro.sweep.spec import Job

pytestmark = pytest.mark.skipif(
    not Path("/proc").is_dir(), reason="needs /proc to observe workers"
)


def slow_workload(scenario):
    """The matmul workload, slowed enough to catch mid-batch."""
    time.sleep(0.15)
    return WORKLOADS.get("matmul")(scenario)


def hanging_workload(scenario):
    """Outlives any per-job timeout a test would configure."""
    time.sleep(120)
    return 0.0


def dying_workload(scenario):
    """Takes its whole worker process down, like a segfault would."""
    os._exit(17)


_TEST_WORKLOADS = {
    "test-slow": slow_workload,
    "test-hang": hanging_workload,
    "test-die": dying_workload,
}


@pytest.fixture
def fault_workloads(monkeypatch):
    """Register the crash/hang workloads and make them worker-importable."""
    here = str(Path(__file__).resolve().parent)
    existing = os.environ.get("PYTHONPATH")
    monkeypatch.setenv(
        "PYTHONPATH", here + (os.pathsep + existing if existing else "")
    )
    for name, fn in _TEST_WORKLOADS.items():
        WORKLOADS.register(name, fn)
    yield
    for name in _TEST_WORKLOADS:
        WORKLOADS.unregister(name)


def _worker_pids() -> list:
    """PIDs of our live repro worker subprocesses (via /proc)."""
    me = os.getpid()
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = (Path("/proc") / entry / "stat").read_text()
            cmdline = (Path("/proc") / entry / "cmdline").read_bytes()
        except OSError:
            continue
        # Field 4 of /proc/pid/stat is the ppid (comm, field 2, is
        # parenthesized and never contains whitespace for python).
        try:
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (IndexError, ValueError):
            continue
        if ppid == me and b"repro.service.worker" in cmdline:
            pids.append(int(entry))
    return pids


def _canonical(records) -> list:
    """Records as comparable strings, ignoring cache provenance."""
    return sorted(
        json.dumps(
            {k: v for k, v in record.items() if k != "source"},
            sort_keys=True,
        )
        for record in records
    )


class TestRegistration:
    def test_remote_is_a_registered_backend(self):
        assert "remote" in BACKENDS.names()
        assert BACKENDS.get("remote") is RemoteBackend

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RemoteBackend(job_timeout_s=0)
        with pytest.raises(ValueError):
            RemoteBackend(max_retries=-1)

    def test_hosts_env_sets_worker_targets(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_REMOTE_HOSTS", "10.0.0.1:9123, 10.0.0.2:9123"
        )
        backend = RemoteBackend()
        assert backend.hosts == ("10.0.0.1:9123", "10.0.0.2:9123")
        assert backend.workers == 2


class TestEquivalence:
    def test_engine_records_match_serial_exactly(self):
        """Acceptance: --backend remote is byte-identical to serial."""
        spec = SweepSpec(
            capacities_mib=(1, 2),
            flows=("2D", "3D"),
            bandwidths=(4.0, 16.0),
        )
        serial = Engine(backend="serial", cache=None).run(spec.jobs())
        remote = Engine(
            backend="remote", workers=2, cache=None
        ).run(spec.jobs())
        assert _canonical(serial.records) == _canonical(remote.records)
        assert remote.stats.failed == 0

    def test_empty_batch_is_a_noop(self):
        assert list(RemoteBackend(workers=1).run(evaluate_job, [])) == []


class TestFaultTolerance:
    def test_kill9_mid_batch_loses_nothing(self, fault_workloads):
        """SIGKILL a worker mid-batch: only its in-flight job re-runs;
        the batch completes with results identical to serial."""
        jobs = [
            Job(capacity_mib=c, flow="2D", bandwidth=b, kernel="test-slow")
            for c in (1, 2) for b in (2.0, 4.0, 8.0, 16.0)
        ]
        expected = _canonical(run_one(evaluate_job, j) for j in jobs)

        backend = RemoteBackend(workers=2, backoff_s=0.01)
        records = []
        killed = None
        for record in backend.run(evaluate_job, jobs):
            records.append(record)
            if killed is None:
                pids = _worker_pids()
                assert pids, "no live workers observed mid-batch"
                killed = pids[0]
                os.kill(killed, signal.SIGKILL)
        assert killed is not None
        assert len(records) == len(jobs)
        assert all(r["status"] == "ok" for r in records)
        assert _canonical(records) == expected

    def test_job_timeout_surfaces_as_failure_record(self, fault_workloads):
        backend = RemoteBackend(
            workers=1, job_timeout_s=1.0, max_retries=0, backoff_s=0.01
        )
        jobs = [Job(capacity_mib=1, flow="2D", kernel="test-hang")]
        records = list(backend.run(evaluate_job, jobs))
        assert len(records) == 1
        assert records[0]["status"] == "error"
        assert "timeout" in records[0]["error"]
        assert records[0]["key"] == jobs[0].key

    def test_worker_death_bounded_retry_then_failure(self, fault_workloads):
        """A job that always kills its worker fails after max_retries
        redispatches; healthy jobs in the same batch still complete."""
        jobs = [
            Job(capacity_mib=1, flow="2D", kernel="test-die"),
            Job(capacity_mib=1, flow="2D", kernel="matmul"),
            Job(capacity_mib=2, flow="2D", kernel="matmul"),
        ]
        backend = RemoteBackend(workers=2, max_retries=1, backoff_s=0.01)
        records = {r["key"]: r for r in backend.run(evaluate_job, jobs)}
        assert len(records) == 3
        doomed = records[jobs[0].key]
        assert doomed["status"] == "error"
        assert "after 2 attempts" in doomed["error"]
        for job in jobs[1:]:
            assert records[job.key]["status"] == "ok"
