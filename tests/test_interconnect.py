"""Tests for repro.interconnect: crossbar, butterfly, topology."""

import pytest

from repro.core.config import ArchParams
from repro.interconnect.butterfly import ButterflyNetwork
from repro.interconnect.crossbar import LogarithmicCrossbar
from repro.interconnect.topology import ClusterTopology, LatencyTable


class TestCrossbarStructure:
    def test_mempool_tile_dimensions(self):
        xbar = LogarithmicCrossbar(masters=8, slaves=16)
        assert xbar.mux_depth() == 3
        assert xbar.gate_estimate_kge() > 0

    def test_gate_count_grows_with_ports(self):
        small = LogarithmicCrossbar(masters=4, slaves=8)
        large = LogarithmicCrossbar(masters=8, slaves=16)
        assert large.gate_estimate_kge() > small.gate_estimate_kge()

    def test_gate_count_grows_with_width(self):
        narrow = LogarithmicCrossbar(masters=8, slaves=16, request_bits=40)
        wide = LogarithmicCrossbar(masters=8, slaves=16, request_bits=80)
        assert wide.gate_estimate_kge() > narrow.gate_estimate_kge()

    def test_wire_bits(self):
        xbar = LogarithmicCrossbar(masters=2, slaves=2, request_bits=10, response_bits=5)
        assert xbar.wire_bits() == 2 * 12 + 2 * 7

    def test_rejects_nonpositive_ports(self):
        with pytest.raises(ValueError):
            LogarithmicCrossbar(masters=0, slaves=4)


class TestCrossbarArbitration:
    def test_disjoint_requests_all_granted(self):
        xbar = LogarithmicCrossbar(masters=4, slaves=4)
        grants = xbar.arbitrate(0, {0: 0, 1: 1, 2: 2, 3: 3})
        assert all(grants.values())

    def test_conflicting_requests_grant_one(self):
        xbar = LogarithmicCrossbar(masters=4, slaves=4)
        grants = xbar.arbitrate(0, {0: 2, 1: 2, 3: 2})
        assert sum(grants.values()) == 1
        assert xbar.stats.conflicted == 2

    def test_round_robin_rotates_winner(self):
        xbar = LogarithmicCrossbar(masters=4, slaves=4)
        winners = set()
        for cycle in range(4):
            grants = xbar.arbitrate(cycle, {0: 1, 1: 1})
            winners.update(m for m, ok in grants.items() if ok)
        assert winners == {0, 1}

    def test_bad_indices_raise(self):
        xbar = LogarithmicCrossbar(masters=2, slaves=2)
        with pytest.raises(ValueError):
            xbar.arbitrate(0, {5: 0})
        with pytest.raises(ValueError):
            xbar.arbitrate(0, {0: 9})


class TestButterflyStructure:
    def test_mempool_group_network(self):
        net = ButterflyNetwork(ports=16, radix=4)
        assert net.stages == 2
        assert net.switches_per_stage == 4
        assert net.num_switches == 8
        assert net.internal_links == 16
        assert net.external_links == 32
        assert net.hop_latency() == 2

    def test_64_port_radix4(self):
        net = ButterflyNetwork(ports=64, radix=4)
        assert net.stages == 3
        assert net.num_switches == 48

    def test_radix2(self):
        net = ButterflyNetwork(ports=8, radix=2)
        assert net.stages == 3
        assert net.num_switches == 12

    def test_rejects_non_power_ports(self):
        with pytest.raises(ValueError):
            ButterflyNetwork(ports=12, radix=4)

    def test_rejects_tiny_radix(self):
        with pytest.raises(ValueError):
            ButterflyNetwork(ports=4, radix=1)

    def test_wire_bits_scale_with_ports(self):
        small = ButterflyNetwork(ports=16, radix=4)
        large = ButterflyNetwork(ports=64, radix=4)
        assert large.wire_bits() == 4 * small.wire_bits()


class TestButterflyRouting:
    def test_permutation_traffic_all_granted(self):
        net = ButterflyNetwork(ports=16, radix=4)
        grants = net.route(0, {i: (i + 1) % 16 for i in range(16)})
        assert all(grants.values())
        assert net.stats.routed == 16

    def test_output_contention_serializes(self):
        net = ButterflyNetwork(ports=16, radix=4)
        grants = net.route(0, {0: 5, 1: 5, 2: 5})
        assert sum(grants.values()) == 1
        assert net.stats.contended == 2

    def test_rotating_priority_is_fair_under_full_contention(self):
        net = ButterflyNetwork(ports=4, radix=4)
        wins = {i: 0 for i in range(4)}
        for cycle in range(8):
            grants = net.route(cycle, {i: 3 for i in range(4)})
            for port, ok in grants.items():
                if ok:
                    wins[port] += 1
        assert all(count == 2 for count in wins.values())

    def test_bad_ports_raise(self):
        net = ButterflyNetwork(ports=4, radix=4)
        with pytest.raises(ValueError):
            net.route(0, {7: 0})


class TestLatencyTable:
    def test_defaults(self):
        table = LatencyTable()
        assert (table.local, table.intra_group, table.inter_group) == (1, 3, 5)

    def test_rejects_non_monotone(self):
        with pytest.raises(ValueError):
            LatencyTable(local=3, intra_group=2, inter_group=5)


class TestClusterTopology:
    @pytest.fixture
    def topo(self):
        return ClusterTopology()

    def test_core_tile_mapping(self, topo):
        assert topo.core_tile(0) == 0
        assert topo.core_tile(3) == 0
        assert topo.core_tile(4) == 1
        assert topo.core_tile(255) == 63

    def test_core_tile_bounds(self, topo):
        with pytest.raises(ValueError):
            topo.core_tile(256)

    def test_locality_classes(self, topo):
        assert topo.locality(0, 0) == "local"
        assert topo.locality(0, 1) == "intra_group"
        assert topo.locality(0, 16) == "inter_group"

    def test_access_latencies_match_paper(self, topo):
        assert topo.access_latency(0, 0) == 1
        assert topo.access_latency(0, 15) == 3
        assert topo.access_latency(0, 63) == 5

    def test_group_channel_bits_scale_with_request_width(self, topo):
        narrow = topo.group_channel_bits(request_bits=60)
        wide = topo.group_channel_bits(request_bits=70)
        assert wide > narrow

    def test_address_bits(self, topo):
        assert topo.address_bits(1 << 20) == 20
        assert topo.address_bits(8 << 20) == 23

    def test_request_bits_grow_with_capacity(self, topo):
        assert topo.request_bits_for_capacity(8 << 20) == (
            topo.request_bits_for_capacity(1 << 20) + 3
        )

    def test_small_arch_topology(self):
        arch = ArchParams(cores_per_tile=2, tiles_per_group=4, groups=2)
        topo = ClusterTopology(arch)
        assert topo.core_tile(7) == 3
        assert topo.locality(0, 4) == "inter_group"
