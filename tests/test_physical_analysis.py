"""Tests for wirelength, congestion, buffering, timing, and power models."""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.physical.buffering import (
    insert_buffers,
    optimal_repeater_spacing_um,
)
from repro.physical.calibration import Calibration
from repro.physical.cells import CellInventory
from repro.physical.congestion import analyze_congestion
from repro.physical.netlist import build_group_netlist
from repro.physical.placement import ChannelPlan, GroupPlacement
from repro.physical.technology import DEFAULT_TECHNOLOGY, make_stack
from repro.physical.timing import TimingReport, analyze_timing, slack_population
from repro.physical.wirelength import estimate_wirelength, port_net_length_um


def make_placement(tile=500.0, outer=80.0, center=150.0):
    return GroupPlacement(
        grid=4,
        tile_width_um=tile,
        tile_height_um=tile,
        channels=ChannelPlan(outer_width_um=outer, center_width_um=center),
    )


class TestWirelength:
    def test_corner_tiles_have_longest_nets(self):
        p = make_placement()
        corner = port_net_length_um(p, 0, 0)
        middle = port_net_length_um(p, 1, 1)
        assert corner > middle

    def test_total_positive_and_decomposed(self):
        p = make_placement()
        report = estimate_wirelength(p, boundary_bits=7040, group_cells=60_000, registers=8000)
        assert report.total_um == pytest.approx(
            report.interconnect_um + report.clock_um + report.local_um
        )
        assert report.interconnect_um > report.clock_um

    def test_wirelength_scales_with_tile_size(self):
        small = estimate_wirelength(make_placement(tile=400), 7040, 60_000, 8000)
        large = estimate_wirelength(make_placement(tile=600), 7040, 60_000, 8000)
        assert large.interconnect_um > small.interconnect_um

    def test_wirelength_scales_with_bits(self):
        p = make_placement()
        narrow = estimate_wirelength(p, 6000, 60_000, 8000)
        wide = estimate_wirelength(p, 7000, 60_000, 8000)
        assert wide.interconnect_um > narrow.interconnect_um

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            estimate_wirelength(make_placement(), 0, 0, 0)


class TestCongestion:
    def test_center_is_hotspot(self):
        p = make_placement()
        report = analyze_congestion(p, 10e6, make_stack("M8"), is_3d=False)
        assert report.center_demand > report.average_demand

    def test_more_wires_more_congestion(self):
        p = make_placement()
        stack = make_stack("M8")
        light = analyze_congestion(p, 5e6, stack, is_3d=False)
        heavy = analyze_congestion(p, 20e6, stack, is_3d=False)
        assert heavy.center_demand > light.center_demand

    def test_overflow_produces_drvs(self):
        p = make_placement(outer=20, center=40)  # starved channels
        report = analyze_congestion(p, 60e6, make_stack("M8"), is_3d=False)
        assert report.congested
        assert report.drv_estimate > 0

    def test_no_overflow_no_drvs(self):
        p = make_placement()
        report = analyze_congestion(p, 1e6, make_stack("M8"), is_3d=False)
        assert not report.congested
        assert report.drv_estimate == 0

    def test_rejects_negative_wirelength(self):
        with pytest.raises(ValueError):
            analyze_congestion(make_placement(), -1, make_stack("M8"), False)


class TestBuffering:
    def test_repeater_spacing_in_plausible_band(self):
        spacing = optimal_repeater_spacing_um(DEFAULT_TECHNOLOGY, make_stack("M8"))
        assert 100 < spacing < 600

    def test_buffers_scale_with_wirelength(self):
        cells = CellInventory(combinational=50_000, registers=8000)
        kwargs = dict(
            boundary_bits=7040, grid=4, cells=cells,
            tech=DEFAULT_TECHNOLOGY, stack=make_stack("M8"),
        )
        short = insert_buffers(wirelength_um=5e6, **kwargs)
        long = insert_buffers(wirelength_um=20e6, **kwargs)
        assert long.repeaters > short.repeaters
        assert long.endpoint_buffers == short.endpoint_buffers

    def test_congestion_adds_repeaters(self):
        cells = CellInventory(combinational=50_000, registers=8000)
        kwargs = dict(
            wirelength_um=10e6, boundary_bits=7040, grid=4, cells=cells,
            tech=DEFAULT_TECHNOLOGY, stack=make_stack("M8"),
        )
        clean = insert_buffers(congestion_overflow=0.0, **kwargs)
        congested = insert_buffers(congestion_overflow=1.0, **kwargs)
        assert congested.repeaters > clean.repeaters

    def test_total_sums_components(self):
        cells = CellInventory(combinational=50_000, registers=8000)
        report = insert_buffers(
            wirelength_um=10e6, boundary_bits=7040, grid=4, cells=cells,
            tech=DEFAULT_TECHNOLOGY, stack=make_stack("M8"),
        )
        assert report.total == report.repeaters + report.endpoint_buffers + report.clock_buffers

    def test_rejects_bad_inputs(self):
        cells = CellInventory()
        with pytest.raises(ValueError):
            insert_buffers(-1, 7040, 4, cells, DEFAULT_TECHNOLOGY, make_stack("M8"))


class TestTiming:
    def run_timing(self, tile=500.0, sram_ps=330.0, is_3d=False, cap=1):
        p = make_placement(tile=tile)
        stack = make_stack("M6M6" if is_3d else "M8")
        congestion = analyze_congestion(p, 10e6, stack, is_3d)
        return analyze_timing(
            placement=p,
            sram_access_ps=sram_ps,
            congestion=congestion,
            boundary_bits=7040,
            tech=DEFAULT_TECHNOLOGY,
            stack=stack,
            is_3d=is_3d,
            capacity_mib=cap,
            calibration=Calibration(closure_adjust_ps={}),
        )

    def test_bigger_group_is_slower(self):
        assert self.run_timing(tile=600).frequency_mhz < self.run_timing(tile=450).frequency_mhz

    def test_slower_sram_is_slower(self):
        assert self.run_timing(sram_ps=500).frequency_mhz < self.run_timing(sram_ps=330).frequency_mhz

    def test_wire_fraction_significant(self):
        # Paper: ~37 % of the 2D critical path is wire delay.
        report = self.run_timing()
        assert 0.2 < report.wire_fraction < 0.55

    def test_breakdown_sums_to_period(self):
        r = self.run_timing()
        assert r.period_ps == pytest.approx(
            r.wire_delay_ps + r.logic_delay_ps + r.sram_delay_ps + r.congestion_delay_ps
        )

    def test_timing_report_validation(self):
        with pytest.raises(ValueError):
            TimingReport(
                period_ps=-1, wire_delay_ps=0, logic_delay_ps=0, sram_delay_ps=0,
                congestion_delay_ps=0, tns_ps=0, failing_paths=0,
            )
        with pytest.raises(ValueError):
            TimingReport(
                period_ps=100, wire_delay_ps=0, logic_delay_ps=0, sram_delay_ps=0,
                congestion_delay_ps=0, tns_ps=5, failing_paths=0,
            )


class TestSlackPopulation:
    def test_meeting_target_still_has_residuals(self):
        tns, failing = slack_population(990.0, 1000.0, is_3d=False)
        assert failing > 0
        assert tns < 0

    def test_worse_period_more_failures(self):
        tns_a, fail_a = slack_population(1050.0, 1000.0, is_3d=False)
        tns_b, fail_b = slack_population(1150.0, 1000.0, is_3d=False)
        assert fail_b > fail_a
        assert tns_b < tns_a

    def test_3d_closes_cleaner(self):
        tns_2d, _ = slack_population(1050.0, 1000.0, is_3d=False)
        tns_3d, _ = slack_population(1050.0, 1000.0, is_3d=True)
        assert abs(tns_3d) < abs(tns_2d)

    def test_rejects_nonpositive_periods(self):
        with pytest.raises(ValueError):
            slack_population(0, 1000, False)


class TestPowerIntegration:
    def test_power_components_positive(self):
        from repro.physical.buffering import BufferingReport
        from repro.physical.power import analyze_power
        from repro.physical.wirelength import WirelengthReport

        config = MemPoolConfig(1, Flow.FLOW_2D)
        netlist = build_group_netlist(config)
        report = analyze_power(
            netlist=netlist,
            wirelength=WirelengthReport(interconnect_um=10e6, clock_um=1e5, local_um=1e6),
            buffering=BufferingReport(repeaters=100_000, endpoint_buffers=40_000, clock_buffers=3000),
            frequency_mhz=1000.0,
            tech=DEFAULT_TECHNOLOGY,
            total_cell_area_um2=3e6,
        )
        for field in ("cores_mw", "interconnect_cells_mw", "buffers_mw", "sram_mw",
                      "wires_mw", "clock_mw", "leakage_mw"):
            assert getattr(report, field) > 0
        assert report.total_mw == pytest.approx(
            report.cores_mw + report.interconnect_cells_mw + report.buffers_mw
            + report.sram_mw + report.wires_mw + report.clock_mw + report.leakage_mw
        )
        assert report.wire_related_mw == report.wires_mw + report.buffers_mw

    def test_power_scales_with_frequency(self):
        from repro.physical.buffering import BufferingReport
        from repro.physical.power import analyze_power
        from repro.physical.wirelength import WirelengthReport

        config = MemPoolConfig(1, Flow.FLOW_2D)
        netlist = build_group_netlist(config)
        common = dict(
            netlist=netlist,
            wirelength=WirelengthReport(interconnect_um=10e6, clock_um=1e5, local_um=1e6),
            buffering=BufferingReport(repeaters=100_000, endpoint_buffers=40_000, clock_buffers=3000),
            tech=DEFAULT_TECHNOLOGY,
            total_cell_area_um2=3e6,
        )
        slow = analyze_power(frequency_mhz=800.0, **common)
        fast = analyze_power(frequency_mhz=1000.0, **common)
        assert fast.total_mw > slow.total_mw
        # Leakage does not scale with frequency.
        assert fast.leakage_mw == pytest.approx(slow.leakage_mw)

    def test_rejects_nonpositive_frequency(self):
        from repro.physical.buffering import BufferingReport
        from repro.physical.power import analyze_power
        from repro.physical.wirelength import WirelengthReport

        config = MemPoolConfig(1, Flow.FLOW_2D)
        with pytest.raises(ValueError):
            analyze_power(
                netlist=build_group_netlist(config),
                wirelength=WirelengthReport(1e6, 1e5, 1e5),
                buffering=BufferingReport(1000, 100, 10),
                frequency_mhz=0,
                tech=DEFAULT_TECHNOLOGY,
                total_cell_area_um2=1e6,
            )
