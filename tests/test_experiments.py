"""End-to-end tests: every table and figure reproduces the paper's shape."""

import pytest

from repro.experiments import fig6, fig789, paper_data, table1, table2
from repro.experiments.runner import EXPERIMENTS, main


@pytest.fixture(scope="module")
def t1_rows():
    return table1.run()


@pytest.fixture(scope="module")
def t2_rows():
    return table2.run()


@pytest.fixture(scope="module")
def f6_points():
    return fig6.run()


@pytest.fixture(scope="module")
def kernel_rows():
    return fig789.run()


class TestTable1:
    def test_all_eight_configs_present(self, t1_rows):
        assert len(t1_rows) == 8

    def test_footprints_within_10_percent(self, t1_rows):
        for row in t1_rows:
            assert row.footprint == pytest.approx(row.paper_footprint, rel=0.10), row

    def test_memory_utilization_tracks_paper(self, t1_rows):
        for row in t1_rows:
            if row.paper_memory_utilization is not None:
                assert row.memory_utilization == pytest.approx(
                    row.paper_memory_utilization, abs=0.08
                ), row

    def test_banks_on_memory_die_match_paper(self, t1_rows):
        for row in t1_rows:
            if row.banks_on_memory_die is not None:
                expected = paper_data.TABLE1_BANKS_ON_MEMORY_DIE[row.capacity_mib]
                assert row.banks_on_memory_die == expected

    def test_format_contains_all_configs(self, t1_rows):
        text = table1.format_rows(t1_rows)
        assert "MemPool-3D-8MiB" in text
        assert "MemPool-2D-1MiB" in text


class TestTable2:
    def test_footprint_row(self, t2_rows):
        for row in t2_rows:
            assert row.modeled.footprint == pytest.approx(row.paper_footprint, rel=0.05)

    def test_wire_length_row(self, t2_rows):
        for row in t2_rows:
            assert row.modeled.wire_length == pytest.approx(row.paper_wire_length, rel=0.08)

    def test_frequency_row_exact(self, t2_rows):
        for row in t2_rows:
            assert row.modeled.frequency == pytest.approx(row.paper_frequency, abs=0.005)

    def test_power_row(self, t2_rows):
        for row in t2_rows:
            assert row.modeled.power == pytest.approx(row.paper_power, rel=0.05)

    def test_pdp_row(self, t2_rows):
        for row in t2_rows:
            assert row.modeled.power_delay_product == pytest.approx(row.paper_pdp, rel=0.05)

    def test_combined_area_row(self, t2_rows):
        for row in t2_rows:
            paper = paper_data.TABLE2_COMBINED_AREA[(row.flow, row.capacity_mib)]
            assert row.modeled.combined_area == pytest.approx(paper, rel=0.06)

    def test_buffer_counts_in_paper_band(self, t2_rows):
        for row in t2_rows:
            paper = paper_data.TABLE2_NUM_BUFFERS[(row.flow, row.capacity_mib)]
            assert row.num_buffers == pytest.approx(paper, rel=0.30)

    def test_f2f_bumps_close_to_paper(self, t2_rows):
        for row in t2_rows:
            if row.flow == "3D":
                paper = paper_data.TABLE2_F2F_BUMPS[(row.flow, row.capacity_mib)]
                assert row.num_f2f_bumps == pytest.approx(paper, rel=0.15)

    def test_density_in_paper_band(self, t2_rows):
        for row in t2_rows:
            assert 0.45 < row.modeled.density < 0.62

    def test_headline_3d4_frequency_gain(self, t2_rows):
        by_key = {(r.flow, r.capacity_mib): r.modeled for r in t2_rows}
        gain = by_key[("3D", 4)].frequency / by_key[("2D", 4)].frequency - 1
        assert gain == pytest.approx(0.091, abs=0.01)

    def test_headline_8mib_footprint_reduction(self, t2_rows):
        by_key = {(r.flow, r.capacity_mib): r.modeled for r in t2_rows}
        reduction = 1 - by_key[("3D", 8)].footprint / by_key[("2D", 8)].footprint
        assert reduction == pytest.approx(0.46, abs=0.05)


class TestFig6:
    def test_surface_covers_sweep(self, f6_points):
        assert len(f6_points) == 4 * 5  # capacities x bandwidths

    def test_headline_speedups(self, f6_points):
        headline = fig6.speedup_8mib_over_1mib(f6_points)
        for bw, expected in paper_data.FIG6_SPEEDUP_8MIB_OVER_1MIB.items():
            assert headline[bw] == pytest.approx(expected, abs=0.02)

    def test_speedup_monotone_in_capacity(self, f6_points):
        for bw in {p.bandwidth for p in f6_points}:
            series = sorted(
                (p for p in f6_points if p.bandwidth == bw),
                key=lambda p: p.capacity_mib,
            )
            speedups = [p.speedup_vs_baseline for p in series]
            assert speedups == sorted(speedups)

    def test_speedup_monotone_in_bandwidth(self, f6_points):
        for cap in {p.capacity_mib for p in f6_points}:
            series = sorted(
                (p for p in f6_points if p.capacity_mib == cap),
                key=lambda p: p.bandwidth,
            )
            speedups = [p.speedup_vs_baseline for p in series]
            assert speedups == sorted(speedups)

    def test_step_annotation_4b_4to8(self, f6_points):
        step = next(
            p.step_speedup
            for p in f6_points
            if p.capacity_mib == 8 and p.bandwidth == 4
        )
        assert step == pytest.approx(paper_data.FIG6_STEP_4B_4TO8, abs=0.02)

    def test_diminishing_returns_at_high_bandwidth(self, f6_points):
        # Capacity matters most when bandwidth is scarce.
        headline = fig6.speedup_8mib_over_1mib(f6_points)
        assert headline[4] > headline[16] > headline[64]


class TestFig789:
    def test_3d_vs_2d_performance_gains(self, kernel_rows):
        for row in kernel_rows:
            if row.flow == "3D":
                paper = paper_data.FIG7_3D_VS_2D_GAIN[row.capacity_mib]
                assert row.gain_3d_over_2d == pytest.approx(paper, abs=0.01)

    def test_2d_4mib_performance_drop(self, kernel_rows):
        # The paper's callout: MemPool-2D-4MiB performs below the baseline.
        row = next(r for r in kernel_rows if r.flow == "2D" and r.capacity_mib == 4)
        assert row.performance_gain < 0

    def test_3d_8mib_is_fastest(self, kernel_rows):
        best = max(kernel_rows, key=lambda r: r.performance_gain)
        assert best.flow == "3D"
        assert best.capacity_mib == 8
        assert best.performance_gain == pytest.approx(
            paper_data.FIG7_BEST_3D_VS_BASELINE, abs=0.02
        )

    def test_3d_always_outperforms_2d(self, kernel_rows):
        by_key = {(r.flow, r.capacity_mib): r for r in kernel_rows}
        for cap in (1, 2, 4, 8):
            assert (
                by_key[("3D", cap)].performance_gain
                > by_key[("2D", cap)].performance_gain
            )

    def test_3d_efficiency_beats_2d(self, kernel_rows):
        by_key = {(r.flow, r.capacity_mib): r for r in kernel_rows}
        for cap in (1, 2, 4, 8):
            assert (
                by_key[("3D", cap)].efficiency_gain
                > by_key[("2D", cap)].efficiency_gain
            )

    def test_2d_efficiency_degrades_with_capacity(self, kernel_rows):
        # Figure 8: increasing SPM in 2D costs energy efficiency.
        by_key = {(r.flow, r.capacity_mib): r for r in kernel_rows}
        assert by_key[("2D", 8)].efficiency_gain < by_key[("2D", 1)].efficiency_gain

    def test_edp_optimum_is_small_3d_design(self, kernel_rows):
        # Paper: MemPool-3D-1MiB; our power fit puts 3D-2MiB in a near-tie.
        best = fig789.best_edp_configuration(kernel_rows)
        assert best in ("MemPool-3D-1MiB", "MemPool-3D-2MiB")

    def test_3d_edp_better_than_2d(self, kernel_rows):
        by_key = {(r.flow, r.capacity_mib): r for r in kernel_rows}
        for cap in (1, 2, 4, 8):
            assert by_key[("3D", cap)].edp_variation < by_key[("2D", cap)].edp_variation

    def test_abstract_energy_claims(self, kernel_rows):
        vs_2d4, vs_2d1 = fig789.energy_3d4_comparisons(kernel_rows)
        assert vs_2d4 == pytest.approx(paper_data.ENERGY_3D4_VS_2D4, abs=0.03)
        assert vs_2d1 == pytest.approx(paper_data.ENERGY_3D4_VS_2D1, abs=0.03)


class TestRunner:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {"table1", "table2", "fig6", "fig789"}

    def test_single_experiment(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
