"""Tests for the top-level CLI (python -m repro)."""

import json
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_implement_args(self):
        args = build_parser().parse_args(["implement", "MemPool-3D-4MiB"])
        assert args.config == "MemPool-3D-4MiB"
        assert not args.cluster

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.kernel == "matmul"
        assert args.cores == 16

    def test_sweep_defaults_span_50_points(self):
        args = build_parser().parse_args(["sweep"])
        grid = (len(args.capacities) * len(args.flows) * len(args.bandwidths)
                * len(args.matrix_dims) * len(args.core_counts))
        assert grid >= 50
        assert args.workers == 0
        assert args.cache_dir == ".sweep-cache"

    def test_sweep_csv_axes(self):
        args = build_parser().parse_args(
            ["sweep", "--capacities", "1,8", "--bandwidths", "4,64"]
        )
        assert args.capacities == (1, 8)
        assert args.bandwidths == (4.0, 64.0)


class TestCommands:
    def test_implement(self, capsys):
        assert main(["implement", "MemPool-2D-1MiB"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out
        assert "MHz" in out

    def test_implement_3d_shows_partition(self, capsys):
        assert main(["implement", "MemPool-3D-8MiB"]) == 0
        out = capsys.readouterr().out
        assert "15 banks" in out
        assert "F2F bumps" in out

    def test_implement_cluster(self, capsys):
        assert main(["implement", "MemPool-3D-1MiB", "--cluster"]) == 0
        assert "cluster level" in capsys.readouterr().out

    def test_simulate_matmul(self, capsys):
        assert main(["simulate", "--kernel", "matmul", "--n", "8", "--cores", "4"]) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_simulate_scoreboard(self, capsys):
        assert main(
            ["simulate", "--kernel", "matmul", "--n", "8", "--cores", "4",
             "--scoreboard"]
        ) == 0
        assert "verified: True" in capsys.readouterr().out

    @pytest.mark.parametrize("kernel", ["dotp", "axpy", "conv2d"])
    def test_simulate_other_kernels(self, kernel, capsys):
        assert main(["simulate", "--kernel", kernel, "--n", "12", "--cores", "4"]) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_explore(self, capsys):
        assert main(["explore"]) == 0
        out = capsys.readouterr().out
        assert "MemPool-3D-8MiB" in out
        assert "best performance" in out

    def test_sweep_and_resume(self, capsys, tmp_path):
        argv = ["sweep", "--capacities", "1,2", "--bandwidths", "8,32",
                "--cache-dir", str(tmp_path / "cache"),
                "--store", str(tmp_path / "results.jsonl")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "8 jobs: 0 cached, 8 evaluated" in out
        assert "best performance" in out
        assert main(argv) == 0
        assert "8 jobs: 8 cached, 0 evaluated" in capsys.readouterr().out

    def test_sweep_no_cache(self, capsys, tmp_path):
        assert main(["sweep", "--capacities", "1", "--flows", "3D",
                     "--bandwidths", "16", "--no-cache"]) == 0
        assert "1 evaluated" in capsys.readouterr().out

    def test_sweep_thread_backend(self, capsys):
        assert main(["sweep", "--capacities", "1", "--bandwidths", "8,32",
                     "--backend", "thread", "--workers", "2",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "thread backend" in out
        assert "4 evaluated" in out

    def test_sweep_progress_lines_on_stderr(self, capsys, tmp_path):
        argv = ["sweep", "--capacities", "1", "--flows", "3D",
                "--bandwidths", "8,32", "--progress",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "1/2 MemPool-3D-1MiB@8B/c" in captured.err
        assert "2/2" in captured.err
        assert "best performance" in captured.out  # stdout report unchanged
        # Cached re-run marks every progress line.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "[cached]" in captured.err

    def test_sweep_quiet_without_progress(self, capsys):
        assert main(["sweep", "--capacities", "1", "--flows", "3D",
                     "--bandwidths", "16", "--no-cache"]) == 0
        assert capsys.readouterr().err == ""

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "fig6"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_bad_config_name(self):
        with pytest.raises(ValueError):
            main(["implement", "NotAConfig"])


class TestRunCommand:
    def test_run_inline_scenario(self, capsys):
        assert main(["run", "--capacity", "1", "--flow", "3D"]) == 0
        out = capsys.readouterr().out
        assert "MemPool-3D-1MiB" in out
        assert "EDP" in out
        assert "objective (edp)" in out

    def test_run_scenario_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(
            {"capacity_mib": 2, "flow": "3D", "objective": "performance"}
        ))
        assert main(["run", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "MemPool-3D-2MiB" in out
        assert "objective (performance)" in out

    def test_run_scenario_list_reports_best(self, capsys, tmp_path):
        import json

        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps([
            {"capacity_mib": 1, "flow": "2D"},
            {"capacity_mib": 1, "flow": "3D"},
        ]))
        assert main(["run", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "best edp: MemPool-3D-1MiB" in out

    def test_run_without_inputs_errors(self, capsys):
        assert main(["run"]) == 2
        assert "need --scenario" in capsys.readouterr().err


class TestListCommand:
    def test_list_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out
        assert "dotp" in out

    def test_list_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for heading in ("flows:", "workloads:", "objectives:", "strategies:",
                        "experiments:"):
            assert heading in out
        assert "fig789" in out

    def test_list_strategies(self, capsys):
        assert main(["list", "strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("random", "latin-hypercube", "evolutionary",
                     "successive-halving"):
            assert name in out

    def test_list_backends(self, capsys):
        assert main(["list", "backends"]) == 0
        out = capsys.readouterr().out
        for name in ("serial", "thread", "process"):
            assert name in out

    def test_sweep_kernels_axis_parses(self):
        args = build_parser().parse_args(["sweep", "--kernels", "matmul,dotp"])
        assert args.kernels == ("matmul", "dotp")


class TestSearchCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.strategy == "evolutionary"
        assert args.budget == 32
        assert args.objectives == ("edp", "energy_efficiency")
        assert not args.resume

    def test_search_and_resume_share_the_cache(self, capsys, tmp_path):
        argv = ["search", "--strategy", "random", "--budget", "6",
                "--cache-dir", str(tmp_path / "cache"),
                "--archive", str(tmp_path / "archive.jsonl")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "6 evaluated, 0 cached" in out
        assert "best edp" in out
        assert "Pareto front" in out
        assert main(argv + ["--resume"]) == 0
        assert "0 evaluated, 6 cached" in capsys.readouterr().out

    def test_search_needs_an_axis(self, capsys):
        assert main(["search", "--capacities", "4", "--flows", "3D",
                     "--bandwidths", "16"]) == 2
        assert "at least one axis" in capsys.readouterr().err

    def test_custom_archive_accumulates_without_resume(self, capsys, tmp_path):
        # Only the default archive artifact is reset; a user-supplied
        # path must never be deleted by a fresh search.
        archive = tmp_path / "overnight.jsonl"
        argv = ["search", "--strategy", "random", "--budget", "4",
                "--cache-dir", str(tmp_path / "cache"),
                "--archive", str(archive)]
        assert main(argv) == 0
        lines_after_first = archive.read_text().count("\n")
        assert main(argv) == 0
        capsys.readouterr()
        assert archive.read_text().count("\n") == 2 * lines_after_first

    def test_search_custom_objectives(self, capsys, tmp_path):
        assert main(["search", "--strategy", "latin-hypercube",
                     "--budget", "5", "--objectives", "performance",
                     "--no-cache", "--archive", ""]) == 0
        assert "best performance" in capsys.readouterr().out

    def test_search_thread_backend_with_progress(self, capsys, tmp_path):
        assert main(["search", "--strategy", "random", "--budget", "4",
                     "--backend", "thread", "--workers", "2", "--progress",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--archive", ""]) == 0
        captured = capsys.readouterr()
        assert "4 evaluated" in captured.out
        assert "1/4" in captured.err
        assert "4/4" in captured.err


class TestCacheCommand:
    def test_stats_clear_gc_roundtrip(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", "--capacities", "1", "--bandwidths", "8,32",
                     "--cache-dir", cache_dir]) == 0
        assert main(["sweep", "--capacities", "1", "--bandwidths", "8,32",
                     "--cache-dir", cache_dir]) == 0  # all hits
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:   4" in out
        assert "hit rate:" in out
        assert "(current)" in out

        assert main(["cache", "gc", "--cache-dir", cache_dir]) == 0
        assert "kept 4 entries" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 4 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:   0" in capsys.readouterr().out

    def test_gc_prunes_stale_version(self, capsys, tmp_path):
        import json

        from repro.sweep import ResultCache

        cache_dir = tmp_path / "cache"
        assert main(["sweep", "--capacities", "1", "--flows", "3D",
                     "--bandwidths", "16", "--cache-dir", str(cache_dir)]) == 0
        with ResultCache(cache_dir).path.open("a") as fh:
            fh.write(json.dumps({"key": "stale", "job": {},
                                 "model_version": "1.old",
                                 "status": "ok", "metrics": {}}) + "\n")
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert ResultCache(cache_dir).get("stale") is None

    def test_gc_explicit_keep_version(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", "--capacities", "1", "--flows", "3D",
                     "--bandwidths", "16", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--keep-version", "1.old"]) == 0
        assert "kept 0 entries" in capsys.readouterr().out

    def test_stats_json_is_the_service_document(self, capsys, tmp_path):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", "--capacities", "1,2", "--bandwidths", "16",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json",
                     "--cache-dir", cache_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 4
        for field in ("stores", "misses", "hit_rate", "bytes", "versions"):
            assert field in stats

    def test_merge_folds_a_worker_dir_into_the_shared_root(
        self, capsys, tmp_path
    ):
        worker = str(tmp_path / "worker")
        shared = str(tmp_path / "shared")
        assert main(["sweep", "--capacities", "1", "--bandwidths", "8,32",
                     "--cache-dir", worker]) == 0
        assert main(["sweep", "--capacities", "2", "--bandwidths", "8",
                     "--cache-dir", shared]) == 0
        capsys.readouterr()
        assert main(["cache", "merge", worker, "--cache-dir", shared]) == 0
        assert "merged 4 records" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", shared]) == 0
        assert "entries:   6" in capsys.readouterr().out

    def test_merge_missing_source_fails_cleanly(self, capsys, tmp_path):
        assert main(["cache", "merge", str(tmp_path / "nope"),
                     "--cache-dir", str(tmp_path / "shared")]) == 1
        assert "no cache" in capsys.readouterr().err


class TestInterruptHandling:
    def test_sweep_keyboard_interrupt_exits_130(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.sweep import executor as executor_mod

        def interrupted_run(self, spec):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            executor_mod.SweepExecutor, "run", interrupted_run
        )
        code = main(["sweep", "--capacities", "1", "--bandwidths", "16",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "resume with the same command" in err

    def test_sweep_interrupt_without_cache_warns(self, capsys, monkeypatch):
        from repro.sweep import executor as executor_mod

        monkeypatch.setattr(
            executor_mod.SweepExecutor, "run",
            lambda self, spec: (_ for _ in ()).throw(KeyboardInterrupt),
        )
        code = main(["sweep", "--capacities", "1", "--bandwidths", "16",
                     "--no-cache"])
        assert code == 130
        assert "not preserved" in capsys.readouterr().err

    def test_search_keyboard_interrupt_exits_130(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.search import driver as driver_mod

        def interrupted_run(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(driver_mod.Searcher, "run", interrupted_run)
        code = main(["search", "--budget", "4", "--capacities", "1,2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--archive", ""])
        assert code == 130
        err = capsys.readouterr().err
        assert "repro search: interrupted" in err


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.cache_dir == ".sweep-cache"
        assert args.queue_limit == 64
        assert args.max_active == 2
        assert args.workers == 0
        assert not args.no_cache

    def test_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--no-cache", "--backend", "thread",
             "--workers", "4", "--queue-limit", "8", "--max-active", "1"]
        )
        assert args.port == 0
        assert args.no_cache
        assert args.backend == "thread"
        assert (args.workers, args.queue_limit, args.max_active) == (4, 8, 1)


class TestReportCommand:
    @pytest.fixture()
    def store_path(self, tmp_path):
        path = tmp_path / "results.jsonl"
        assert main(["sweep", "--capacities", "1,2", "--bandwidths", "8,32",
                     "--no-cache", "--store", str(path)]) == 0
        return path

    def test_summary_by_default(self, capsys, store_path):
        capsys.readouterr()
        assert main(["report", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "best edp" in out
        assert "Pareto front" in out

    def test_objective_table(self, capsys, store_path):
        capsys.readouterr()
        assert main(["report", str(store_path), "--objective", "edp",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top edp of 8 points" in out
        assert "EDP Js" in out

    def test_pareto_flag(self, capsys, store_path):
        capsys.readouterr()
        assert main(["report", str(store_path), "--pareto"]) == 0
        assert "Pareto front" in capsys.readouterr().out

    def test_unknown_objective_raises(self, store_path):
        with pytest.raises(ValueError):
            main(["report", str(store_path), "--objective", "beauty"])

    def test_missing_file(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "no records" in capsys.readouterr().err

    def test_report_is_read_only(self, capsys, tmp_path):
        # A mistyped path must not leave directories behind.
        target = tmp_path / "not" / "here" / "results.jsonl"
        assert main(["report", str(target)]) == 1
        capsys.readouterr()
        assert not target.parent.exists()


class TestCheckCommand:
    CORPUS = str(Path(__file__).parent / "analysis_corpus")

    def test_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.paths == ["src"]
        assert args.rules is None
        assert not args.json

    def test_clean_file_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "fine.py"
        path.write_text("x = 1\n", encoding="utf-8")
        assert main(["check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_defect_exits_one_with_findings(self, capsys):
        code = main(["check", f"{self.CORPUS}/rep003_defect.py"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP003" in out
        assert "rep003_defect.py:" in out
        assert "fix:" in out

    def test_rule_filter_is_repeatable(self, capsys):
        # REP003 filtered out: the REP003-only defect is clean under REP001.
        assert main(["check", "--rule", "REP001", "--rule", "REP002",
                     f"{self.CORPUS}/rep003_defect.py"]) == 0
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["check", "--rule", "REP999", "src"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["check", "no/such/path"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_document_schema(self, capsys):
        assert main(["check", "--json",
                     f"{self.CORPUS}/rep004_defect.py"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"rules", "files_checked", "counts", "findings"}
        assert doc["files_checked"] == 1
        assert doc["counts"]["error"] == len(doc["findings"]) > 0
        for finding in doc["findings"]:
            assert set(finding) == {"path", "line", "col", "rule",
                                    "message", "severity", "hint"}
            assert finding["rule"] == "REP004"

    def test_json_clean_run(self, capsys, tmp_path):
        path = tmp_path / "fine.py"
        path.write_text("x = 1\n", encoding="utf-8")
        assert main(["check", "--json", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == []
        assert doc["counts"] == {"error": 0, "warning": 0}

    def test_src_gate_via_cli(self, capsys):
        """`repro check src` exits 0 — the acceptance criterion."""
        src = str(Path(__file__).parent.parent / "src")
        assert main(["check", src]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_list_includes_lints(self, capsys):
        assert main(["list", "lints"]) == 0
        out = capsys.readouterr().out
        for rule in ("REP001", "REP002", "REP003",
                     "REP004", "REP005", "REP006"):
            assert rule in out
