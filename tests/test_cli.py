"""Tests for the top-level CLI (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_implement_args(self):
        args = build_parser().parse_args(["implement", "MemPool-3D-4MiB"])
        assert args.config == "MemPool-3D-4MiB"
        assert not args.cluster

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.kernel == "matmul"
        assert args.cores == 16

    def test_sweep_defaults_span_50_points(self):
        args = build_parser().parse_args(["sweep"])
        grid = (len(args.capacities) * len(args.flows) * len(args.bandwidths)
                * len(args.matrix_dims) * len(args.core_counts))
        assert grid >= 50
        assert args.workers == 0
        assert args.cache_dir == ".sweep-cache"

    def test_sweep_csv_axes(self):
        args = build_parser().parse_args(
            ["sweep", "--capacities", "1,8", "--bandwidths", "4,64"]
        )
        assert args.capacities == (1, 8)
        assert args.bandwidths == (4.0, 64.0)


class TestCommands:
    def test_implement(self, capsys):
        assert main(["implement", "MemPool-2D-1MiB"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out
        assert "MHz" in out

    def test_implement_3d_shows_partition(self, capsys):
        assert main(["implement", "MemPool-3D-8MiB"]) == 0
        out = capsys.readouterr().out
        assert "15 banks" in out
        assert "F2F bumps" in out

    def test_implement_cluster(self, capsys):
        assert main(["implement", "MemPool-3D-1MiB", "--cluster"]) == 0
        assert "cluster level" in capsys.readouterr().out

    def test_simulate_matmul(self, capsys):
        assert main(["simulate", "--kernel", "matmul", "--n", "8", "--cores", "4"]) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_simulate_scoreboard(self, capsys):
        assert main(
            ["simulate", "--kernel", "matmul", "--n", "8", "--cores", "4",
             "--scoreboard"]
        ) == 0
        assert "verified: True" in capsys.readouterr().out

    @pytest.mark.parametrize("kernel", ["dotp", "axpy", "conv2d"])
    def test_simulate_other_kernels(self, kernel, capsys):
        assert main(["simulate", "--kernel", kernel, "--n", "12", "--cores", "4"]) == 0
        assert "verified: True" in capsys.readouterr().out

    def test_explore(self, capsys):
        assert main(["explore"]) == 0
        out = capsys.readouterr().out
        assert "MemPool-3D-8MiB" in out
        assert "best performance" in out

    def test_sweep_and_resume(self, capsys, tmp_path):
        argv = ["sweep", "--capacities", "1,2", "--bandwidths", "8,32",
                "--cache-dir", str(tmp_path / "cache"),
                "--store", str(tmp_path / "results.jsonl")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "8 jobs: 0 cached, 8 evaluated" in out
        assert "best performance" in out
        assert main(argv) == 0
        assert "8 jobs: 8 cached, 0 evaluated" in capsys.readouterr().out

    def test_sweep_no_cache(self, capsys, tmp_path):
        assert main(["sweep", "--capacities", "1", "--flows", "3D",
                     "--bandwidths", "16", "--no-cache"]) == 0
        assert "1 evaluated" in capsys.readouterr().out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "fig6"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_bad_config_name(self):
        with pytest.raises(ValueError):
            main(["implement", "NotAConfig"])


class TestRunCommand:
    def test_run_inline_scenario(self, capsys):
        assert main(["run", "--capacity", "1", "--flow", "3D"]) == 0
        out = capsys.readouterr().out
        assert "MemPool-3D-1MiB" in out
        assert "EDP" in out
        assert "objective (edp)" in out

    def test_run_scenario_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(
            {"capacity_mib": 2, "flow": "3D", "objective": "performance"}
        ))
        assert main(["run", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "MemPool-3D-2MiB" in out
        assert "objective (performance)" in out

    def test_run_scenario_list_reports_best(self, capsys, tmp_path):
        import json

        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps([
            {"capacity_mib": 1, "flow": "2D"},
            {"capacity_mib": 1, "flow": "3D"},
        ]))
        assert main(["run", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "best edp: MemPool-3D-1MiB" in out

    def test_run_without_inputs_errors(self, capsys):
        assert main(["run"]) == 2
        assert "need --scenario" in capsys.readouterr().err


class TestListCommand:
    def test_list_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out
        assert "dotp" in out

    def test_list_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for heading in ("flows:", "workloads:", "objectives:", "experiments:"):
            assert heading in out
        assert "fig789" in out

    def test_sweep_kernels_axis_parses(self):
        args = build_parser().parse_args(["sweep", "--kernels", "matmul,dotp"])
        assert args.kernels == ("matmul", "dotp")
