"""Tests for repro.arch.scoreboard — non-blocking-load Snitch model."""

import pytest

from repro.arch.isa import Op, ProgramBuilder
from repro.arch.scoreboard import ScoreboardSnitchCore
from repro.arch.snitch import SnitchCore
from repro.core.config import Flow, MemPoolConfig
from repro.kernels.matmul import run_matmul


class FlatMemory:
    def __init__(self, words=1024, latency=4):
        self.data = [0] * words
        self.latency = latency

    def port(self, cycle, address, is_store, value):
        index = address // 4
        if is_store:
            self.data[index] = value & 0xFFFFFFFF
            return True, self.latency, 0
        return True, self.latency, self.data[index]


def run_core(core_class, program, memory=None, max_cycles=10_000, **kwargs):
    memory = memory or FlatMemory()
    core = core_class(0, program, memory.port, **kwargs)
    cycle = 0
    while not core.halted:
        if cycle > max_cycles:
            raise AssertionError("core did not halt")
        core.step(cycle)
        cycle += 1
    return core, memory


class TestSemantics:
    """The scoreboard model must produce identical architectural results."""

    def independent_loads_program(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.lw(2, 1, 0)
        b.lw(3, 1, 4)
        b.lw(4, 1, 8)
        b.add(5, 2, 3)
        b.add(5, 5, 4)
        b.halt()
        return b.build()

    def test_matches_blocking_core_results(self):
        program = self.independent_loads_program()
        mem_a, mem_b = FlatMemory(), FlatMemory()
        mem_a.data[:3] = [10, 20, 30]
        mem_b.data[:3] = [10, 20, 30]
        blocking, _ = run_core(SnitchCore, program, mem_a)
        scoreboarded, _ = run_core(ScoreboardSnitchCore, program, mem_b)
        assert blocking.regs[5] == scoreboarded.regs[5] == 60

    def test_independent_loads_overlap(self):
        program = self.independent_loads_program()
        mem_a, mem_b = FlatMemory(latency=6), FlatMemory(latency=6)
        blocking, _ = run_core(SnitchCore, program, mem_a)
        scoreboarded, _ = run_core(ScoreboardSnitchCore, program, mem_b)
        assert scoreboarded.stats.cycles < blocking.stats.cycles

    def test_raw_hazard_stalls_until_data(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.lw(2, 1, 0)
        b.addi(3, 2, 1)  # depends on the load
        b.halt()
        mem = FlatMemory(latency=8)
        mem.data[0] = 41
        core, _ = run_core(ScoreboardSnitchCore, b.build(), mem)
        assert core.regs[3] == 42
        assert core.stats.load_stall_cycles > 0

    def test_waw_hazard_respected(self):
        # li overwriting a register with a load in flight must wait for it
        # (otherwise the late load would clobber the newer value).
        b = ProgramBuilder()
        b.li(1, 0)
        b.lw(2, 1, 0)
        b.li(2, 7)
        b.sw(2, 1, 4)
        b.halt()
        mem = FlatMemory(latency=8)
        mem.data[0] = 99
        core, mem = run_core(ScoreboardSnitchCore, b.build(), mem)
        assert mem.data[1] == 7

    def test_mac_reads_accumulator(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.lw(2, 1, 0)  # in flight
        b.li(3, 2)
        b.mac(2, 3, 3)  # rd == 2: must wait for the load, then 99 + 4
        b.sw(2, 1, 4)
        b.halt()
        mem = FlatMemory(latency=8)
        mem.data[0] = 99
        core, mem = run_core(ScoreboardSnitchCore, b.build(), mem)
        assert mem.data[1] == 103

    def test_postinc_pointer_advances_at_issue(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.lw_postinc(2, 1, 4)
        b.lw_postinc(3, 1, 4)  # pointer ready immediately; loads overlap
        b.add(4, 2, 3)
        b.halt()
        mem = FlatMemory(latency=6)
        mem.data[:2] = [5, 6]
        core, _ = run_core(ScoreboardSnitchCore, b.build(), mem)
        assert core.regs[4] == 11
        assert core.regs[1] == 8

    def test_barrier_drains_scoreboard(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.lw(2, 1, 0)
        b.barrier()
        b.halt()
        mem = FlatMemory(latency=9)
        mem.data[0] = 3
        core, _ = run_core(ScoreboardSnitchCore, b.build(), mem)
        assert core.regs[2] == 3

    def test_halt_drains_scoreboard(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.lw(2, 1, 0)
        b.halt()
        mem = FlatMemory(latency=9)
        mem.data[0] = 55
        core, _ = run_core(ScoreboardSnitchCore, b.build(), mem)
        assert core.regs[2] == 55

    def test_outstanding_limit_enforced(self):
        b = ProgramBuilder()
        b.li(1, 0)
        for i in range(4):
            b.lw(2 + i, 1, 4 * i)
        b.halt()
        mem = FlatMemory(latency=20)
        core, _ = run_core(
            ScoreboardSnitchCore, b.build(), mem, max_outstanding_loads=2
        )
        assert core.halted  # completes despite the limit

    def test_rejects_zero_depth(self):
        program = ProgramBuilder().halt().build()
        with pytest.raises(ValueError):
            ScoreboardSnitchCore(0, program, FlatMemory().port, max_outstanding_loads=0)


class TestClusterIntegration:
    def test_scoreboard_matmul_correct_and_faster(self):
        config = MemPoolConfig(1, Flow.FLOW_2D)
        blocking = run_matmul(config, n=16, num_cores=8, scoreboard=False)
        scoreboarded = run_matmul(config, n=16, num_cores=8, scoreboard=True)
        assert blocking.correct and scoreboarded.correct
        assert scoreboarded.cycles < blocking.cycles

    def test_scoreboard_cpi_approaches_paper(self):
        # The paper's optimized kernel runs near 2.9 cycles/MAC; the
        # scoreboarded model should land within ~1.5x of that.
        config = MemPoolConfig(1, Flow.FLOW_2D)
        run = run_matmul(config, n=16, num_cores=8, scoreboard=True)
        assert run.cpi_mac < 2.9 * 1.6

    def test_regs_read_written_cover_all_ops(self):
        # Exhaustive coverage of the hazard tables.
        from repro.arch.isa import Instruction

        for op in Op:
            instr = Instruction(
                op=op, rd=1, rs1=2, rs2=3,
                target=0 if op in (Op.BNE, Op.BLT, Op.J) else -1,
            )
            reads = ScoreboardSnitchCore._regs_read(instr)
            writes = ScoreboardSnitchCore._regs_written(instr)
            assert reads is not None and writes is not None
