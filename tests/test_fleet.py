"""FleetEngine equivalence: bit-for-bit against FastEngine per lane.

Every lane of a fleet must leave its cluster in *exactly* the state a
solo :class:`~repro.simulator.fast.FastEngine` run would have left it
in — cycles, instructions, barrier episodes, per-core stall breakdowns,
router/tile/bank/i-cache counters, and SPM contents — no matter what
rides in the other lanes: other workloads, other core counts, lanes
that retire earlier, lanes that fault, or lanes that time out.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cluster import MemPoolCluster
from repro.arch.isa import ProgramBuilder
from repro.core.config import Flow, MemPoolConfig
from repro.kernels.workloads import (
    prepare_axpy,
    prepare_conv2d,
    prepare_dotp,
    prepare_matvec,
    prepare_stencil5,
)
from repro.simulator.engine import SimulationTimeout
from repro.simulator.fast import FastEngine
from repro.simulator.fleet import FleetEngine

PREPARERS = {
    "dotp": lambda config, cores: prepare_dotp(config, 64, cores),
    "axpy": lambda config, cores: prepare_axpy(config, 64, cores),
    "conv2d": lambda config, cores: prepare_conv2d(config, 10, 10, cores),
    "matvec": lambda config, cores: prepare_matvec(config, 20, 20, cores),
    "stencil5": lambda config, cores: prepare_stencil5(config, 10, 10, cores),
}


def _config(flow: str) -> MemPoolConfig:
    return MemPoolConfig(capacity_mib=1, flow=Flow(flow))


def _snapshot(cluster, result=None):
    """Everything observable on a cluster after a run."""
    snap = {}
    for i, core in enumerate(cluster.cores):
        state = core.export_state()
        state["barrier_release"] = state["barrier_release"] is not None
        snap[f"core{i}"] = state
        snap[f"stats{i}"] = vars(core.stats).copy()
    for t, tile in enumerate(cluster.tiles):
        snap[f"tile{t}"] = vars(tile.port_stats).copy()
        for b, bank in enumerate(tile.spm.banks):
            snap[f"bank{t}.{b}"] = (
                bank.busy_cycle, vars(bank.stats).copy(),
                tuple(bank.export_words()),
            )
        icache = getattr(tile, "icache", None)
        if icache is not None:
            snap[f"icache{t}"] = vars(icache.stats).copy()
    snap["router"] = vars(cluster.router.stats).copy()
    snap["port_state"] = cluster.router.export_port_state()
    snap["episodes"] = cluster.barrier.episodes
    if result is not None:
        snap["result"] = (result.cycles, result.instructions,
                          result.barrier_episodes)
    return snap


def _assert_lane_identical(fast_pair, fleet_pair):
    fast_snap = _snapshot(*fast_pair)
    fleet_snap = _snapshot(*fleet_pair)
    for key in sorted(set(fast_snap) | set(fleet_snap)):
        assert fleet_snap.get(key) == fast_snap.get(key), key


class TestFleetEquivalence:
    """Bit-for-bit per lane: workloads x {1,4,16} cores x both flows."""

    @pytest.mark.parametrize("flow", ["2D", "3D"])
    @pytest.mark.parametrize("cores", [1, 4, 16])
    def test_all_workloads_one_fleet(self, cores, flow):
        names = sorted(PREPARERS)
        fast_runs = []
        for name in names:
            cluster, finish = PREPARERS[name](_config(flow), cores)
            result = FastEngine(cluster).run()
            assert finish(result).correct, name
            fast_runs.append((cluster, result))

        fleet_lanes = [
            PREPARERS[name](_config(flow), cores) for name in names
        ]
        outcomes = FleetEngine(
            [cluster for cluster, _fin in fleet_lanes]
        ).run()
        for name, fast_pair, (cluster, finish), out in zip(
            names, fast_runs, fleet_lanes, outcomes
        ):
            assert out.error is None, (name, out.error)
            assert finish(out.result).correct, name
            _assert_lane_identical(fast_pair, (cluster, out.result))

    def test_mixed_core_counts_one_fleet(self):
        """Heterogeneous topologies batch together and retire apart."""
        shapes = [("dotp", 1), ("dotp", 16), ("axpy", 4), ("matvec", 16)]
        fast_runs = []
        for name, cores in shapes:
            cluster, _fin = PREPARERS[name](_config("2D"), cores)
            fast_runs.append((cluster, FastEngine(cluster).run()))
        fleet_lanes = [
            PREPARERS[name](_config("2D"), cores) for name, cores in shapes
        ]
        outcomes = FleetEngine(
            [cluster for cluster, _fin in fleet_lanes]
        ).run()
        for fast_pair, (cluster, _fin), out in zip(
            fast_runs, fleet_lanes, outcomes
        ):
            assert out.error is None
            _assert_lane_identical(fast_pair, (cluster, out.result))

    def test_mid_batch_lane_retirement(self):
        """A lane 10x shorter than its neighbours exits early untouched."""
        dims = [16, 256, 16, 192]
        fast_runs = []
        for dim in dims:
            cluster, _fin = prepare_dotp(_config("2D"), dim, 1)
            fast_runs.append((cluster, FastEngine(cluster).run()))
        fleet_lanes = [prepare_dotp(_config("2D"), dim, 1) for dim in dims]
        outcomes = FleetEngine(
            [cluster for cluster, _fin in fleet_lanes]
        ).run()
        cycle_counts = [out.result.cycles for out in outcomes]
        assert cycle_counts[0] < cycle_counts[1]  # lanes really retire apart
        for fast_pair, (cluster, _fin), out in zip(
            fast_runs, fleet_lanes, outcomes
        ):
            _assert_lane_identical(fast_pair, (cluster, out.result))


def _spin_cluster():
    builder = ProgramBuilder()
    builder.label("spin")
    builder.j("spin")
    cluster = MemPoolCluster(_config("2D"))
    cluster.load_program(builder.build(), num_cores=4)
    return cluster


def _fault_cluster():
    builder = ProgramBuilder()
    builder.li(1, 0x7FFFFFF0)
    builder.lw(2, 1, 0)
    builder.halt()
    cluster = MemPoolCluster(_config("2D"))
    cluster.load_program(builder.build(), num_cores=2)
    return cluster


class TestFleetFailureLanes:
    """Faulting/timing-out lanes fail alone, identically to FastEngine."""

    def test_timeout_lane_isolated(self):
        fast_cluster = _spin_cluster()
        with pytest.raises(SimulationTimeout) as excinfo:
            FastEngine(fast_cluster, max_cycles=500).run()
        fast_error = str(excinfo.value)

        good_fast, _ = prepare_dotp(_config("2D"), 64, 16)
        fast_result = FastEngine(good_fast, max_cycles=500).run()

        spin = _spin_cluster()
        good, _fin = prepare_dotp(_config("2D"), 64, 16)
        outcomes = FleetEngine([spin, good], max_cycles=500).run()
        assert isinstance(outcomes[0].error, SimulationTimeout)
        assert str(outcomes[0].error) == fast_error
        assert outcomes[0].result is None and not outcomes[0].ok
        assert outcomes[1].error is None and outcomes[1].ok
        _assert_lane_identical((fast_cluster, None), (spin, None))
        _assert_lane_identical(
            (good_fast, fast_result), (good, outcomes[1].result)
        )

    def test_fault_lane_isolated(self):
        fast_cluster = _fault_cluster()
        with pytest.raises(ValueError) as excinfo:
            FastEngine(fast_cluster).run()
        fast_error = str(excinfo.value)

        good_fast, _ = prepare_dotp(_config("2D"), 64, 16)
        fast_result = FastEngine(good_fast).run()

        good, _fin = prepare_dotp(_config("2D"), 64, 16)
        fault = _fault_cluster()
        outcomes = FleetEngine([good, fault]).run()
        assert isinstance(outcomes[1].error, ValueError)
        assert str(outcomes[1].error) == fast_error
        assert outcomes[0].error is None
        _assert_lane_identical((fast_cluster, None), (fault, None))
        _assert_lane_identical(
            (good_fast, fast_result), (good, outcomes[0].result)
        )


class TestFleetSupports:
    def test_supports_standard_cluster(self):
        cluster, _fin = prepare_dotp(_config("2D"), 16, 4)
        assert FleetEngine.supports(cluster)

    def test_rejects_scoreboard_cores(self):
        builder = ProgramBuilder()
        builder.halt()
        cluster = MemPoolCluster(_config("2D"))
        cluster.load_program(builder.build(), num_cores=2, scoreboard=True)
        assert not FleetEngine.supports(cluster)
        with pytest.raises(ValueError, match="lane 0"):
            FleetEngine([cluster])

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="no lanes"):
            FleetEngine([])


# ---------------------------------------------------------------------------
# Randomized differential: the same SPMD program family the fast engine
# is fuzzed with, ridden in multi-lane fleets against solo fast runs.

reg = st.integers(min_value=1, max_value=7)
imm = st.integers(min_value=-64, max_value=64)
offset = st.integers(min_value=0, max_value=47)

operation = st.one_of(
    st.tuples(st.just("li"), reg, imm),
    st.tuples(st.just("add"), reg, reg, reg),
    st.tuples(st.just("sub"), reg, reg, reg),
    st.tuples(st.just("addi"), reg, reg, imm),
    st.tuples(st.just("mul"), reg, reg, reg),
    st.tuples(st.just("mac"), reg, reg, reg),
    st.tuples(st.just("lw"), reg, offset),
    st.tuples(st.just("lw_post"), reg, offset),
    st.tuples(st.just("sw"), reg, offset),
    st.tuples(st.just("barrier")),
)


def _build_spmd(ops):
    """A straight-line SPMD program; addresses salt with the hart id."""
    b = ProgramBuilder()
    b.csrr_hartid(1)
    b.li(9, 4)
    b.mul(9, 1, 9)  # x9 = 4 * hartid: per-core address salt
    for op in ops:
        name = op[0]
        if name == "li":
            b.li(op[1], op[2])
        elif name == "add":
            b.add(op[1], op[2], op[3])
        elif name == "sub":
            b.sub(op[1], op[2], op[3])
        elif name == "addi":
            b.addi(op[1], op[2], op[3])
        elif name == "mul":
            b.mul(op[1], op[2], op[3])
        elif name == "mac":
            b.mac(op[1], op[2], op[3])
        elif name == "lw":
            b.li(8, op[2] * 4)
            b.lw(op[1], 8, 0)
        elif name == "lw_post":
            b.li(8, op[2] * 4)
            b.add(8, 8, 9)
            b.lw_postinc(op[1], 8, 4)
        elif name == "sw":
            b.li(8, op[2] * 4)
            b.add(8, 8, 9)
            b.sw(op[1], 8, 0)
        elif name == "barrier":
            b.barrier()
    b.barrier()
    b.halt()
    return b.build()


def _loaded(program, cores):
    cluster = MemPoolCluster(_config("2D"))
    cluster.write_words(0, [(i * 2654435761) & 0xFFFFFFFF
                            for i in range(128)])
    cluster.load_program(program, num_cores=cores)
    return cluster


class TestRandomizedDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        lanes=st.lists(
            st.tuples(
                st.lists(operation, min_size=1, max_size=16),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_random_fleets_match_fast(self, lanes):
        programs = [(_build_spmd(ops), cores) for ops, cores in lanes]
        fast_runs = []
        for program, cores in programs:
            cluster = _loaded(program, cores)
            fast_runs.append((cluster, FastEngine(cluster).run()))
        fleet_clusters = [
            _loaded(program, cores) for program, cores in programs
        ]
        outcomes = FleetEngine(fleet_clusters).run()
        for fast_pair, cluster, out in zip(
            fast_runs, fleet_clusters, outcomes
        ):
            assert out.error is None
            _assert_lane_identical(fast_pair, (cluster, out.result))
