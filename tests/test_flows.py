"""Integration tests of the 2D and Macro-3D implementation flows."""

import pytest

from repro.core.config import CAPACITIES_MIB, Flow, MemPoolConfig, paper_configurations
from repro.core.metrics import normalize
from repro.physical.flow2d import implement_tile_2d
from repro.physical.flow3d import (
    implement_group,
    implement_tile_3d,
    memory_die_array,
)


@pytest.fixture(scope="module")
def groups():
    return {c.name: implement_group(c) for c in paper_configurations()}


@pytest.fixture(scope="module")
def baseline(groups):
    return groups["MemPool-2D-1MiB"].to_group_result()


class TestTileFlows:
    def test_flow_mismatch_rejected(self):
        with pytest.raises(ValueError):
            implement_tile_2d(MemPoolConfig(1, Flow.FLOW_3D))
        with pytest.raises(ValueError):
            implement_tile_3d(MemPoolConfig(1, Flow.FLOW_2D))

    def test_2d_tile_has_single_die(self):
        tile = implement_tile_2d(MemPoolConfig(1, Flow.FLOW_2D))
        assert tile.memory_die is None
        assert not tile.is_3d
        assert tile.memory_utilization is None

    def test_3d_tile_has_two_dies_sharing_footprint(self):
        tile = implement_tile_3d(MemPoolConfig(1, Flow.FLOW_3D))
        assert tile.is_3d
        assert tile.memory_die is not None
        assert tile.memory_die.area_um2 == pytest.approx(tile.logic_die.area_um2)

    def test_3d_tile_smaller_than_2d(self):
        for cap in CAPACITIES_MIB:
            t2 = implement_tile_2d(MemPoolConfig(cap, Flow.FLOW_2D))
            t3 = implement_tile_3d(MemPoolConfig(cap, Flow.FLOW_3D))
            assert t3.footprint_um2 < t2.footprint_um2

    def test_1_and_2mib_3d_tiles_share_footprint(self):
        # Table I: both are logic-die bound, so identical footprints.
        t1 = implement_tile_3d(MemPoolConfig(1, Flow.FLOW_3D))
        t2 = implement_tile_3d(MemPoolConfig(2, Flow.FLOW_3D))
        assert t2.footprint_um2 == pytest.approx(t1.footprint_um2, rel=0.01)

    def test_memory_utilization_rises_with_capacity(self):
        utils = [
            implement_tile_3d(MemPoolConfig(cap, Flow.FLOW_3D)).memory_utilization
            for cap in CAPACITIES_MIB
        ]
        assert utils == sorted(utils)
        assert 0.4 < utils[0] < 0.6  # ~51 % at 1 MiB
        assert utils[-1] > 0.9  # ~100 % at 8 MiB

    def test_8mib_uses_adjusted_partition(self):
        tile = implement_tile_3d(MemPoolConfig(8, Flow.FLOW_3D))
        assert tile.partition.spm_banks_on_memory_die == 15
        assert not tile.partition.icache_on_memory_die

    def test_8mib_memory_die_is_5x3(self):
        array = memory_die_array(MemPoolConfig(8, Flow.FLOW_3D))
        assert {array.rows, array.cols} == {5, 3}

    def test_small_capacity_memory_die_keeps_all_banks(self):
        for cap in (1, 2, 4):
            tile = implement_tile_3d(MemPoolConfig(cap, Flow.FLOW_3D))
            assert tile.partition.is_default


class TestGroupFlows:
    def test_dispatch_matches_flow(self):
        g2 = implement_group(MemPoolConfig(1, Flow.FLOW_2D))
        g3 = implement_group(MemPoolConfig(1, Flow.FLOW_3D))
        assert g2.stack.name == "M8"
        assert g3.stack.name == "M6M6"

    def test_3d_groups_smaller(self, groups):
        for cap in CAPACITIES_MIB:
            g2 = groups[f"MemPool-2D-{cap}MiB"]
            g3 = groups[f"MemPool-3D-{cap}MiB"]
            assert g3.footprint_um2 < g2.footprint_um2

    def test_largest_3d_smaller_than_smallest_2d(self, groups):
        # Paper: MemPool-3D-8MiB is ~14 % smaller than MemPool-2D-1MiB.
        assert (
            groups["MemPool-3D-8MiB"].footprint_um2
            < groups["MemPool-2D-1MiB"].footprint_um2
        )

    def test_3d_combined_area_is_two_dies(self, groups):
        g3 = groups["MemPool-3D-1MiB"]
        assert g3.combined_area_um2 == pytest.approx(2 * g3.footprint_um2)
        g2 = groups["MemPool-2D-1MiB"]
        assert g2.combined_area_um2 == pytest.approx(g2.footprint_um2)

    def test_combined_area_overhead_shrinks_with_capacity(self, groups, baseline):
        # Table II: +33 % at 1 MiB down to +9 % at 8 MiB.
        overheads = []
        for cap in CAPACITIES_MIB:
            n2 = normalize(groups[f"MemPool-2D-{cap}MiB"].to_group_result(), baseline)
            n3 = normalize(groups[f"MemPool-3D-{cap}MiB"].to_group_result(), baseline)
            overheads.append(n3.combined_area / n2.combined_area)
        assert overheads == sorted(overheads, reverse=True)

    def test_3d_faster_than_2d_at_same_capacity(self, groups):
        for cap in CAPACITIES_MIB:
            f2 = groups[f"MemPool-2D-{cap}MiB"].timing.frequency_mhz
            f3 = groups[f"MemPool-3D-{cap}MiB"].timing.frequency_mhz
            assert f3 > f2

    def test_3d_wire_length_shorter(self, groups):
        for cap in CAPACITIES_MIB:
            wl2 = groups[f"MemPool-2D-{cap}MiB"].wirelength.total_um
            wl3 = groups[f"MemPool-3D-{cap}MiB"].wirelength.total_um
            assert wl3 < wl2

    def test_3d_fewer_buffers(self, groups):
        for cap in CAPACITIES_MIB:
            b2 = groups[f"MemPool-2D-{cap}MiB"].buffering.total
            b3 = groups[f"MemPool-3D-{cap}MiB"].buffering.total
            assert b3 < b2

    def test_3d_less_power_at_same_capacity(self, groups):
        for cap in CAPACITIES_MIB:
            p2 = groups[f"MemPool-2D-{cap}MiB"].power.total_mw
            p3 = groups[f"MemPool-3D-{cap}MiB"].power.total_mw
            assert p3 < p2

    def test_3d_lower_pdp(self, groups):
        for cap in CAPACITIES_MIB:
            r2 = groups[f"MemPool-2D-{cap}MiB"].to_group_result()
            r3 = groups[f"MemPool-3D-{cap}MiB"].to_group_result()
            assert r3.power_delay_product < r2.power_delay_product

    def test_f2f_bumps_only_in_3d(self, groups):
        for cap in CAPACITIES_MIB:
            assert groups[f"MemPool-2D-{cap}MiB"].num_f2f_bumps == 0
            assert groups[f"MemPool-3D-{cap}MiB"].num_f2f_bumps > 50_000

    def test_3d_better_tns(self, groups):
        for cap in CAPACITIES_MIB:
            tns2 = groups[f"MemPool-2D-{cap}MiB"].timing.tns_ps
            tns3 = groups[f"MemPool-3D-{cap}MiB"].timing.tns_ps
            assert abs(tns3) < abs(tns2)

    def test_group_result_density_in_paper_band(self, groups):
        for impl in groups.values():
            assert 0.45 < impl.to_group_result().density < 0.65

    def test_wire_fraction_of_2d_baseline_matches_paper(self, groups):
        # ~37 % of the 2D critical path is wire propagation delay.
        assert groups["MemPool-2D-1MiB"].timing.wire_fraction == pytest.approx(
            0.37, abs=0.06
        )

    def test_baseline_frequency_near_target(self, groups):
        # Implemented against a uniform 1 GHz target.
        assert groups["MemPool-2D-1MiB"].timing.frequency_mhz == pytest.approx(
            1000.0, rel=0.05
        )
