"""Property-based tests on the simulated cluster: coherence, determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cluster import MemPoolCluster
from repro.core.config import Flow, MemPoolConfig
from repro.simulator.engine import run_cluster
from repro.simulator.program import fill_program, memcpy_program


def make_cluster():
    return MemPoolCluster(MemPoolConfig(1, Flow.FLOW_2D))


# ---------------------------------------------------------------------------
# Router-level coherence: any interleaving of routed writes to distinct
# addresses is fully visible afterwards.


@settings(max_examples=40, deadline=None)
@given(
    writes=st.dictionaries(
        st.integers(min_value=0, max_value=511),  # word index
        st.integers(min_value=0, max_value=2**32 - 1),
        min_size=1,
        max_size=40,
    ),
    core_seed=st.integers(min_value=0, max_value=255),
)
def test_routed_writes_are_coherent(writes, core_seed):
    cluster = make_cluster()
    cycle = 0
    for word, value in writes.items():
        core = (core_seed + word) % cluster.arch.num_cores
        accepted = False
        while not accepted:
            accepted, _, _ = cluster.router.access(
                cycle, core, word * 4, is_store=True, value=value
            )
            cycle += 1
    for word, value in writes.items():
        assert cluster.read_words(word * 4, 1)[0] == value


# ---------------------------------------------------------------------------
# Engine determinism: identical programs and inputs produce identical
# cycle counts and memory images.


@settings(max_examples=15, deadline=None)
@given(
    num_words=st.integers(min_value=8, max_value=256),
    cores=st.sampled_from([1, 2, 4, 8, 16]),
    value=st.integers(min_value=0, max_value=2**31),
)
def test_engine_is_deterministic(num_words, cores, value):
    def run():
        cluster = make_cluster()
        cluster.load_program(
            fill_program(num_words, cores, 0, value), num_cores=cores
        )
        result = run_cluster(cluster)
        return result.cycles, cluster.read_words(0, num_words)

    first = run()
    second = run()
    assert first == second


# ---------------------------------------------------------------------------
# Memcpy preserves arbitrary payloads over arbitrary core counts.


@settings(max_examples=25, deadline=None)
@given(
    payload=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=200
    ),
    cores=st.sampled_from([1, 3, 8, 16]),
)
def test_memcpy_preserves_payload(payload, cores):
    cluster = make_cluster()
    src, dst = 0, 4 * len(payload)
    cluster.write_words(src, payload)
    cluster.load_program(
        memcpy_program(len(payload), cores, src, dst), num_cores=cores
    )
    run_cluster(cluster)
    assert cluster.read_words(dst, len(payload)) == payload


# ---------------------------------------------------------------------------
# Scoreboard and blocking cores agree on the fill pattern through the
# full fabric (not just flat memory).


@settings(max_examples=10, deadline=None)
@given(
    num_words=st.integers(min_value=8, max_value=128),
    cores=st.sampled_from([2, 4, 8]),
)
def test_core_models_agree_through_fabric(num_words, cores):
    images = []
    for scoreboard in (False, True):
        cluster = make_cluster()
        cluster.load_program(
            fill_program(num_words, cores, 0, 12345),
            num_cores=cores,
            scoreboard=scoreboard,
        )
        run_cluster(cluster)
        images.append(cluster.read_words(0, num_words))
    assert images[0] == images[1]
