"""Tests for repro.obs: tracing, metrics, profiling, reports, the gate.

The load-bearing properties:

* disarmed tracing writes nothing and costs a boolean check;
* armed traces reconstruct the engine -> backend -> worker -> stage
  tree across thread pools, process pools, and the service HTTP
  boundary (one trace id end to end);
* metrics are get-or-create by name, kind-collision-safe, and export
  identically over ``GET /v1/metrics`` (JSON and Prometheus text);
* BENCH artifacts are schema-stamped, the trajectory file accumulates
  them, and its structural gate fails on cache regressions only;
* the HTML report is fully self-contained (no network fetches).
"""

from __future__ import annotations

import json

import pytest

from repro.api import Scenario
from repro.engine import Engine
from repro.obs import metrics, profile, trace
from repro.obs.profile import StageProfiler
from repro.obs.report import (
    append_trajectory,
    check_trajectory,
    load_bench,
    load_trajectory,
    render_html,
    stamp_bench,
    write_html,
)


@pytest.fixture()
def trace_state():
    """Snapshot and restore the module-global trace arm/sink state."""
    armed, sink = trace._armed, trace._sink
    yield
    trace._armed, trace._sink = armed, sink


def _scenarios(n: int = 2) -> list:
    bandwidths = (4.0, 16.0, 64.0, 128.0)
    return [
        Scenario(capacity_mib=1 if i % 2 == 0 else 4, flow="2D",
                 bandwidth=bandwidths[i % len(bandwidths)])
        for i in range(n)
    ]


class TestTraceCore:
    def test_disarmed_span_is_shared_noop(self, trace_state):
        trace.disable()
        span = trace.span("anything", attr=1)
        assert span is trace.span("else")  # the singleton: zero alloc
        with span:
            span.set(more=2)  # all no-ops
        assert trace.current_context() is None
        assert trace.envelope() is None

    def test_disarmed_run_writes_no_sink(self, trace_state, tmp_path,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        trace.disable()
        outcome = Engine(backend="serial").run(_scenarios(2))
        assert outcome.stats.failed == 0
        assert list(tmp_path.iterdir()) == []  # no sink, no side files

    def test_armed_spans_nest_and_record(self, trace_state, tmp_path):
        sink = tmp_path / "t.jsonl"
        trace.enable(sink)
        with trace.span("outer", a=1):
            with trace.span("inner"):
                pass
        trace.disable()
        spans = {s["name"]: s for s in trace.read_spans(sink)}
        assert set(spans) == {"outer", "inner"}
        assert spans["inner"]["parent"] == spans["outer"]["span"]
        assert spans["inner"]["trace"] == spans["outer"]["trace"]
        assert spans["outer"]["parent"] is None
        assert spans["outer"]["attrs"] == {"a": 1}
        assert spans["outer"]["duration_s"] >= spans["inner"]["duration_s"]

    def test_exception_annotates_and_unwinds(self, trace_state, tmp_path):
        sink = tmp_path / "t.jsonl"
        trace.enable(sink)
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("x")
        assert trace.current_context() is None  # stack unwound
        trace.disable()
        (record,) = trace.read_spans(sink)
        assert record["attrs"]["error"] == "ValueError"

    def test_header_round_trip(self):
        ctx = {"trace": "aa11", "span": "bb22"}
        assert trace.from_header(trace.to_header(ctx)) == ctx
        assert trace.from_header(None) is None
        assert trace.from_header("") is None
        assert trace.from_header("garbage") is None

    def test_walk_tree_orphans_become_roots(self):
        spans = [
            {"trace": "t", "span": "a", "parent": None, "name": "root",
             "start_unix": 1.0},
            {"trace": "t", "span": "b", "parent": "a", "name": "child",
             "start_unix": 2.0},
            {"trace": "t", "span": "c", "parent": "missing",
             "name": "orphan", "start_unix": 3.0},
        ]
        walked = [(d, r["name"]) for d, r in trace.walk_tree(spans)]
        assert walked == [(0, "root"), (1, "child"), (0, "orphan")]


class TestTracePropagation:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_pool_spans_reparent_to_submitter(self, trace_state, tmp_path,
                                              backend):
        sink = tmp_path / "t.jsonl"
        trace.enable(sink)
        with trace.span("test.root"):
            outcome = Engine(backend=backend, workers=2).run(_scenarios(3))
        trace.disable()
        assert outcome.stats.failed == 0
        spans = trace.read_spans(sink)
        assert len({s["trace"] for s in spans}) == 1  # one trace end to end
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        jobs = by_name["engine.job"]
        assert len(jobs) == 3
        backend_span = by_name["engine.backend"][0]
        assert all(j["parent"] == backend_span["span"] for j in jobs)
        # every job span carries a stage pair underneath
        assert len(by_name["stage.implement"]) == 3
        assert len(by_name["stage.cycles"]) == 3

    def test_process_pool_workers_adopt_envelope(self, trace_state,
                                                 tmp_path):
        import os

        sink = tmp_path / "t.jsonl"
        trace.enable(sink)
        with trace.span("test.root"):
            outcome = Engine(
                backend="process", workers=2, chunksize=1
            ).run(_scenarios(2))
        trace.disable()
        assert outcome.stats.failed == 0
        spans = trace.read_spans(sink)
        assert len({s["trace"] for s in spans}) == 1
        worker_pids = {
            s["pid"] for s in spans if s["name"] == "engine.job"
        }
        assert os.getpid() not in worker_pids  # really ran out of process
        tree = {r["name"] for d, r in trace.walk_tree(spans) if d >= 3}
        assert {"engine.job", "stage.implement", "stage.cycles"} <= tree

    def test_engine_trace_kwarg_arms(self, trace_state, tmp_path):
        sink = tmp_path / "t.jsonl"
        Engine(backend="serial", trace=sink).run(_scenarios(1))
        trace.disable()
        names = {s["name"] for s in trace.read_spans(sink)}
        assert "engine.run_many" in names and "engine.job" in names


class TestMetrics:
    def test_counter_math_and_monotonicity(self):
        c = metrics.Counter("t_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_function_and_dead_callback(self):
        g = metrics.Gauge("t_gauge")
        g.set(4)
        assert g.value == 4.0
        g.set_function(lambda: 7)
        assert g.value == 7.0
        g.set_function(lambda: 1 / 0)  # dead callback: NaN, not a crash
        assert g.value != g.value
        assert "NaN" in metrics._fmt(g.value)

    def test_histogram_cumulative_buckets(self):
        h = metrics.Histogram("t_hist", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)
        assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}

    def test_registry_get_or_create_and_kind_clash(self):
        reg = metrics.MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_prometheus_exposition_format(self):
        reg = metrics.MetricsRegistry()
        reg.counter("t_requests_total", "requests").inc(2)
        reg.histogram("t_seconds", buckets=(0.5,)).observe(0.1)
        text = reg.prometheus()
        assert "# HELP t_requests_total requests" in text
        assert "# TYPE t_requests_total counter" in text
        assert "t_requests_total 2" in text
        assert 't_seconds_bucket{le="0.5"} 1' in text
        assert 't_seconds_bucket{le="+Inf"} 1' in text
        assert "t_seconds_count 1" in text

    def test_engine_job_latency_histogram_fills(self):
        before = metrics.histogram("repro_engine_job_seconds").snapshot()
        Engine(backend="serial").run(_scenarios(2))
        after = metrics.histogram("repro_engine_job_seconds").snapshot()
        assert after["count"] == before["count"] + 2


class TestProfile:
    def test_hooks_and_breakdown(self):
        profiler = StageProfiler()
        with profiler.attached():
            profile.notify("implement", 0.3)
            profile.notify("cycles", 0.1)
            profile.notify("implement", 0.1)
        profile.notify("implement", 99.0)  # detached: not recorded
        breakdown = profiler.breakdown()
        assert breakdown["implement"]["count"] == 2
        assert breakdown["implement"]["total_s"] == pytest.approx(0.4)
        assert breakdown["implement"]["share"] == pytest.approx(0.8)
        assert breakdown["cycles"]["share"] == pytest.approx(0.2)
        assert "implement" in profiler.summary()

    def test_pipeline_feeds_attached_profiler(self):
        profiler = StageProfiler()
        with profiler.attached():
            Engine(backend="serial").run(_scenarios(1))
        breakdown = profiler.breakdown()
        assert set(breakdown) == {"implement", "cycles"}
        assert breakdown["implement"]["count"] == 1

    def test_from_trace_rebuilds_stage_breakdown(self, tmp_path):
        sink = tmp_path / "t.jsonl"
        for name, dur in (("stage.implement", 0.2), ("stage.cycles", 0.1),
                          ("engine.job", 9.9)):
            sink.open("a").write(json.dumps(
                {"trace": "t", "span": name, "parent": None, "name": name,
                 "start_unix": 0.0, "duration_s": dur, "pid": 1, "attrs": {}}
            ) + "\n")
        breakdown = StageProfiler.from_trace(sink).breakdown()
        assert set(breakdown) == {"implement", "cycles"}  # engine.* ignored
        assert breakdown["implement"]["total_s"] == pytest.approx(0.2)


class TestServiceObservability:
    def test_http_boundary_reparents_and_metrics_export(self, trace_state,
                                                        tmp_path):
        from repro.client import ServiceClient
        from repro.service import ReproService

        sink = tmp_path / "svc.jsonl"
        trace.enable(sink)
        service = ReproService(port=0, backend="serial",
                               cache_dir=str(tmp_path / "cache"))
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            with trace.span("client.root"):
                client.run(_scenarios(1))
                job = client.submit_runs(_scenarios(2))
                client.wait(job, timeout_s=60)
            health = client.health()
            snapshot = client.metrics()
            text = client.metrics_text()
        trace.disable()

        # one trace id across client -> HTTP -> runner threads -> stages
        spans = trace.read_spans(sink)
        assert len({s["trace"] for s in spans}) == 1
        names = {s["name"] for s in spans}
        assert {"client.root", "service.runs", "service.job",
                "engine.run_many", "engine.job",
                "stage.implement"} <= names
        roots = [s for s in spans if s["parent"] is None]
        assert [r["name"] for r in roots] == ["client.root"]

        # satellite: health carries uptime / queue depth / active jobs
        assert health["uptime_s"] > 0
        assert health["queue_depth"] == 0
        assert health["active_jobs"] == 0

        # metrics surface over both formats
        assert snapshot["repro_service_requests_total"]["value"] >= 4
        assert snapshot["repro_service_queue_depth"]["kind"] == "gauge"
        assert "repro_engine_job_seconds_bucket" in text
        assert "# TYPE repro_service_requests_total counter" in text

    def test_backpressure_and_drain_counters(self, tmp_path):
        from repro.client import ServiceClient, ServiceError
        from repro.service import ReproService

        rejected = metrics.counter("repro_service_backpressure_total")
        before = rejected.value
        service = ReproService(port=0, backend="serial", queue_limit=1,
                               max_active=1)
        # stall the single runner so queued jobs pile up deterministically
        import threading

        gate = threading.Event()
        original = service._run_job

        def slow(job):
            gate.wait(10)
            original(job)

        service._run_job = slow
        with service.run_in_thread() as url:
            client = ServiceClient(url, retries=0)
            client.submit_runs(_scenarios(1))  # occupies runner or queue
            # with a stalled runner one of the next submits must bounce
            try:
                client.submit_runs(_scenarios(2))
                client.submit_runs(_scenarios(3))
            except ServiceError as err:
                assert err.status == 429
            else:
                pytest.fail("expected a 429 once the queue filled")
            gate.set()
        assert rejected.value == before + 1


class TestBenchStamp:
    def test_stamp_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_sim.json"
        payload = stamp_bench({"workloads": {"matmul": {"speedup": 2.0}}})
        path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = load_bench(path)
        assert loaded["schema_version"] == 1
        assert loaded["host"]["python"]
        assert loaded["workloads"]["matmul"]["speedup"] == 2.0

    def test_loader_tolerates_unstamped_artifacts(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"results": {}}), encoding="utf-8")
        loaded = load_bench(path)
        assert loaded["schema_version"] == 0
        assert loaded["host"] is None

    def test_loader_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"foo": 1}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_bench(path)

    def test_loader_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            json.dumps({"workloads": {}, "schema_version": 99}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError):
            load_bench(path)

    def test_checked_in_artifacts_still_load(self):
        from pathlib import Path

        for name in ("BENCH_sim.json", "BENCH_service.json"):
            path = Path(__file__).resolve().parent.parent / name
            if path.is_file():
                assert "schema_version" in load_bench(path)


def _service_doc(re_evals=0, duplicates=0, hit_rate_records=56):
    return {
        "results": {
            "warm_streamed_sweep": {
                "records": hit_rate_records,
                "records_per_s": 100.0,
                "re_evaluations": re_evals,
            },
            "warm_sync_runs": {
                "requests_per_s": 1000.0,
                "duplicate_evaluations": duplicates,
            },
        }
    }


class TestTrajectoryGate:
    def test_append_accumulates_and_stamps(self, tmp_path):
        path = tmp_path / "traj.json"
        entry = append_trajectory(
            path,
            sim={"workloads": {"matmul": {"speedup": 2.0}}},
            service=_service_doc(),
            label="abc1234",
        )
        assert entry["label"] == "abc1234"
        assert entry["sim"]["geomean_speedup"] == pytest.approx(2.0)
        assert entry["service"]["warm_hit_rate"] == 1.0
        append_trajectory(path, service=_service_doc(), label="def5678")
        doc = load_trajectory(path)
        assert [e["label"] for e in doc["entries"]] == ["abc1234", "def5678"]

    def test_missing_trajectory_is_empty_and_passes(self, tmp_path):
        doc = load_trajectory(tmp_path / "absent.json")
        assert doc["entries"] == []
        assert check_trajectory(doc) == []

    def test_gate_fails_on_structural_regressions(self, tmp_path):
        path = tmp_path / "traj.json"
        append_trajectory(path, service=_service_doc(re_evals=3))
        problems = check_trajectory(path)
        assert len(problems) == 1 and "re-evaluated 3" in problems[0]
        append_trajectory(path, service=_service_doc(duplicates=2))
        assert any("duplicate" in p for p in check_trajectory(path))

    def test_gate_fails_on_hit_rate_drop_only(self, tmp_path):
        path = tmp_path / "traj.json"
        append_trajectory(path, service=_service_doc())
        assert check_trajectory(path) == []  # 100% warm hits: clean
        # timing change alone must NOT fail the gate
        slower = _service_doc()
        slower["results"]["warm_streamed_sweep"]["records_per_s"] = 1.0
        append_trajectory(path, service=slower)
        assert check_trajectory(path) == []
        # a genuine hit-rate drop must
        drop = _service_doc(re_evals=0)
        drop["results"]["warm_streamed_sweep"]["records"] = 56
        drop["results"]["warm_streamed_sweep"]["re_evaluations"] = 0
        entry = append_trajectory(path, service=drop)
        assert entry["service"]["warm_hit_rate"] == 1.0
        worse = _service_doc(re_evals=7)
        append_trajectory(path, service=worse)
        problems = check_trajectory(path)
        assert any("hit rate dropped" in p for p in problems)


class TestHtmlReport:
    @pytest.fixture(scope="class")
    def records(self):
        return Engine(backend="serial").run(_scenarios(6)).records

    def test_report_is_self_contained(self, records, tmp_path):
        traj = {"schema_version": 1, "entries": [
            {"label": "a", "recorded_unix": 1,
             "sim": {"speedups": {"matmul": 2.0}, "geomean_speedup": 2.0},
             "service": {"records_per_s": 10.0, "re_evaluations": 0,
                         "requests_per_s": 100.0,
                         "duplicate_evaluations": 0, "warm_hit_rate": 1.0}},
            {"label": "b", "recorded_unix": 2,
             "sim": {"speedups": {"matmul": 2.2}, "geomean_speedup": 2.2},
             "service": {"records_per_s": 12.0, "re_evaluations": 0,
                         "requests_per_s": 110.0,
                         "duplicate_evaluations": 0, "warm_hit_rate": 1.0}},
        ]}
        profiler = StageProfiler()
        profiler("implement", 0.3)
        profiler("cycles", 0.1)
        html = render_html(records, trajectory=traj,
                           stage_profile=profiler.breakdown(),
                           title="t")
        # all four views render
        assert "Pareto front" in html
        assert "Sweep heatmap" in html
        assert "Per-stage profile" in html
        assert "BENCH trajectory" in html
        # zero network fetches: no external URLs, scripts, or imports
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html and "@import" not in html
        assert 'src="' not in html and "url(" not in html
        # identity never rides on color alone: legend + table views exist
        assert "legend" in html and "<table" in html

    def test_sections_are_optional(self):
        html = render_html([], trajectory=None, stage_profile=None)
        assert "Pareto front" not in html
        assert "<html" in html  # still a complete document

    def test_write_html(self, records, tmp_path):
        out = write_html(tmp_path / "r.html", records=records)
        text = out.read_text(encoding="utf-8")
        assert text.startswith("<!DOCTYPE html>")
        assert "prefers-color-scheme: dark" in text  # dark mode is designed


class TestCli:
    def test_report_html_cli(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main
        from repro.sweep import ResultStore

        store = ResultStore(tmp_path / "results.jsonl")
        for _, record in Engine(
            backend="serial", store=store
        ).run_many(_scenarios(4)):
            pass
        out = tmp_path / "report.html"
        assert main(["report", str(tmp_path / "results.jsonl"),
                     "--html", str(out)]) == 0
        assert out.read_text(encoding="utf-8").count("<svg") >= 2

    def test_report_html_needs_input(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["report", "--html", str(tmp_path / "x.html")]) == 2
        assert main(["report"]) == 2

    def test_trajectory_cli_append_then_check(self, tmp_path, monkeypatch,
                                              capsys):
        from repro.__main__ import main

        sim = tmp_path / "BENCH_sim.json"
        sim.write_text(json.dumps(stamp_bench(
            {"workloads": {"matmul": {"speedup": 2.0}}}
        )), encoding="utf-8")
        svc = tmp_path / "BENCH_service.json"
        svc.write_text(json.dumps(_service_doc()), encoding="utf-8")
        traj = tmp_path / "traj.json"
        assert main(["trajectory", "append", "--file", str(traj),
                     "--sim", str(sim), "--service", str(svc),
                     "--label", "abc"]) == 0
        assert main(["trajectory", "check", "--file", str(traj)]) == 0
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(_service_doc(re_evals=1)),
                       encoding="utf-8")
        assert main(["trajectory", "append", "--file", str(traj),
                     "--service", str(bad)]) == 0
        assert main(["trajectory", "check", "--file", str(traj)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err

    def test_metrics_cli_against_live_service(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.service import ReproService

        service = ReproService(port=0, backend="serial")
        with service.run_in_thread() as url:
            assert main(["metrics", "--url", url]) == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert "repro_service_requests_total" in snapshot
            assert main(["metrics", "--url", url, "--prometheus"]) == 0
            assert "# TYPE" in capsys.readouterr().out
