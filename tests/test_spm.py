"""Tests for repro.arch.spm."""

import pytest

from repro.arch.spm import SPMBank, TileSPM


class TestSPMBank:
    def test_write_then_read(self):
        bank = SPMBank(words=8)
        granted, _ = bank.try_access(0, 3, write=True, value=0xDEADBEEF)
        assert granted
        granted, data = bank.try_access(1, 3, write=False)
        assert granted
        assert data == 0xDEADBEEF

    def test_single_port_conflict(self):
        bank = SPMBank(words=8)
        ok, _ = bank.try_access(0, 0, write=False)
        blocked, _ = bank.try_access(0, 1, write=False)
        assert ok and not blocked
        assert bank.stats.conflicts == 1

    def test_next_cycle_clears_conflict(self):
        bank = SPMBank(words=8)
        bank.try_access(0, 0, write=False)
        ok, _ = bank.try_access(1, 1, write=False)
        assert ok

    def test_values_masked_to_32_bits(self):
        bank = SPMBank(words=2)
        bank.poke(0, -1)
        assert bank.peek(0) == 0xFFFFFFFF

    def test_out_of_range_offset(self):
        bank = SPMBank(words=2)
        with pytest.raises(IndexError):
            bank.try_access(0, 2, write=False)

    def test_rejects_empty_bank(self):
        with pytest.raises(ValueError):
            SPMBank(words=0)

    def test_stats_counters(self):
        bank = SPMBank(words=4)
        bank.try_access(0, 0, write=True, value=1)
        bank.try_access(1, 0, write=False)
        bank.try_access(2, 1, write=False)
        assert bank.stats.writes == 1
        assert bank.stats.reads == 2
        assert bank.stats.accesses == 3


class TestTileSPM:
    def test_build(self):
        spm = TileSPM.build(banks_per_tile=16, words_per_bank=256)
        assert len(spm.banks) == 16
        assert spm.total_words == 4096

    def test_build_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            TileSPM.build(banks_per_tile=0, words_per_bank=4)

    def test_conflict_rate_zero_when_untouched(self):
        spm = TileSPM.build(banks_per_tile=2, words_per_bank=4)
        assert spm.conflict_rate() == 0.0

    def test_conflict_rate_counts_refusals(self):
        spm = TileSPM.build(banks_per_tile=1, words_per_bank=4)
        spm.banks[0].try_access(0, 0, write=False)
        spm.banks[0].try_access(0, 1, write=False)  # conflict
        assert spm.conflict_rate() == pytest.approx(0.5)
