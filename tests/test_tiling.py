"""Tests for repro.kernels.tiling."""

import pytest

from repro.core.config import PAPER_MATRIX_DIM, TILE_SIZE_BY_CAPACITY
from repro.kernels.tiling import (
    TILES_IN_FLIGHT,
    TilingPlan,
    lcm_matrix_dim,
    paper_tiling,
    select_tile_size,
)


class TestTilingPlan:
    def test_phase_counts(self):
        plan = TilingPlan(matrix_dim=1024, tile_size=256)
        assert plan.tiles_per_edge == 4
        assert plan.output_tiles == 16
        assert plan.phases_per_output_tile == 4
        assert plan.total_phases == 64

    def test_working_set(self):
        plan = TilingPlan(matrix_dim=1024, tile_size=256)
        assert plan.tile_bytes == 256 * 256 * 4
        assert plan.working_set_bytes == TILES_IN_FLIGHT * plan.tile_bytes
        assert plan.fits(1 << 20)
        assert not plan.fits(1 << 19)

    def test_input_reuse_factor_is_m_over_t(self):
        plan = TilingPlan(matrix_dim=2048, tile_size=256)
        assert plan.input_reuse_factor == 8

    def test_traffic_accounting(self):
        plan = TilingPlan(matrix_dim=512, tile_size=256)
        # Total loads: 2 * M^2 * (M/t) elements * 4 bytes.
        assert plan.total_load_bytes == 2 * 512 * 512 * 2 * 4
        assert plan.total_store_bytes == 512 * 512 * 4
        assert plan.total_macs == 512**3
        assert plan.macs_per_phase == 256**3

    def test_rejects_non_dividing_tile(self):
        with pytest.raises(ValueError):
            TilingPlan(matrix_dim=1000, tile_size=256)

    def test_rejects_tile_larger_than_matrix(self):
        with pytest.raises(ValueError):
            TilingPlan(matrix_dim=128, tile_size=256)

    def test_bigger_tile_reduces_traffic(self):
        small = TilingPlan(matrix_dim=1024, tile_size=128)
        big = TilingPlan(matrix_dim=1024, tile_size=256)
        assert big.total_load_bytes < small.total_load_bytes


class TestPaperTiling:
    @pytest.mark.parametrize("cap", [1, 2, 4, 8])
    def test_paper_tile_fits_capacity(self, cap):
        plan = paper_tiling(cap)
        assert plan.tile_size == TILE_SIZE_BY_CAPACITY[cap]
        assert plan.fits(cap << 20)
        assert plan.matrix_dim == PAPER_MATRIX_DIM

    def test_paper_tiles_nearly_fill_spm(self):
        # "fully utilize the available SPM": the next standard step up
        # (the next capacity's tile) must NOT fit.
        sizes = sorted(TILE_SIZE_BY_CAPACITY.items())
        for (cap, _), (_, next_t) in zip(sizes, sizes[1:]):
            oversized = TilingPlan(matrix_dim=lcm_matrix_dim(), tile_size=next_t)
            assert not oversized.fits(cap << 20)

    def test_unknown_capacity_raises(self):
        with pytest.raises(ValueError):
            paper_tiling(3)


class TestSelectTileSize:
    def test_result_fits(self):
        for cap_mib in (1, 2, 4, 8):
            t = select_tile_size(cap_mib << 20)
            assert TilingPlan(matrix_dim=t * 4, tile_size=t).fits(cap_mib << 20)

    def test_result_is_aligned(self):
        assert select_tile_size(1 << 20, granularity=8) % 8 == 0

    def test_next_step_does_not_fit(self):
        spm = 1 << 20
        t = select_tile_size(spm, granularity=8)
        too_big = t + 8
        assert 3 * too_big * too_big * 4 > spm

    def test_tiny_spm_raises(self):
        with pytest.raises(ValueError):
            select_tile_size(64)


class TestLcm:
    def test_paper_value(self):
        assert lcm_matrix_dim() == PAPER_MATRIX_DIM

    def test_divisibility(self):
        m = lcm_matrix_dim((6, 10, 15))
        assert m == 30

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lcm_matrix_dim(())
