"""The serving layer end to end: HTTP API, job table, client SDK."""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.client import ServiceClient, ServiceError
from repro.engine import Engine
from repro.service import ReproService
from repro.service.jobs import JobState, JobTable, ServiceJob
from repro.sweep import SweepSpec

SPEC = SweepSpec(capacities_mib=(1, 2), flows=("2D", "3D"), bandwidths=(4.0,))


def _slowed(service: ReproService, delay_s: float) -> ReproService:
    """Wrap the service engine's evaluate with a fixed per-job delay."""
    inner = service.engine.evaluate

    def slow_evaluate(job):
        time.sleep(delay_s)
        return inner(job)

    service.engine.evaluate = slow_evaluate
    return service


class TestJobTable:
    def test_lifecycle_and_snapshot(self):
        table = JobTable()
        job = table.create("sweep", {"spec": {}})
        assert job.state == JobState.QUEUED
        job.start()
        job.set_total(2)
        job.append({"status": "ok", "source": "cache"})
        job.append({"status": "error"})
        job.finish(JobState.DONE)
        snap = job.snapshot()
        assert snap["state"] == "done"
        assert (snap["done"], snap["cached"], snap["failed"]) == (2, 1, 1)
        assert table.counts() == {"done": 1}
        assert table.pending() == 0

    def test_cancel_queued_is_immediate(self):
        job = JobTable().create("run", {})
        assert job.cancel() is True
        assert job.state == JobState.CANCELLED
        assert job.cancel() is False  # already terminal

    def test_wait_records_unblocks_on_append(self):
        job = ServiceJob(id="j1", kind="run", spec={})
        records, finished = job.wait_records(0, timeout=0.01)
        assert records == [] and not finished
        job.append({"status": "ok"})
        records, finished = job.wait_records(0, timeout=0.01)
        assert len(records) == 1 and not finished


class TestServiceEndToEnd:
    def test_sweep_submit_stream_wait(self, tmp_path):
        service = ReproService(port=0, cache_dir=str(tmp_path / "cache"))
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            assert client.health()["status"] == "ok"
            job_id = client.submit_sweep(SPEC)
            streamed = list(client.iter_results(job_id))
            final = client.wait(job_id, timeout_s=30)
            assert final["state"] == "done"
            assert len(streamed) == len(list(SPEC.jobs()))
            assert all(r["status"] == "ok" for r in streamed)
            assert {r["key"] for r in streamed} == {
                j.key for j in SPEC.jobs()
            }
            # Same records an in-process engine would produce.
            expected = Engine(backend="serial", cache=None).run(SPEC.jobs())
            by_key = {r["key"]: r for r in expected.records}
            for record in streamed:
                assert record["metrics"] == by_key[record["key"]]["metrics"]

    def test_stream_resumes_from_offset(self, tmp_path):
        service = ReproService(port=0, cache_dir=str(tmp_path / "cache"))
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            job_id = client.submit_sweep(SPEC)
            client.wait(job_id, timeout_s=30)
            full = client.results(job_id)
            tail = client.results(job_id, start=2)
            assert tail == full[2:]

    def test_sync_runs_hit_the_shared_cache(self, tmp_path):
        service = ReproService(port=0, cache_dir=str(tmp_path / "cache"))
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            scenarios = [j.scenario().to_dict() for j in SPEC.jobs()]
            first = client.run(scenarios)
            second = client.run(scenarios)
            assert {r["source"] for r in second} == {"cache"}
            assert [r["key"] for r in first] == [r["key"] for r in second]
            stats = client.cache_stats()
            assert stats["entries"] == len(scenarios)

    def test_search_job_streams_budgeted_records(self, tmp_path):
        service = ReproService(port=0, cache_dir=str(tmp_path / "cache"))
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            space = {
                "axes": [
                    {"kind": "choice", "name": "capacity_mib",
                     "values": [1, 2, 4]},
                    {"kind": "choice", "name": "bandwidth",
                     "values": [4.0, 8.0]},
                ]
            }
            job_id = client.submit_search(space, budget=5, seed=3)
            records = list(client.iter_results(job_id))
            assert len(records) == 5
            assert client.status(job_id)["state"] == "done"

    def test_cancel_running_job_stops_early(self):
        service = _slowed(ReproService(port=0), delay_s=0.2)
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            job_id = client.submit_sweep(SPEC)
            while client.status(job_id)["done"] < 1:
                time.sleep(0.02)
            client.cancel(job_id)
            final = client.wait(job_id, timeout_s=30)
            assert final["state"] == "cancelled"
            assert final["done"] < len(list(SPEC.jobs()))

    def test_backpressure_429_with_retry_after(self):
        service = _slowed(
            ReproService(port=0, queue_limit=1, max_active=1), delay_s=0.5
        )
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            scenario = [next(iter(SPEC.jobs())).scenario().to_dict()]
            first = client.submit_runs(scenario)
            while client.status(first)["state"] == "queued":
                time.sleep(0.02)
            client.submit_runs(scenario)  # fills the one queue slot
            with pytest.raises(ServiceError) as excinfo:
                client.submit_runs(scenario)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s is not None

    def test_drain_refuses_new_work_then_stops(self):
        service = _slowed(ReproService(port=0), delay_s=0.1)
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            job_id = client.submit_sweep(SPEC)
            service._loop.call_soon_threadsafe(service.request_drain)
            while client.health()["status"] != "draining":
                time.sleep(0.01)
            with pytest.raises(ServiceError) as excinfo:
                client.submit_sweep(SPEC)
            assert excinfo.value.status == 503
            # The active job still runs to completion before shutdown.
            try:
                state = client.wait(job_id, timeout_s=30)["state"]
            except ConnectionError:
                # The drain finished and closed the listener between
                # polls — only possible once the job completed.
                state = service.table.get(job_id).state
            assert state == "done"

    def test_http_errors(self, tmp_path):
        service = ReproService(port=0)
        with service.run_in_thread() as url:
            client = ServiceClient(url)
            with pytest.raises(ServiceError) as excinfo:
                client.status("j999999")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client._request(
                    "POST", "/v1/sweeps", {"spec": {"capacities_mib": "x"}}
                )
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/v1/runs", {"scenarios": []})
            assert excinfo.value.status == 400

    def test_client_connection_retry_and_failure(self):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=1, backoff_s=0.01, timeout_s=0.2
        )
        with pytest.raises(ConnectionError):
            client.health()


class TestServeCli:
    def test_serve_process_sigterm_drains_cleanly(self, tmp_path):
        """`repro serve` comes up, answers, and exits 0 on SIGTERM."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", line)
            assert match, f"no URL in {line!r}"
            client = ServiceClient(match.group(0))
            job_id = client.submit_sweep(SPEC)
            assert client.wait(job_id, timeout_s=30)["state"] == "done"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestPublicSurface:
    def test_lazy_exports(self):
        import repro

        assert repro.ReproService is ReproService
        assert repro.ServiceClient is ServiceClient
        assert repro.RemoteBackend.name == "remote"

    def test_service_package_exports(self):
        import repro.service as service_pkg

        for name in service_pkg.__all__:
            assert getattr(service_pkg, name) is not None
