"""Fast-engine equivalence: bit-for-bit against the reference oracle.

Every workload the evaluation stack simulates must produce *identical*
results — cycles, instructions, barrier episodes, per-core stall
breakdowns, fabric counters, and SPM contents — on the fast SoA engine
and the reference cycle-by-cycle engine.  These tests run both engines
on fresh clusters and diff everything observable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cluster import MemPoolCluster
from repro.arch.isa import ProgramBuilder
from repro.core.config import Flow, MemPoolConfig
from repro.kernels.blocked import run_blocked_matmul
from repro.kernels.tiling import TilingPlan
from repro.kernels.workloads import (
    run_axpy,
    run_conv2d,
    run_dotp,
    run_matvec,
    run_stencil5,
)
from repro.simulator.engine import (
    Engine,
    SimulationTimeout,
    default_sim_engine,
    run_cluster,
    set_default_sim_engine,
)
from repro.simulator.fast import FastEngine
from repro.simulator.memsys import OffChipMemory
from repro.simulator.trace import collect_trace

WORKLOADS = {
    "dotp": lambda config, cores, engine: run_dotp(
        config, 96, cores, sim_engine=engine
    ),
    "axpy": lambda config, cores, engine: run_axpy(
        config, 96, cores, sim_engine=engine
    ),
    "conv2d": lambda config, cores, engine: run_conv2d(
        config, 10, 10, cores, sim_engine=engine
    ),
    "matvec": lambda config, cores, engine: run_matvec(
        config, 20, 20, cores, sim_engine=engine
    ),
    "stencil5": lambda config, cores, engine: run_stencil5(
        config, 10, 10, cores, sim_engine=engine
    ),
}


def _config(flow: str) -> MemPoolConfig:
    return MemPoolConfig(capacity_mib=1, flow=Flow(flow))


class TestWorkloadEquivalence:
    """Bit-for-bit over every simulator workload x cores x flows."""

    @pytest.mark.parametrize("flow", ["2D", "3D"])
    @pytest.mark.parametrize("cores", [1, 4, 16])
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_bit_for_bit(self, workload, cores, flow):
        runner = WORKLOADS[workload]
        ref = runner(_config(flow), cores, "reference")
        fast = runner(_config(flow), cores, "fast")
        assert ref.correct and fast.correct
        assert fast.cycles == ref.cycles
        assert fast.instructions == ref.instructions

    @pytest.mark.parametrize("scoreboard", [False, True])
    def test_blocked_matmul_bit_for_bit(self, scoreboard):
        plan = TilingPlan(matrix_dim=8, tile_size=4, word_bytes=4)
        outcomes = {}
        for engine in ("reference", "fast"):
            outcomes[engine] = run_blocked_matmul(
                _config("2D"), plan, OffChipMemory(), num_cores=4,
                scoreboard=scoreboard, sim_engine=engine,
            )
        ref, fast = outcomes["reference"], outcomes["fast"]
        assert ref.correct and fast.correct
        assert fast.compute_cycles == ref.compute_cycles
        assert fast.total_cycles == ref.total_cycles


def _diff_clusters(build, load, max_cycles=5_000_000):
    """Run the same program under both engines; diff everything."""
    results = {}
    for engine_name in ("reference", "fast"):
        cluster = build()
        load(cluster)
        if engine_name == "reference":
            result = Engine(cluster, max_cycles=max_cycles).run()
        else:
            assert FastEngine.supports(cluster)
            result = FastEngine(cluster, max_cycles=max_cycles).run()
        results[engine_name] = (cluster, result)
    ref_cluster, ref = results["reference"]
    fast_cluster, fast = results["fast"]

    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
    assert fast.barrier_episodes == ref.barrier_episodes
    # per-core architectural + microarchitectural state
    for ref_core, fast_core in zip(ref_cluster.cores, fast_cluster.cores):
        assert fast_core.regs == ref_core.regs
        assert fast_core.pc == ref_core.pc
        assert fast_core.state == ref_core.state
        assert vars(fast_core.stats) == vars(ref_core.stats)
    # fabric and cache counters
    assert vars(fast_cluster.router.stats) == vars(ref_cluster.router.stats)
    for ref_tile, fast_tile in zip(ref_cluster.tiles, fast_cluster.tiles):
        assert vars(fast_tile.port_stats) == vars(ref_tile.port_stats)
        assert vars(fast_tile.icache.stats) == vars(ref_tile.icache.stats)
        for ref_bank, fast_bank in zip(
            ref_tile.spm.banks, fast_tile.spm.banks
        ):
            assert vars(fast_bank.stats) == vars(ref_bank.stats)
    # full SPM image
    assert (
        fast_cluster.export_spm() == ref_cluster.export_spm()
    ).all()
    trace_ref = collect_trace(ref_cluster, ref.cycles)
    trace_fast = collect_trace(fast_cluster, fast.cycles)
    assert trace_fast == trace_ref
    return ref


class TestEngineStateEquivalence:
    """Deep diffs: stats, traces, and memory images match exactly."""

    @pytest.mark.parametrize("scoreboard", [False, True])
    @pytest.mark.parametrize("cores", [1, 4, 16])
    def test_matmul_full_state(self, cores, scoreboard):
        from repro.kernels.matmul import MatmulLayout, matmul_program_blocked

        layout = MatmulLayout(n=8)
        program = matmul_program_blocked(layout, cores)

        def load(cluster):
            cluster.write_words(layout.base_a, list(range(1, 65)))
            cluster.write_words(layout.base_b, list(range(101, 165)))
            cluster.load_program(
                program, num_cores=cores, scoreboard=scoreboard
            )

        _diff_clusters(lambda: MemPoolCluster(_config("2D")), load)

    @pytest.mark.parametrize("scoreboard", [False, True])
    def test_cold_icache_full_state(self, scoreboard):
        """hot_icache=False exercises the simulated-fetch path."""
        from repro.simulator.program import vector_add_program

        program = vector_add_program(64, 8, 0, 512, 1024)

        def load(cluster):
            cluster.write_words(0, list(range(64)))
            cluster.write_words(512, list(range(64)))
            cluster.load_program(
                program, num_cores=8, hot_icache=False, scoreboard=scoreboard
            )

        _diff_clusters(lambda: MemPoolCluster(_config("2D")), load)

    def test_timeout_equivalence(self):
        """Both engines raise the same timeout at the same limit, leaving
        identical per-core state — including a core deadlocked on a
        barrier (asleep, fast-forwarded past) at the moment of timeout."""
        builder = ProgramBuilder()
        builder.csrr_hartid(1)
        builder.li(2, 1)
        builder.blt(1, 2, "spin")  # hart 0 spins; hart 1+ joins a barrier
        builder.barrier()          # never releases: hart 0 never arrives
        builder.halt()
        builder.label("spin")
        builder.j("spin")
        program = builder.build()
        observed = {}
        for engine in ("reference", "fast"):
            cluster = MemPoolCluster(_config("2D"))
            cluster.load_program(program, num_cores=4)
            with pytest.raises(SimulationTimeout) as excinfo:
                run_cluster(cluster, max_cycles=200, engine=engine)
            observed[engine] = (
                str(excinfo.value),
                [vars(core.stats) for core in cluster.cores],
                [core.state for core in cluster.cores],
            )
        assert observed["fast"] == observed["reference"]

    def test_fault_mirrors_progress_like_reference(self):
        """A wild address aborts the run but leaves prior progress
        (SPM writes, retired-instruction counts) on the cluster, as the
        in-place reference engine does."""
        builder = ProgramBuilder()
        builder.li(1, 42)
        builder.li(2, 4)
        builder.sw(1, 2, 0)
        builder.li(3, 0x7FFFFFF0)
        builder.lw(4, 3, 0)  # wild load: outside the SPM
        builder.halt()
        program = builder.build()
        observed = {}
        for engine in (Engine, FastEngine):
            cluster = MemPoolCluster(_config("2D"))
            cluster.load_program(program, num_cores=1)
            with pytest.raises(ValueError, match="outside SPM"):
                engine(cluster).run()
            observed[engine] = (
                cluster.read_words(4, 1)[0],
                cluster.cores[0].stats.instructions,
                cluster.cores[0].stats.cycles,
            )
        assert observed[FastEngine] == observed[Engine]

    def test_barrier_deadlock_timeout(self):
        """A never-released barrier times out identically (fast-forward)."""
        builder = ProgramBuilder()
        builder.csrr_hartid(1)
        builder.li(2, 2)
        builder.blt(1, 2, "wait")  # only harts 0 and 1 join the barrier
        builder.halt()
        builder.label("wait")
        builder.barrier()
        builder.halt()
        program = builder.build()
        for engine in ("reference", "fast"):
            cluster = MemPoolCluster(_config("2D"))
            cluster.load_program(program, num_cores=2)
            # with all participants arriving this terminates...
            result = run_cluster(cluster, max_cycles=500, engine=engine)
            assert result.barrier_episodes == 1


class TestDispatchAndFallback:
    def test_default_engine_is_fast(self):
        assert default_sim_engine() in ("fast", "reference")

    def test_set_default_round_trips(self):
        previous = set_default_sim_engine("reference")
        try:
            assert default_sim_engine() == "reference"
        finally:
            set_default_sim_engine(previous)

    def test_unknown_engine_rejected(self):
        cluster = MemPoolCluster(_config("2D"))
        cluster.load_program(ProgramBuilder().halt().build(), num_cores=1)
        with pytest.raises(ValueError, match="unknown simulation engine"):
            run_cluster(cluster, engine="warp")

    def test_unsupported_cluster_falls_back(self):
        """A subclassed core model silently uses the reference engine."""
        from repro.arch.snitch import SnitchCore

        class TracingCore(SnitchCore):
            pass

        cluster = MemPoolCluster(_config("2D"))
        cluster.load_program(ProgramBuilder().halt().build(), num_cores=2)
        plain = cluster.cores[0]
        traced = TracingCore(
            core_id=0, program=plain.program, memory_port=plain.memory_port
        )
        traced.barrier_arrive = cluster.barrier.arrive
        cluster.cores[0] = traced
        assert not FastEngine.supports(cluster)
        result = run_cluster(cluster, engine="fast")  # falls back, still runs
        assert result.cycles >= 1
        assert result.instructions == 2

    def test_supports_standard_cluster(self):
        cluster = MemPoolCluster(_config("2D"))
        cluster.load_program(ProgramBuilder().halt().build(), num_cores=2)
        assert FastEngine.supports(cluster)

    def test_spm_export_import_roundtrip(self):
        import numpy as np

        cluster = MemPoolCluster(_config("2D"))
        cluster.write_words(0, [7, 11, 13])
        cluster.write_words(4096, [0xDEADBEEF])
        image = cluster.export_spm()
        assert image[0:3].tolist() == [7, 11, 13]
        assert image[1024] == 0xDEADBEEF
        image = np.array(image)
        image[2] = 99
        cluster.import_spm(image)
        assert cluster.read_words(0, 3) == [7, 11, 99]


# ---------------------------------------------------------------------------
# Randomized differential testing: straight-line SPMD programs with
# arithmetic, (conflicting) memory traffic, and barriers.

reg = st.integers(min_value=1, max_value=7)
imm = st.integers(min_value=-64, max_value=64)
offset = st.integers(min_value=0, max_value=47)

operation = st.one_of(
    st.tuples(st.just("li"), reg, imm),
    st.tuples(st.just("add"), reg, reg, reg),
    st.tuples(st.just("sub"), reg, reg, reg),
    st.tuples(st.just("addi"), reg, reg, imm),
    st.tuples(st.just("mul"), reg, reg, reg),
    st.tuples(st.just("mac"), reg, reg, reg),
    st.tuples(st.just("lw"), reg, offset),
    st.tuples(st.just("lw_post"), reg, offset),
    st.tuples(st.just("sw"), reg, offset),
    st.tuples(st.just("barrier")),
)


def _build_spmd(ops):
    """A straight-line SPMD program; addresses salt with the hart id."""
    b = ProgramBuilder()
    b.csrr_hartid(1)
    b.li(9, 4)
    b.mul(9, 1, 9)  # x9 = 4 * hartid: per-core address salt
    for op in ops:
        name = op[0]
        if name == "li":
            b.li(op[1], op[2])
        elif name == "add":
            b.add(op[1], op[2], op[3])
        elif name == "sub":
            b.sub(op[1], op[2], op[3])
        elif name == "addi":
            b.addi(op[1], op[2], op[3])
        elif name == "mul":
            b.mul(op[1], op[2], op[3])
        elif name == "mac":
            b.mac(op[1], op[2], op[3])
        elif name == "lw":
            b.li(8, op[2] * 4)
            b.lw(op[1], 8, 0)
        elif name == "lw_post":
            b.li(8, op[2] * 4)
            b.add(8, 8, 9)
            b.lw_postinc(op[1], 8, 4)
        elif name == "sw":
            b.li(8, op[2] * 4)
            b.add(8, 8, 9)
            b.sw(op[1], 8, 0)
        elif name == "barrier":
            b.barrier()
    b.barrier()
    b.halt()
    return b.build()


class TestRandomizedDifferential:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(operation, min_size=1, max_size=24),
        cores=st.integers(min_value=1, max_value=8),
        scoreboard=st.booleans(),
    )
    def test_random_programs_match(self, ops, cores, scoreboard):
        program = _build_spmd(ops)

        def load(cluster):
            cluster.write_words(0, [(i * 2654435761) & 0xFFFFFFFF
                                    for i in range(128)])
            cluster.load_program(
                program, num_cores=cores, scoreboard=scoreboard
            )

        _diff_clusters(lambda: MemPoolCluster(_config("2D")), load)
