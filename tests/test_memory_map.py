"""Tests for repro.arch.memory_map."""

import pytest

from repro.arch.memory_map import BankAddress, MemoryMap
from repro.core.config import ArchParams, DEFAULT_ARCH


@pytest.fixture
def memmap():
    return MemoryMap(1 << 20)  # 1 MiB over the default 1024 banks


class TestConstruction:
    def test_words_per_bank(self, memmap):
        assert memmap.words_per_bank == (1 << 20) // (1024 * 4)
        assert memmap.total_words == (1 << 20) // 4

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            MemoryMap(0)

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            MemoryMap(1024 * 4 * 1024 + 4)  # not whole words per bank


class TestInterleaving:
    def test_consecutive_words_hit_consecutive_banks(self, memmap):
        first = memmap.decode(0)
        second = memmap.decode(4)
        assert first.bank == 0
        assert second.bank == 1
        assert first.tile == second.tile == 0

    def test_wraps_to_next_tile_after_bank_sweep(self, memmap):
        banks = DEFAULT_ARCH.banks_per_tile
        loc = memmap.decode(4 * banks)
        assert loc.bank == 0
        assert loc.flat_tile() == 1

    def test_wraps_to_next_offset_after_tile_sweep(self, memmap):
        words_per_sweep = DEFAULT_ARCH.num_banks
        loc = memmap.decode(4 * words_per_sweep)
        assert loc.flat_tile() == 0
        assert loc.bank == 0
        assert loc.offset == 1

    def test_sequential_block_spreads_evenly(self, memmap):
        counts = {}
        for i in range(DEFAULT_ARCH.num_banks):
            loc = memmap.decode(4 * i)
            counts[loc.flat_bank()] = counts.get(loc.flat_bank(), 0) + 1
        assert all(v == 1 for v in counts.values())
        assert len(counts) == DEFAULT_ARCH.num_banks


class TestEncodeDecode:
    def test_roundtrip_sample(self, memmap):
        for address in range(0, 4096, 4):
            assert memmap.encode(memmap.decode(address)) == address

    def test_decode_rejects_unaligned(self, memmap):
        with pytest.raises(ValueError):
            memmap.decode(2)

    def test_decode_rejects_out_of_range(self, memmap):
        with pytest.raises(ValueError):
            memmap.decode(1 << 20)
        with pytest.raises(ValueError):
            memmap.decode(-4)

    def test_encode_rejects_bad_components(self, memmap):
        with pytest.raises(ValueError):
            memmap.encode(BankAddress(group=4, tile=0, bank=0, offset=0))
        with pytest.raises(ValueError):
            memmap.encode(BankAddress(group=0, tile=16, bank=0, offset=0))
        with pytest.raises(ValueError):
            memmap.encode(BankAddress(group=0, tile=0, bank=16, offset=0))
        with pytest.raises(ValueError):
            memmap.encode(
                BankAddress(group=0, tile=0, bank=0, offset=memmap.words_per_bank)
            )


class TestLatencyClass:
    def test_local_access(self, memmap):
        # Address 0 lives in tile 0; a core in tile 0 sees 1 cycle.
        assert memmap.latency_class(0, 0) == 1

    def test_intra_group_access(self, memmap):
        # Tile 1 is in group 0, like tile 0.
        addr = memmap.encode(BankAddress(group=0, tile=1, bank=0, offset=0))
        assert memmap.latency_class(0, addr) == 3

    def test_inter_group_access(self, memmap):
        addr = memmap.encode(BankAddress(group=1, tile=0, bank=0, offset=0))
        assert memmap.latency_class(0, addr) == 5

    def test_rejects_bad_tile(self, memmap):
        with pytest.raises(ValueError):
            memmap.latency_class(64, 0)


class TestCustomArch:
    def test_small_cluster(self):
        arch = ArchParams(cores_per_tile=2, tiles_per_group=4, groups=2, banks_per_tile=4)
        m = MemoryMap(arch.num_banks * 4 * 8, arch)
        assert m.words_per_bank == 8
        for address in range(0, m.spm_bytes, 4):
            assert m.encode(m.decode(address)) == address
