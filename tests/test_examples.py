"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print their findings"
