"""Tests for repro.arch.isa."""

import pytest

from repro.arch.isa import (
    BRANCH_OPS,
    MEMORY_OPS,
    Instruction,
    Op,
    ProgramBuilder,
    to_signed,
)


class TestInstruction:
    def test_memory_classification(self):
        assert Instruction(Op.LW, rd=1, rs1=2).is_memory
        assert Instruction(Op.SW_POSTINC, rs1=2, rs2=3).is_memory
        assert not Instruction(Op.ADD, rd=1).is_memory

    def test_store_classification(self):
        assert Instruction(Op.SW, rs1=1, rs2=2).is_store
        assert not Instruction(Op.LW, rd=1, rs1=2).is_store

    def test_register_bounds(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=32)
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rs1=-1)

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Op.BNE, rs1=1, rs2=2)
        Instruction(Op.BNE, rs1=1, rs2=2, target=0)  # ok

    def test_op_sets_disjoint(self):
        assert not (MEMORY_OPS & BRANCH_OPS)


class TestProgramBuilder:
    def test_simple_program(self):
        b = ProgramBuilder()
        b.li(1, 42)
        b.halt()
        program = b.build()
        assert len(program) == 2
        assert program[0].op is Op.LI
        assert program[0].imm == 42

    def test_label_resolution(self):
        b = ProgramBuilder()
        b.label("start")
        b.addi(1, 1, 1)
        b.j("start")
        program = b.build()
        assert program[1].target == 0

    def test_forward_label(self):
        b = ProgramBuilder()
        b.j("end")
        b.nop()
        b.label("end")
        b.halt()
        program = b.build()
        assert program[0].target == 2

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.j("nowhere")
        with pytest.raises(ValueError):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_fluent_chaining(self):
        program = ProgramBuilder().li(1, 1).addi(1, 1, 2).halt().build()
        assert len(program) == 3

    def test_all_emitters_produce_expected_ops(self):
        b = ProgramBuilder()
        b.label("l")
        b.li(1, 0)
        b.add(1, 1, 2)
        b.sub(1, 1, 2)
        b.addi(1, 1, 1)
        b.mul(1, 1, 2)
        b.mac(1, 2, 3)
        b.lw(1, 2)
        b.sw(1, 2)
        b.lw_postinc(1, 2, 4)
        b.sw_postinc(1, 2, 4)
        b.bne(1, 2, "l")
        b.blt(1, 2, "l")
        b.j("l")
        b.barrier()
        b.csrr_hartid(1)
        b.nop()
        b.halt()
        ops = [i.op for i in b.build().instructions]
        assert ops == [
            Op.LI, Op.ADD, Op.SUB, Op.ADDI, Op.MUL, Op.MAC, Op.LW, Op.SW,
            Op.LW_POSTINC, Op.SW_POSTINC, Op.BNE, Op.BLT, Op.J, Op.BARRIER,
            Op.CSRR_HARTID, Op.NOP, Op.HALT,
        ]

    def test_labels_preserved_in_program(self):
        b = ProgramBuilder()
        b.label("entry")
        b.halt()
        assert b.build().labels == {"entry": 0}


class TestToSigned:
    @pytest.mark.parametrize(
        "raw,expected",
        [(0, 0), (1, 1), (0x7FFFFFFF, 2**31 - 1), (0x80000000, -(2**31)),
         (0xFFFFFFFF, -1), (2**32 + 5, 5)],
    )
    def test_conversion(self, raw, expected):
        assert to_signed(raw) == expected
