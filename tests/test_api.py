"""Tests for repro.api — Scenario, registries, Pipeline, cache versioning."""

import hashlib
import json

import pytest

from repro.api import (
    CODE_MODEL_VERSION,
    FLOWS,
    OBJECTIVES,
    Pipeline,
    Registry,
    Scenario,
    WORKLOADS,
    paper_scenarios,
    register_objective,
    register_workload,
    scenario_schema,
)
from repro.core.config import paper_configurations
from repro.core.explorer import DesignPoint, Explorer, evaluate_point
from repro.core.metrics import KernelMetrics
from repro.kernels.phases import DEFAULT_PHASE_PARAMS, matmul_cycles
from repro.kernels.tiling import paper_tiling
from repro.physical.flow3d import implement_group
from repro.simulator.memsys import OffChipMemory


class TestScenario:
    def test_defaults_and_name(self):
        s = Scenario(capacity_mib=4, flow="3D")
        assert s.name == "MemPool-3D-4MiB"
        assert s.workload == "matmul"
        assert s.objective == "edp"

    def test_normalization(self):
        a = Scenario(capacity_mib=4, flow="3d", bandwidth=16)
        b = Scenario(capacity_mib=4.0, flow="3D", bandwidth=16.0)
        assert a == b
        assert a.flow == "3D"

    def test_dict_roundtrip(self):
        s = Scenario(capacity_mib=2, flow="3D", bandwidth=32.0,
                     objective="performance")
        assert Scenario.from_dict(s.to_dict()) == s

    def test_json_roundtrip(self):
        s = Scenario(capacity_mib=8, flow="2D", matrix_dim=4096,
                     num_cores=128, workload="matmul")
        assert Scenario.from_json(s.to_json()) == s

    def test_roundtrip_with_arch_and_tile_overrides(self):
        s = Scenario(capacity_mib=4, flow="3D", matrix_dim=4096,
                     tile_size=256, arch={"cores_per_tile": 8})
        assert s.arch == {"cores_per_tile": 8}
        assert Scenario.from_dict(json.loads(s.to_json())) == s

    def test_default_arch_canonicalizes_to_none(self):
        s = Scenario(capacity_mib=4, flow="3D", arch={"cores_per_tile": 4})
        assert s.arch is None

    def test_paper_tile_canonicalizes_to_none(self):
        s = Scenario(capacity_mib=1, flow="2D", tile_size=256)
        assert s.tile_size is None
        assert s.tiling().tile_size == 256

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            Scenario.from_dict({"capacity_mib": 1, "voltage": 0.8})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flow": "2.5D"},
            {"workload": "fft"},
            {"objective": "beauty"},
            {"capacity_mib": 0},
            {"bandwidth": -1.0},
            {"matrix_dim": 0},
            {"num_cores": 0},
            {"cpi_mac": 0.0},
            {"tile_size": 7},  # does not divide the paper matrix
            {"arch": {"warp_size": 32}},  # unknown ArchParams field
            {"arch": {"banks_per_tile": 48}},  # capacity won't split evenly
        ],
    )
    def test_strict_validation(self, kwargs):
        with pytest.raises(ValueError):
            Scenario(**{"capacity_mib": 1, **kwargs})

    def test_tiling_matches_paper_and_fit(self):
        assert Scenario(capacity_mib=2, flow="2D").tiling().tile_size == 384
        fitted = Scenario(capacity_mib=1, flow="2D", matrix_dim=4096).tiling()
        assert fitted.matrix_dim == 4096
        assert fitted.fits(1 << 20)

    def test_paper_scenarios_cover_all_eight(self):
        scenarios = paper_scenarios()
        assert len(scenarios) == 8
        assert len({s.name for s in scenarios}) == 8

    def test_cache_key_ignores_objective(self):
        a = Scenario(capacity_mib=4, flow="3D", objective="edp")
        b = Scenario(capacity_mib=4, flow="3D", objective="performance")
        assert a.cache_key == b.cache_key

    def test_cache_key_distinguishes_parameters(self):
        base = Scenario(capacity_mib=4, flow="3D")
        assert base.cache_key != Scenario(capacity_mib=4, flow="2D").cache_key
        assert base.cache_key != Scenario(capacity_mib=4, flow="3D",
                                          bandwidth=8).cache_key
        assert base.cache_key != Scenario(capacity_mib=4, flow="3D",
                                          workload="dotp",
                                          matrix_dim=64).cache_key


class TestRegistry:
    def test_register_get_and_list(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.register("b", 2)
        assert reg.get("a") == 1
        assert reg.names() == ("a", "b")
        assert "a" in reg and len(reg) == 2

    def test_duplicate_name_rejected(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)

    def test_reregistering_same_object_is_noop(self):
        reg = Registry("thing")
        obj = object()
        reg.register("a", obj)
        reg.register("a", obj)  # module re-import must stay safe
        assert len(reg) == 1

    def test_unknown_name_lists_available(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="unknown thing 'z'"):
            reg.get("z")

    def test_unregister(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(ValueError):
            reg.unregister("a")

    def test_builtin_registries_are_seeded(self):
        assert {"2D", "3D"} <= set(FLOWS)
        assert {"matmul", "dotp", "axpy", "conv2d"} <= set(WORKLOADS)
        assert {"performance", "edp", "footprint"} <= set(OBJECTIVES)

    def test_duplicate_builtin_workload_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload("matmul")(lambda s: 1.0)


def _legacy_evaluate(config, bandwidth=16.0):
    """The seed repository's evaluate_point, inlined as the reference."""
    plan = paper_tiling(config.capacity_mib)
    memory = OffChipMemory(bandwidth_bytes_per_cycle=bandwidth)
    cycles = matmul_cycles(plan, memory, DEFAULT_PHASE_PARAMS).total
    result = implement_group(config).to_group_result()
    kernel = KernelMetrics(
        name=config.name,
        cycles=cycles,
        frequency_mhz=result.frequency_mhz,
        power_mw=result.power_mw,
    )
    return DesignPoint(
        config=config,
        footprint_um2=result.footprint_um2,
        combined_area_um2=result.combined_area_um2,
        frequency_mhz=result.frequency_mhz,
        power_mw=result.power_mw,
        kernel=kernel,
    )


class TestPipeline:
    def test_matches_legacy_evaluate_point_on_all_paper_configs(self):
        pipeline = Pipeline()
        for config in paper_configurations():
            legacy = _legacy_evaluate(config)
            scenario = Scenario(
                capacity_mib=config.capacity_mib,
                flow=config.flow.value,
                bandwidth=16.0,
            )
            assert pipeline.run(scenario).to_design_point() == legacy
            assert evaluate_point(config, bandwidth=16.0) == legacy

    def test_run_bundles_physical_kernel_and_derived(self):
        result = Pipeline().run(Scenario(capacity_mib=1, flow="3D"))
        assert result.frequency_mhz == result.physical.frequency_mhz
        assert result.cycles == result.kernel.cycles
        assert result.edp == pytest.approx(
            result.energy_j * result.runtime_s
        )
        data = result.to_dict()
        assert data["scenario"]["capacity_mib"] == 1
        assert data["derived"]["objective"] == "edp"

    def test_rank_orders_by_objective(self):
        pipeline = Pipeline()
        results = pipeline.run_many(paper_scenarios())
        ranked = pipeline.rank(results, "performance")
        perfs = [r.performance for r in ranked]
        assert perfs == sorted(perfs, reverse=True)
        assert pipeline.rank(results, "edp")[0].edp == min(r.edp for r in results)

    def test_rank_rejects_unknown_objective(self):
        results = Pipeline().run_many([Scenario(capacity_mib=1, flow="2D")])
        with pytest.raises(ValueError):
            Pipeline().rank(results, "beauty")

    def test_simulator_backed_workload_end_to_end(self):
        scenario = Scenario(capacity_mib=1, flow="2D", matrix_dim=64,
                            num_cores=4, workload="dotp")
        result = Pipeline().run(scenario)
        assert result.cycles > 0
        assert result.name == "MemPool-2D-1MiB"

    def test_simulator_workload_rejects_huge_dims(self):
        scenario = Scenario(capacity_mib=1, flow="2D", workload="dotp")
        with pytest.raises(ValueError, match="matrix_dim"):
            Pipeline().cycles(scenario)


class TestPluginEndToEnd:
    def test_registered_workload_runs_through_api_and_sweep_cli(self, capsys):
        from repro.__main__ import main

        @register_workload("const_kernel")
        def const_kernel(scenario):
            return 1e6 * scenario.capacity_mib

        try:
            # Through the API...
            scenario = Scenario(capacity_mib=2, flow="3D",
                                workload="const_kernel")
            result = Pipeline().run(scenario)
            assert result.cycles == 2e6
            # ...and end to end through the sweep CLI, no core edits.
            code = main(["sweep", "--capacities", "1,2", "--flows", "3D",
                         "--bandwidths", "16", "--kernels", "const_kernel",
                         "--no-cache"])
            out = capsys.readouterr().out
            assert code == 0
            assert "2 jobs: 0 cached, 2 evaluated, 0 failed" in out
        finally:
            WORKLOADS.unregister("const_kernel")

    def test_registered_lowercase_flow_runs_through_pipeline(self):
        from repro.api import register_flow
        from repro.core.config import Flow
        from repro.physical.flow2d import implement_group_2d

        @register_flow("interposer")
        def interposer_flow(scenario):
            return implement_group_2d(scenario.to_config(flow=Flow.FLOW_2D))

        try:
            scenario = Scenario(capacity_mib=1, flow="interposer")
            assert scenario.flow == "interposer"  # case preserved
            result = Pipeline().run(scenario)
            assert result.name == "MemPool-interposer-1MiB"
            assert result.frequency_mhz > 0
        finally:
            FLOWS.unregister("interposer")

    def test_builtin_flow_names_fold_to_uppercase(self):
        assert Scenario(capacity_mib=1, flow="3d").flow == "3D"

    def test_registered_objective_ranks_in_explorer_and_pipeline(self):
        @register_objective("cycle_count", higher_is_better=False)
        def cycle_count(point):
            return point.kernel.cycles

        try:
            points = Explorer(capacities_mib=(1, 8)).explore()
            ranked = Explorer(capacities_mib=(1, 8)).rank("cycle_count", points)
            cycles = [p.kernel.cycles for p in ranked]
            assert cycles == sorted(cycles)

            results = Pipeline().run_many(paper_scenarios()[:4])
            best = Pipeline().rank(results, "cycle_count")[0]
            assert best.cycles == min(r.cycles for r in results)
        finally:
            OBJECTIVES.unregister("cycle_count")


class TestCacheVersioning:
    def test_version_is_derived_from_scenario_schema(self):
        blob = json.dumps(scenario_schema(), sort_keys=True,
                          separators=(",", ":"))
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
        assert CODE_MODEL_VERSION == f"2.{digest}"

    def test_pre_api_cache_entries_are_never_reused(self, tmp_path):
        """A record stored under the PR-1 job key encoding must be a miss."""
        from repro.sweep import Job, ResultCache, SweepExecutor

        job = Job(capacity_mib=1, flow="3D", bandwidth=16.0)
        # The pre-API encoding: sha256 over model_version "1" + raw params.
        legacy_payload = {"model_version": "1", **job.params()}
        legacy_blob = json.dumps(legacy_payload, sort_keys=True,
                                 separators=(",", ":"))
        legacy_key = hashlib.sha256(legacy_blob.encode("utf-8")).hexdigest()
        assert job.key != legacy_key

        cache = ResultCache(tmp_path)
        cache.put({"key": legacy_key, "status": "ok",
                   "job": job.params(), "metrics": {"stale": True}})
        outcome = SweepExecutor(cache=cache).run([job])
        assert outcome.stats.evaluated == 1  # stale entry was not served
        assert outcome.records[0]["metrics"].get("stale") is None
