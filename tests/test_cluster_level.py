"""Tests for repro.physical.cluster_level."""

import pytest

from repro.core.config import CAPACITIES_MIB, Flow, MemPoolConfig
from repro.physical.cluster_level import (
    implement_cluster,
    inter_group_channel_width_um,
)
from repro.physical.flow3d import implement_group


@pytest.fixture(scope="module")
def clusters():
    out = {}
    for cap in CAPACITIES_MIB:
        for flow in (Flow.FLOW_2D, Flow.FLOW_3D):
            config = MemPoolConfig(cap, flow)
            out[(flow.value, cap)] = implement_cluster(implement_group(config))
    return out


class TestGeometry:
    def test_cluster_is_2x2_of_groups_plus_channel(self, clusters):
        c = clusters[("2D", 1)]
        assert c.width_um == pytest.approx(
            2 * c.group.placement.width_um + c.channel_width_um
        )
        assert c.footprint_um2 > 4 * c.group.placement.footprint_um2

    def test_channel_area_fraction_is_small(self, clusters):
        for c in clusters.values():
            assert 0 < c.channel_area_fraction < 0.15

    def test_3d_inter_group_channels_narrower(self, clusters):
        for cap in CAPACITIES_MIB:
            w2 = clusters[("2D", cap)].channel_width_um
            w3 = clusters[("3D", cap)].channel_width_um
            assert w3 < w2

    def test_paper_claim_more_favorable_cluster_area_ratio(self, clusters):
        """Section V-A: the 3D/2D footprint ratio improves at cluster level."""
        for cap in CAPACITIES_MIB:
            group_ratio = (
                clusters[("3D", cap)].group.footprint_um2
                / clusters[("2D", cap)].group.footprint_um2
            )
            cluster_ratio = (
                clusters[("3D", cap)].footprint_um2
                / clusters[("2D", cap)].footprint_um2
            )
            assert cluster_ratio < group_ratio

    def test_combined_area_counts_dies(self, clusters):
        c3 = clusters[("3D", 1)]
        assert c3.combined_area_um2 == pytest.approx(2 * c3.footprint_um2)
        c2 = clusters[("2D", 1)]
        assert c2.combined_area_um2 == pytest.approx(c2.footprint_um2)


class TestAggregates:
    def test_power_is_four_groups_plus_glue(self, clusters):
        c = clusters[("2D", 1)]
        assert c.power_mw == pytest.approx(4 * c.group.power.total_mw, rel=0.01)
        assert c.power_mw > 4 * c.group.power.total_mw  # glue adds a little

    def test_frequency_matches_group(self, clusters):
        c = clusters[("3D", 4)]
        assert c.frequency_mhz == c.group.timing.frequency_mhz

    def test_channel_width_grows_with_address_bits(self, clusters):
        w1 = inter_group_channel_width_um(clusters[("2D", 1)].group)
        w8 = inter_group_channel_width_um(clusters[("2D", 8)].group)
        assert w1 < w8 < w1 * 1.05

    def test_config_passthrough(self, clusters):
        assert clusters[("3D", 2)].config.name == "MemPool-3D-2MiB"
