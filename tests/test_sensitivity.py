"""Tests for repro.experiments.sensitivity."""

import pytest

from repro.experiments import sensitivity
from repro.simulator.memsys import PAPER_BANDWIDTH_SWEEP


@pytest.fixture(scope="module")
def rows():
    return sensitivity.run()


class TestSensitivity:
    def test_covers_bandwidth_sweep(self, rows):
        assert [r.bandwidth for r in rows] == list(PAPER_BANDWIDTH_SWEEP)

    def test_best_configs_are_always_3d(self, rows):
        for row in rows:
            assert "3D" in row.best_performance
            assert "3D" in row.best_efficiency
            assert "3D" in row.best_edp

    def test_performance_crossover(self, rows):
        # Scarce bandwidth rewards data reuse (large SPM); abundant
        # bandwidth lets the small design's higher clock win.
        by_bw = {r.bandwidth: r for r in rows}
        assert by_bw[4].best_performance.endswith(("4MiB", "8MiB"))
        assert by_bw[64].best_performance.endswith(("1MiB", "2MiB"))

    def test_performance_winner_capacity_never_grows_with_bandwidth(self, rows):
        def capacity(name):
            return int(name.split("-")[-1].replace("MiB", ""))

        capacities = [capacity(r.best_performance) for r in rows]
        assert all(a >= b for a, b in zip(capacities, capacities[1:]))

    def test_edp_winner_capacity_never_grows_with_bandwidth(self, rows):
        def capacity(name):
            return int(name.split("-")[-1].replace("MiB", ""))

        capacities = [capacity(r.best_edp) for r in rows]
        assert all(a >= b for a, b in zip(capacities, capacities[1:]))

    def test_speedup_decreases_with_bandwidth(self, rows):
        speedups = [r.speedup_8_over_1_3d for r in rows]
        assert speedups == sorted(speedups, reverse=True)

    def test_format(self, rows):
        text = sensitivity.format_rows(rows)
        assert "best EDP" in text
        assert str(PAPER_BANDWIDTH_SWEEP[0]) in text
