"""Tests for the extension modules: transforms, roofline, thermal, latency."""

import pytest

from repro.core.config import CAPACITIES_MIB, Flow, MemPoolConfig
from repro.kernels.roofline import arithmetic_intensity, ridge_bandwidth, roofline_point
from repro.kernels.tiling import paper_tiling
from repro.kernels.transforms import (
    reduction_program,
    run_reduction,
    run_transpose,
    transpose_program,
)
from repro.physical.flow2d import implement_group_2d
from repro.physical.flow3d import implement_group_3d
from repro.physical.thermal import ThermalParams, analyze_thermal
from repro.simulator.memsys import OffChipMemory


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


class TestTranspose:
    @pytest.mark.parametrize("n,cores", [(8, 4), (16, 8), (12, 3)])
    def test_correct(self, config, n, cores):
        run, _ = run_transpose(config, n=n, num_cores=cores)
        assert run.correct

    def test_interleaving_keeps_conflicts_low(self, config):
        # Column writes stride by n words, but MemPool's word interleaving
        # over 16 banks x 64 tiles spreads even bank-count-aligned strides
        # across tiles — the design property behind the low-latency SPM.
        _, aligned = run_transpose(config, n=16, num_cores=8)
        _, odd = run_transpose(config, n=15, num_cores=8)
        assert aligned < 0.05
        assert odd < 0.05

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            transpose_program(0, 4, 0, 64)


class TestReduction:
    @pytest.mark.parametrize("n,cores", [(64, 4), (128, 8), (100, 16)])
    def test_correct(self, config, n, cores):
        run, _ = run_reduction(config, num_elements=n, num_cores=cores)
        assert run.correct

    def test_barrier_per_level(self, config):
        _, episodes = run_reduction(config, num_elements=64, num_cores=8)
        # log2(8) = 3 combining levels plus the final barrier.
        assert episodes == 4

    def test_single_core(self, config):
        run, _ = run_reduction(config, num_elements=32, num_cores=1)
        assert run.correct

    def test_rejects_non_power_of_two_cores(self):
        with pytest.raises(ValueError):
            reduction_program(64, 6, 0, 256)


class TestRoofline:
    def test_intensity_grows_with_tile_size(self):
        intensities = [arithmetic_intensity(paper_tiling(c)) for c in CAPACITIES_MIB]
        assert intensities == sorted(intensities)

    def test_intensity_approximates_t_over_8(self):
        plan = paper_tiling(1)  # t = 256
        assert arithmetic_intensity(plan) == pytest.approx(256 / 8, rel=0.01)

    def test_memory_bound_at_low_bandwidth(self):
        plan = paper_tiling(1)
        point = roofline_point(plan, OffChipMemory(bandwidth_bytes_per_cycle=2))
        assert point.memory_bound
        assert point.attainable_macs_per_cycle == point.bandwidth_bound_macs_per_cycle

    def test_compute_bound_at_high_bandwidth(self):
        plan = paper_tiling(8)
        point = roofline_point(plan, OffChipMemory(bandwidth_bytes_per_cycle=64))
        assert not point.memory_bound
        assert point.attainable_macs_per_cycle == point.peak_macs_per_cycle

    def test_ridge_bandwidth_drops_with_capacity(self):
        # Bigger tiles need less bandwidth to saturate compute.
        ridges = [ridge_bandwidth(paper_tiling(c)) for c in CAPACITIES_MIB]
        assert ridges == sorted(ridges, reverse=True)

    def test_ridge_consistent_with_roofline(self):
        plan = paper_tiling(2)
        ridge = ridge_bandwidth(plan)
        below = roofline_point(plan, OffChipMemory(bandwidth_bytes_per_cycle=ridge * 0.9))
        above = roofline_point(plan, OffChipMemory(bandwidth_bytes_per_cycle=ridge * 1.1))
        assert below.memory_bound
        assert not above.memory_bound


class TestThermal:
    @pytest.fixture(scope="class")
    def pair(self):
        g2 = implement_group_2d(MemPoolConfig(4, Flow.FLOW_2D))
        g3 = implement_group_3d(MemPoolConfig(4, Flow.FLOW_3D))
        return g2, g3

    def test_3d_has_higher_power_density(self, pair):
        g2, g3 = pair
        t2, t3 = analyze_thermal(g2), analyze_thermal(g3)
        assert t3.power_density_w_per_cm2 > t2.power_density_w_per_cm2

    def test_3d_runs_hotter(self, pair):
        g2, g3 = pair
        assert analyze_thermal(g3).junction_c > analyze_thermal(g2).junction_c

    def test_both_within_budget_at_defaults(self, pair):
        for impl in pair:
            report = analyze_thermal(impl)
            assert report.within_budget
            assert report.junction_c > DEFAULT_AMBIENT

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            ThermalParams(rth_package_cm2k_per_w=-1)


DEFAULT_AMBIENT = 45.0


class TestOffChipLatency:
    def test_latency_adds_per_transfer(self):
        ideal = OffChipMemory(bandwidth_bytes_per_cycle=16)
        real = OffChipMemory(bandwidth_bytes_per_cycle=16, latency_cycles=40)
        assert real.transfer_cycles(160) == ideal.transfer_cycles(160) + 40
        assert real.transfer_cycles(0) == 0

    def test_latency_negligible_for_bulk_transfers(self):
        # The paper's idealization is sound: one DRAM access latency per
        # multi-hundred-KiB tile transfer is noise.
        from repro.kernels.phases import matmul_cycles
        from repro.kernels.tiling import paper_tiling

        plan = paper_tiling(1)
        ideal = matmul_cycles(plan, OffChipMemory(bandwidth_bytes_per_cycle=16))
        real = matmul_cycles(
            plan, OffChipMemory(bandwidth_bytes_per_cycle=16, latency_cycles=100)
        )
        assert real.total / ideal.total < 1.01

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            OffChipMemory(latency_cycles=-1)
