"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cluster import Barrier
from repro.arch.isa import ProgramBuilder, to_signed
from repro.arch.memory_map import MemoryMap
from repro.arch.spm import SPMBank
from repro.core.config import ArchParams
from repro.core.metrics import GroupResult, normalize
from repro.kernels.tiling import TILES_IN_FLIGHT, TilingPlan, select_tile_size
from repro.physical.sram import SRAMCompiler
from repro.simulator.memsys import OffChipMemory

# ---------------------------------------------------------------------------
# Memory map: encode/decode is a bijection and interleaving is balanced.

word_addresses = st.integers(min_value=0, max_value=(1 << 20) // 4 - 1)


@given(word=word_addresses)
def test_memory_map_roundtrip(word):
    memmap = MemoryMap(1 << 20)
    address = word * 4
    assert memmap.encode(memmap.decode(address)) == address


@given(word=word_addresses)
def test_memory_map_components_in_range(word):
    memmap = MemoryMap(1 << 20)
    loc = memmap.decode(word * 4)
    arch = memmap.arch
    assert 0 <= loc.group < arch.groups
    assert 0 <= loc.tile < arch.tiles_per_group
    assert 0 <= loc.bank < arch.banks_per_tile
    assert 0 <= loc.offset < memmap.words_per_bank


@given(start=st.integers(min_value=0, max_value=1000))
def test_memory_map_consecutive_words_distinct_banks(start):
    memmap = MemoryMap(1 << 20)
    banks = {
        memmap.decode((start + i) * 4).flat_bank() for i in range(16)
    }
    assert len(banks) == 16  # 16 consecutive words never share a bank


@given(
    tiles=st.sampled_from([4, 16]),
    groups=st.sampled_from([2, 4]),
    banks=st.sampled_from([4, 8, 16]),
)
def test_memory_map_roundtrip_generalizes(tiles, groups, banks):
    arch = ArchParams(tiles_per_group=tiles, groups=groups, banks_per_tile=banks)
    size = arch.num_banks * 4 * 16
    memmap = MemoryMap(size, arch)
    for address in range(0, size, max(4, size // 64 // 4 * 4)):
        assert memmap.encode(memmap.decode(address)) == address


# ---------------------------------------------------------------------------
# ISA: to_signed is the inverse of the 32-bit masking for signed ints.


@given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_to_signed_roundtrip(value):
    assert to_signed(value & 0xFFFFFFFF) == value


@given(values=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20))
def test_program_builder_label_targets_valid(values):
    b = ProgramBuilder()
    b.label("start")
    for v in values:
        b.addi(1, 1, v)
    b.j("start")
    program = b.build()
    for instr in program.instructions:
        if instr.target >= 0:
            assert 0 <= instr.target < len(program)


# ---------------------------------------------------------------------------
# SPM bank: at most one grant per cycle, data integrity.


@given(offsets=st.lists(st.integers(min_value=0, max_value=15), min_size=2, max_size=8))
def test_spm_bank_single_grant_per_cycle(offsets):
    bank = SPMBank(words=16)
    grants = [bank.try_access(0, off, write=False)[0] for off in offsets]
    assert sum(grants) == 1


@given(
    writes=st.dictionaries(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=2**32 - 1),
        min_size=1,
        max_size=16,
    )
)
def test_spm_bank_data_integrity(writes):
    bank = SPMBank(words=32)
    for cycle, (offset, value) in enumerate(writes.items()):
        granted, _ = bank.try_access(cycle, offset, write=True, value=value)
        assert granted
    for offset, value in writes.items():
        assert bank.peek(offset) == value


# ---------------------------------------------------------------------------
# Barrier: releases exactly when all parties arrived, for any party count.


@given(parties=st.integers(min_value=1, max_value=32))
def test_barrier_releases_after_all(parties):
    barrier = Barrier(parties)
    releases = [barrier.arrive(i) for i in range(parties - 1)]
    assert all(not r() for r in releases)
    last = barrier.arrive(parties - 1)
    assert last()
    assert all(r() for r in releases)
    assert barrier.episodes == 1


# ---------------------------------------------------------------------------
# Tiling: selected tile always fits and is maximal at its granularity.


@given(
    spm_mib=st.integers(min_value=1, max_value=64),
    granularity=st.sampled_from([4, 8, 16, 32]),
)
def test_select_tile_size_fits_and_is_maximal(spm_mib, granularity):
    spm = spm_mib << 20
    t = select_tile_size(spm, granularity=granularity)
    assert t % granularity == 0
    assert TILES_IN_FLIGHT * t * t * 4 <= spm
    bigger = t + granularity
    assert TILES_IN_FLIGHT * bigger * bigger * 4 > spm


@given(
    tiles_per_edge=st.integers(min_value=1, max_value=16),
    tile=st.sampled_from([16, 64, 256]),
)
def test_tiling_traffic_invariants(tiles_per_edge, tile):
    plan = TilingPlan(matrix_dim=tiles_per_edge * tile, tile_size=tile)
    # Total loads equal 2 * M^2 * reuse elements.
    m = plan.matrix_dim
    assert plan.total_load_bytes == 2 * m * m * plan.input_reuse_factor * 4
    assert plan.total_store_bytes == m * m * 4
    assert plan.total_phases == plan.output_tiles * plan.phases_per_output_tile


# ---------------------------------------------------------------------------
# Off-chip memory: transfer cycles are exact ceil division.


@given(
    num_bytes=st.integers(min_value=0, max_value=10**9),
    bandwidth=st.integers(min_value=1, max_value=256),
)
def test_transfer_cycles_is_ceil(num_bytes, bandwidth):
    mem = OffChipMemory(bandwidth_bytes_per_cycle=bandwidth)
    assert mem.transfer_cycles(num_bytes) == math.ceil(num_bytes / bandwidth)


# ---------------------------------------------------------------------------
# SRAM compiler: monotone in capacity across the whole range.


@settings(max_examples=30)
@given(log_words=st.integers(min_value=6, max_value=14))
def test_sram_monotone_steps(log_words):
    compiler = SRAMCompiler()
    small = compiler.compile(1 << log_words)
    large = compiler.compile(1 << (log_words + 1))
    assert large.area_um2 > small.area_um2
    assert large.access_time_ps > small.access_time_ps
    assert large.read_energy_pj > small.read_energy_pj
    assert large.leakage_uw > small.leakage_uw
    # Sub-linear area growth (periphery amortization).
    assert large.area_um2 < 2.2 * small.area_um2


# ---------------------------------------------------------------------------
# Metrics: normalization is consistent (scale-invariant).

result_strategy = st.builds(
    GroupResult,
    name=st.just("g"),
    footprint_um2=st.floats(min_value=1e4, max_value=1e8),
    combined_area_um2=st.just(1e9),
    wire_length_um=st.floats(min_value=1e3, max_value=1e8),
    density=st.floats(min_value=0.1, max_value=0.9),
    num_buffers=st.integers(min_value=1, max_value=10**6),
    num_f2f_bumps=st.integers(min_value=0, max_value=10**5),
    frequency_mhz=st.floats(min_value=100.0, max_value=2000.0),
    total_negative_slack_ps=st.floats(min_value=-1e6, max_value=0.0),
    failing_paths=st.integers(min_value=0, max_value=10**5),
    power_mw=st.floats(min_value=1.0, max_value=1e4),
)


@given(result=result_strategy)
def test_normalize_self_is_unity(result):
    n = normalize(result, result)
    assert n.footprint == pytest.approx(1.0)
    assert n.power == pytest.approx(1.0)
    assert n.frequency == pytest.approx(1.0)


@given(a=result_strategy, b=result_strategy)
def test_normalize_antisymmetry(a, b):
    ab = normalize(a, b)
    ba = normalize(b, a)
    assert ab.footprint * ba.footprint == pytest.approx(1.0)
    assert ab.frequency * ba.frequency == pytest.approx(1.0)
    assert ab.power_delay_product * ba.power_delay_product == pytest.approx(1.0)
