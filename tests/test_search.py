"""Tests for repro.search — space, pareto, strategies, archive, driver."""

import json
import random

import pytest

from repro.search import (
    Choice,
    FloatRange,
    IntRange,
    ParetoArchive,
    STRATEGIES,
    SearchSpace,
    Searcher,
    Strategy,
    axis_from_dict,
    crowding_distances,
    dominates,
    non_dominated,
    non_dominated_sort,
    paper_space,
    register_strategy,
)
from repro.search.strategies import lhs_units
from repro.sweep import ResultCache, SweepExecutor, SweepSpec, record_to_point

#: The paper's exhaustive 56-point grid, shared by the recovery tests.
GRID_BANDWIDTHS = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@pytest.fixture(scope="module")
def grid_best():
    outcome = SweepExecutor().run(SweepSpec(bandwidths=GRID_BANDWIDTHS))
    points = [record_to_point(r) for r in outcome.ok_records]
    return {
        "edp": min(p.edp for p in points),
        "energy_efficiency": max(p.energy_efficiency for p in points),
    }


class TestAxes:
    def test_choice_unit_roundtrip(self):
        axis = Choice("flow", ("2D", "3D"))
        assert axis.from_unit(0.0) == "2D"
        assert axis.from_unit(0.99) == "3D"
        assert axis.from_unit(axis.to_unit("3D")) == "3D"
        assert axis.cardinality == 2
        assert axis.grid() == ("2D", "3D")

    def test_choice_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Choice("flow", ())
        with pytest.raises(ValueError):
            Choice("flow", ("2D", "2D"))

    def test_numeric_choice_mutates_to_value_neighbor(self):
        axis = Choice("bandwidth", (2.0, 4.0, 8.0, 16.0))
        rng = random.Random(0)
        for _ in range(50):
            assert axis.mutate(8.0, rng) in (4.0, 16.0)
        # Edges clamp instead of wrapping.
        assert all(axis.mutate(2.0, rng) in (2.0, 4.0) for _ in range(20))

    def test_categorical_choice_mutates_to_other_value(self):
        axis = Choice("flow", ("2D", "3D"))
        rng = random.Random(0)
        assert axis.mutate("2D", rng) == "3D"

    def test_int_range_linear_and_log(self):
        lin = IntRange("num_cores", 16, 256)
        assert lin.from_unit(0.0) == 16
        assert lin.from_unit(1.0) == 256
        assert lin.cardinality == 241
        log = IntRange("capacity_mib", 1, 8, log2=True)
        assert log.from_unit(0.0) == 1
        assert log.from_unit(1.0) == 8
        assert log.from_unit(log.to_unit(4)) == 4

    def test_float_range_log_interpolation(self):
        axis = FloatRange("bandwidth", 2.0, 128.0, log=True)
        assert axis.from_unit(0.0) == pytest.approx(2.0)
        assert axis.from_unit(1.0) == pytest.approx(128.0)
        assert axis.from_unit(0.5) == pytest.approx(16.0)
        assert axis.cardinality is None
        with pytest.raises(ValueError):
            axis.grid()

    def test_rejects_unknown_scenario_field(self):
        with pytest.raises(ValueError):
            Choice("voltage", (0.8, 0.9))
        with pytest.raises(ValueError):
            Choice("objective", ("edp",))  # objectives never change metrics

    def test_arch_dotted_names_allowed(self):
        axis = Choice("arch.core_kge", (60.0, 80.0))
        assert axis.name == "arch.core_kge"

    def test_axis_dict_roundtrip(self):
        for axis in (
            Choice("flow", ("2D", "3D")),
            IntRange("capacity_mib", 1, 8, log2=True),
            FloatRange("bandwidth", 2.0, 128.0, log=True),
        ):
            rebuilt = axis_from_dict(json.loads(json.dumps(axis.to_dict())))
            assert rebuilt == axis


class TestSearchSpace:
    def test_paper_space_is_the_56_point_grid(self):
        space = paper_space()
        assert space.cardinality == 56
        assert len(list(space.grid())) == 56

    def test_scenario_building_with_base_fields(self):
        space = SearchSpace(
            (Choice("capacity_mib", (1, 8)),), flow="3D", workload="matmul"
        )
        scenario = space.scenario({"capacity_mib": 8})
        assert scenario.capacity_mib == 8
        assert scenario.flow == "3D"

    def test_arch_axis_routes_into_overrides(self):
        space = SearchSpace(
            (Choice("arch.core_kge", (60.0, 80.0)),), capacity_mib=1
        )
        scenario = space.scenario({"arch.core_kge": 80.0})
        assert scenario.arch_params().core_kge == 80.0
        # The default value canonicalizes to "no overrides".
        assert space.scenario({"arch.core_kge": 60.0}).arch is None

    def test_try_scenario_returns_none_on_invalid(self):
        space = SearchSpace(
            (Choice("tile_size", (7, 256)),), capacity_mib=1, matrix_dim=326400
        )
        assert space.try_scenario({"tile_size": 7}) is None  # 7 ∤ 326400
        assert space.try_scenario({"tile_size": 256}) is not None

    def test_arch_base_dict_and_dotted_base_keys(self):
        axes = (Choice("capacity_mib", (1, 2)),)
        via_dict = SearchSpace(axes, flow="3D", arch={"core_kge": 80.0})
        via_dotted = SearchSpace(axes, flow="3D", **{"arch.core_kge": 80.0})
        for space in (via_dict, via_dotted):
            scenario = space.scenario({"capacity_mib": 1})
            assert scenario.arch_params().core_kge == 80.0
        rebuilt = SearchSpace.from_dict(via_dict.to_dict())
        assert rebuilt.scenario({"capacity_mib": 1}).arch == {"core_kge": 80.0}

    def test_unknown_arch_param_rejected_at_construction(self):
        axes = (Choice("capacity_mib", (1, 2)),)
        with pytest.raises(ValueError, match="arch parameter"):
            SearchSpace(axes, arch={"banking_factor": 2})
        with pytest.raises(ValueError, match="arch parameter"):
            SearchSpace(axes, **{"arch.banking_factor": 2})
        with pytest.raises(ValueError, match="arch parameter"):
            Choice("arch.banking_factor", (2, 4))

    def test_rejects_duplicate_and_conflicting_names(self):
        with pytest.raises(ValueError):
            SearchSpace((Choice("flow", ("2D",)), Choice("flow", ("3D",))))
        with pytest.raises(ValueError):
            SearchSpace((Choice("flow", ("2D", "3D")),), flow="2D")
        with pytest.raises(ValueError):
            SearchSpace(
                (Choice("arch.core_kge", (60.0, 80.0)),),
                **{"arch.core_kge": 70.0},
            )
        with pytest.raises(ValueError):
            SearchSpace(())

    def test_space_dict_roundtrip(self):
        space = paper_space(workload="matmul")
        rebuilt = SearchSpace.from_dict(json.loads(json.dumps(space.to_dict())))
        assert rebuilt.names == space.names
        assert rebuilt.base == space.base
        assert rebuilt.cardinality == 56


class TestParetoPrimitives:
    def test_dominates(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_non_dominated(self):
        costs = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (3.0, 3.0)]
        assert non_dominated(costs) == [0, 1, 2]

    def test_non_dominated_sort_layers(self):
        costs = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        assert non_dominated_sort(costs) == [[0], [1], [2]]

    def test_non_dominated_sort_partitions(self):
        rng = random.Random(3)
        costs = [(rng.random(), rng.random()) for _ in range(30)]
        fronts = non_dominated_sort(costs)
        assert sorted(i for front in fronts for i in front) == list(range(30))
        assert fronts[0] == non_dominated(costs)

    def test_crowding_boundaries_are_infinite(self):
        costs = [(0.0, 3.0), (1.0, 2.0), (3.0, 0.0)]
        d = crowding_distances(costs)
        assert d[0] == float("inf")
        assert d[2] == float("inf")
        assert 0 < d[1] < float("inf")


class TestStrategies:
    def test_builtins_registered(self):
        for name in ("random", "latin-hypercube", "evolutionary",
                     "successive-halving"):
            assert name in STRATEGIES

    def test_random_never_repeats_and_exhausts(self):
        space = SearchSpace((Choice("capacity_mib", (1, 2, 4, 8)),), flow="2D")
        strategy = STRATEGIES.get("random")(space, seed=0)
        first = strategy.propose(10)
        assert len(first) == 4  # space has only 4 points
        keys = {strategy.values_key(v) for v in first}
        assert len(keys) == 4
        assert strategy.propose(3) == []  # exhausted

    def test_lhs_units_stratify_every_axis(self):
        units = lhs_units(random.Random(0), 8, ("a", "b"))
        for name in ("a", "b"):
            strata = sorted(int(u[name] * 8) for u in units)
            assert strata == list(range(8))

    def test_successive_halving_spends_budget_on_screened_best(self):
        # Proxy-screened promotion: with a pool 4x the generation, the
        # promoted candidates must lean toward the analytically-best
        # bandwidths (the proxy is monotone in bandwidth here).
        space = paper_space()
        strategy = STRATEGIES.get("successive-halving")(
            space,
            objectives=(("edp", lambda p: p.edp, False),),
            seed=0,
        )
        promoted = strategy.propose(6)
        assert len(promoted) == 6
        mean_bw = sum(v["bandwidth"] for v in promoted) / len(promoted)
        assert mean_bw > 32.0  # uniform sampling would average ~36/2

    def test_strategy_options_validated(self):
        space = paper_space()
        with pytest.raises(ValueError):
            STRATEGIES.get("evolutionary")(space, population=1)
        with pytest.raises(ValueError):
            STRATEGIES.get("successive-halving")(space, eta=1)


class TestParetoArchive:
    def test_persists_and_reloads(self, tmp_path):
        path = tmp_path / "archive.jsonl"
        searcher = Searcher(
            paper_space(), strategy="random", budget=6,
            archive=ParetoArchive(path),
        )
        outcome = searcher.run()
        assert len(searcher.archive) == 6
        reloaded = ParetoArchive(path)
        assert len(reloaded) == 6
        front_keys = {e["key"] for e in reloaded.front()}
        assert front_keys == {c.key for c in outcome.front}

    def test_front_entries_are_non_dominated(self, tmp_path):
        archive = ParetoArchive(tmp_path / "archive.jsonl")
        Searcher(
            paper_space(), strategy="latin-hypercube", budget=10,
            archive=archive,
        ).run()
        front = archive.front()
        assert front
        costs = [tuple(e["search"]["costs"]) for e in archive.ok_entries()]
        for entry in front:
            c = tuple(entry["search"]["costs"])
            assert not any(dominates(other, c) for other in costs)

    def test_front_ignores_entries_from_other_objective_sets(self, tmp_path):
        # One archive file shared by searches over different objective
        # sets: cost vectors are only comparable within one set.
        path = tmp_path / "archive.jsonl"
        Searcher(paper_space(), strategy="random", budget=5,
                 objectives=("edp", "energy_efficiency"),
                 archive=ParetoArchive(path)).run()
        Searcher(paper_space(), strategy="random", budget=5, seed=9,
                 objectives=("performance",),
                 archive=ParetoArchive(path)).run()
        archive = ParetoArchive(path)
        # Default: the most recent entry's objective set.
        assert all(
            tuple(e["search"]["objectives"]) == ("performance",)
            for e in archive.front()
        )
        # Explicit selection reaches the earlier set.
        two = archive.front(objectives=("edp", "energy_efficiency"))
        assert two
        assert all(len(e["search"]["costs"]) == 2 for e in two)

    def test_search_metadata_recorded(self):
        archive = ParetoArchive()
        Searcher(paper_space(), strategy="random", budget=4,
                 archive=archive).run()
        entry = archive.entries()[0]
        assert set(entry["search"]) == {
            "values", "generation", "objectives", "costs"
        }
        assert "edp" in entry["search"]["objectives"]


class TestSearcher:
    def test_budget_respected_and_unique(self):
        outcome = Searcher(paper_space(), strategy="random", budget=20).run()
        assert outcome.stats.proposed == 20
        assert len({c.key for c in outcome.candidates}) == 20

    def test_exhausts_small_space_below_budget(self):
        space = SearchSpace((Choice("capacity_mib", (1, 2, 4, 8)),), flow="3D")
        outcome = Searcher(space, strategy="random", budget=50).run()
        assert outcome.stats.proposed == 4

    def test_key_aliasing_assignments_terminate(self):
        # tile 256 is 1 MiB's derived tile, so both assignments fold to
        # the same scenario key: the search must evaluate one candidate
        # and stop — neither looping forever nor crashing.
        space = SearchSpace(
            (Choice("tile_size", (None, 256)),), capacity_mib=1, flow="2D"
        )
        outcome = Searcher(space, strategy="random", budget=8).run()
        assert outcome.stats.proposed == 1
        assert len(outcome.ok_candidates) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            Searcher(paper_space(), budget=0)
        with pytest.raises(ValueError):
            Searcher(paper_space(), objectives=())
        with pytest.raises(ValueError):
            Searcher(paper_space(), objectives=("beauty",))
        with pytest.raises(ValueError):
            Searcher(paper_space(), strategy="gradient-descent")

    def test_front_is_non_dominated_subset(self):
        outcome = Searcher(paper_space(), budget=16).run()
        assert outcome.front
        for c in outcome.front:
            assert not any(
                dominates(other.costs, c.costs)
                for other in outcome.ok_candidates
            )

    def test_ranked_and_best(self):
        outcome = Searcher(paper_space(), budget=12).run()
        ranked = outcome.ranked("edp")
        values = [c.objectives["edp"] for c in ranked]
        assert values == sorted(values)
        assert outcome.best("edp") is ranked[0]
        with pytest.raises(ValueError):
            outcome.ranked("beauty")

    def test_report_names_winners(self):
        outcome = Searcher(paper_space(), budget=12).run()
        text = outcome.report()
        assert "best edp" in text
        assert "Pareto front" in text

    def test_trajectory_is_deterministic(self):
        a = Searcher(paper_space(), budget=15, seed=7).run()
        b = Searcher(paper_space(), budget=15, seed=7).run()
        assert [c.key for c in a.candidates] == [c.key for c in b.candidates]

    def test_resume_from_cache_is_free(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = Searcher(paper_space(), budget=18, cache=cache).run()
        assert first.stats.evaluated == 18
        again = Searcher(paper_space(), budget=18, cache=cache).run()
        assert again.stats.evaluated == 0
        assert again.stats.cached == 18
        assert [c.key for c in again.candidates] == [
            c.key for c in first.candidates
        ]

    def test_killed_search_resumes_without_reevaluation(self, tmp_path):
        # A search killed after 10 evaluations == a fresh run whose first
        # 10 candidates are already cached: the retry pays only the rest.
        cache = ResultCache(tmp_path)
        partial = Searcher(paper_space(), budget=10, cache=cache).run()
        assert partial.stats.evaluated == 10
        full = Searcher(paper_space(), budget=28, cache=cache).run()
        assert full.stats.cached >= 10
        assert full.stats.evaluated <= 18
        assert [c.key for c in full.candidates[:10]] == [
            c.key for c in partial.candidates
        ]

    def test_parallel_workers_match_serial(self, tmp_path):
        serial = Searcher(paper_space(), budget=12, workers=0).run()
        parallel = Searcher(paper_space(), budget=12, workers=2).run()
        assert [c.key for c in serial.candidates] == [
            c.key for c in parallel.candidates
        ]
        assert [c.objectives for c in serial.ok_candidates] == [
            c.objectives for c in parallel.ok_candidates
        ]

    def test_failed_candidates_reported_not_fatal(self):
        from repro.api import WORKLOADS, register_workload

        @register_workload("flaky_search_wl")
        def flaky(scenario):
            if scenario.capacity_mib >= 4:
                raise RuntimeError("diverged")
            return 1.0e6 * scenario.capacity_mib

        try:
            space = SearchSpace(
                (Choice("capacity_mib", (1, 2, 4, 8)),),
                flow="2D",
                workload="flaky_search_wl",
            )
            outcome = Searcher(space, strategy="random", budget=4).run()
            assert outcome.stats.proposed == 4
            assert outcome.stats.failed == 2
            assert len(outcome.ok_candidates) == 2
            assert "failures (2)" in outcome.report()
        finally:
            WORKLOADS.unregister("flaky_search_wl")


class TestEvolutionaryRecovery:
    def test_recovers_grid_optima_at_half_budget(self, grid_best):
        outcome = Searcher(
            paper_space(),
            objectives=("edp", "energy_efficiency"),
            strategy="evolutionary",
            budget=28,
        ).run()
        assert outcome.best("edp").objectives["edp"] == pytest.approx(
            grid_best["edp"]
        )
        assert outcome.best("energy_efficiency").objectives[
            "energy_efficiency"
        ] == pytest.approx(grid_best["energy_efficiency"])


class TestStrategyPlugins:
    """Strategies must be registrable from user code (no core edits)."""

    def test_user_registered_strategy_drives_a_search(self):
        @register_strategy("test-first-come")
        class FirstCome(Strategy):
            def propose(self, n):
                batch = []
                for values in self.space.grid():
                    if len(batch) == n:
                        break
                    if self.claim(values):
                        batch.append(values)
                return batch

        try:
            outcome = Searcher(
                paper_space(), strategy="test-first-come", budget=5
            ).run()
            assert outcome.stats.proposed == 5
            assert outcome.stats.generations == 1
        finally:
            STRATEGIES.unregister("test-first-come")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_strategy("random")(object())

    def test_strategy_instance_can_be_passed_directly(self):
        strategy = STRATEGIES.get("random")(paper_space(), seed=3)
        outcome = Searcher(
            paper_space(), strategy=strategy, budget=4
        ).run()
        assert outcome.stats.proposed == 4
