"""Tests for repro.analysis: framework, each REP rule, and the src gate.

Every rule is proven both ways on the seeded-defect corpus under
``tests/analysis_corpus/``: the ``*_defect.py`` file must fire the rule,
its ``*_clean.py`` twin must stay silent under *all* rules.  The suite
also pins the invariant the CI ``check`` job enforces — ``repro check``
over the real ``src/`` tree reports zero errors.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import Finding, analyze_paths, available_lints, register_lint
from repro.analysis.framework import LINTS, BaseLint

CORPUS = Path(__file__).parent / "analysis_corpus"
SRC = Path(__file__).parent.parent / "src"

ALL_RULES = ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
             "REP007", "REP008", "REP009")


class TestCorpus:
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_rule_fires_on_its_defect(self, rule):
        defect = CORPUS / f"{rule.lower()}_defect.py"
        report = analyze_paths([defect], rules=[rule])
        assert report.findings, f"{rule} did not fire on {defect.name}"
        assert {f.rule for f in report.findings} == {rule}
        assert all(f.severity == "error" for f in report.findings)
        assert report.exit_code == 1

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_clean_twin_is_silent_under_every_rule(self, rule):
        clean = CORPUS / f"{rule.lower()}_clean.py"
        report = analyze_paths([clean])  # all rules, not just its own
        assert report.findings == [], [f.format() for f in report.findings]
        assert report.exit_code == 0

    def test_findings_carry_location_and_hint(self):
        report = analyze_paths(
            [CORPUS / "rep003_defect.py"], rules=["REP003"]
        )
        finding = report.findings[0]
        assert finding.path.endswith("rep003_defect.py")
        assert finding.line > 0
        assert finding.hint  # every REP finding ships a fix hint
        assert f"{finding.path}:{finding.line}:" in finding.format()


class TestSrcGate:
    def test_src_tree_is_clean(self):
        """The invariant CI's `check` job enforces on every PR."""
        report = analyze_paths([SRC])
        errors = [f.format() for f in report.findings if f.severity == "error"]
        assert not errors, "\n".join(errors)
        assert report.exit_code == 0
        assert report.files_checked > 50  # really scanned the tree


class TestFramework:
    def test_unknown_rule_raises_value_error(self):
        with pytest.raises(ValueError, match="REP999"):
            analyze_paths([CORPUS / "rep001_clean.py"], rules=["REP999"])

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            analyze_paths(["no/such/dir"])

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = analyze_paths([bad])
        assert [f.rule for f in report.findings] == ["PARSE"]
        assert report.exit_code == 1

    def test_suppression_comment_silences_one_rule(self, tmp_path):
        src = textwrap.dedent(
            """
            import time

            async def handler():
                time.sleep(1)  # repro: ignore[REP003]
            """
        )
        path = tmp_path / "suppressed.py"
        path.write_text(src, encoding="utf-8")
        assert analyze_paths([path]).findings == []
        # The same code without the comment fires.
        path.write_text(src.replace("  # repro: ignore[REP003]", ""),
                        encoding="utf-8")
        assert [f.rule for f in analyze_paths([path]).findings] == ["REP003"]

    def test_bare_suppression_silences_all_rules(self, tmp_path):
        path = tmp_path / "suppressed.py"
        path.write_text(
            "import time\n\nasync def h():\n"
            "    time.sleep(1)  # repro: ignore\n",
            encoding="utf-8",
        )
        assert analyze_paths([path]).findings == []

    def test_finding_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(path="x.py", line=1, col=0, rule="REP001",
                    message="m", severity="fatal")

    def test_lints_registry_is_pluggable(self, tmp_path):
        """Custom rules register/unregister like any other plugin."""

        @register_lint("TEST901")
        class AlwaysFires(BaseLint):
            rule = "TEST901"

            def check(self, ctx):
                yield self.finding(ctx, ctx.tree.body[0], "fires everywhere")

        try:
            assert "TEST901" in available_lints()
            path = tmp_path / "any.py"
            path.write_text("x = 1\n", encoding="utf-8")
            report = analyze_paths([path], rules=["TEST901"])
            assert [f.rule for f in report.findings] == ["TEST901"]

            class Impostor(BaseLint):
                rule = "TEST901"

            with pytest.raises(ValueError, match="already registered"):
                register_lint("TEST901")(Impostor)
        finally:
            LINTS.unregister("TEST901")
        assert "TEST901" not in available_lints()

    def test_builtin_rules_are_seeded(self):
        assert set(ALL_RULES) <= set(available_lints())


class TestRuleDetails:
    def test_rep001_flags_unknown_physical_key_as_warning(self, tmp_path):
        src = textwrap.dedent(
            """
            class S:
                capacity_mib: int = 1

                def cache_dict(self):
                    return {"capacity_mib": self.capacity_mib}

                def physical_dict(self):
                    return {"capacty_mib": self.capacity_mib}  # typo
            """
        )
        path = tmp_path / "typo.py"
        path.write_text(src, encoding="utf-8")
        report = analyze_paths([path], rules=["REP001"])
        warnings = [f for f in report.findings if f.severity == "warning"]
        assert any("capacty_mib" in f.message for f in warnings)
        # Warnings alone do not gate.
        assert report.exit_code == 0

    def test_rep001_flags_canonical_key_drop(self, tmp_path):
        src = textwrap.dedent(
            """
            class S:
                capacity_mib: int = 1
                tile_size: int = 4

                def to_dict(self):
                    return {"capacity_mib": self.capacity_mib,
                            "tile_size": self.tile_size}

                def cache_dict(self):
                    data = self.to_dict()
                    del data["tile_size"]  # not ranking-only!
                    return data

                def physical_dict(self):
                    return {"capacity_mib": self.capacity_mib,
                            "tile_size": self.tile_size}
            """
        )
        path = tmp_path / "drop.py"
        path.write_text(src, encoding="utf-8")
        report = analyze_paths([path], rules=["REP001"])
        assert any("tile_size" in f.message and "canonical" in f.message
                   for f in report.findings)

    def test_rep003_ignores_sync_helpers_inside_async(self, tmp_path):
        src = textwrap.dedent(
            """
            import time

            async def handler():
                def worker():
                    time.sleep(1)  # runs via to_thread: fine
                import asyncio
                await asyncio.to_thread(worker)
            """
        )
        path = tmp_path / "nested.py"
        path.write_text(src, encoding="utf-8")
        assert analyze_paths([path], rules=["REP003"]).findings == []

    def test_rep004_allows_seeded_rngs(self, tmp_path):
        src = textwrap.dedent(
            """
            import hashlib
            import random

            def cache_key(params, seed):
                rng = random.Random(seed)
                salt = rng.random()
                return hashlib.sha256(f"{params}{salt}".encode()).hexdigest()
            """
        )
        path = tmp_path / "seeded.py"
        path.write_text(src, encoding="utf-8")
        assert analyze_paths([path], rules=["REP004"]).findings == []

    def test_rep005_collisions_detected_across_files(self, tmp_path):
        for name in ("one.py", "two.py"):
            (tmp_path / name).write_text(
                "from repro.api import register_flow\n\n"
                "@register_flow('dup-flow')\n"
                "def f(s):\n    return {}\n",
                encoding="utf-8",
            )
        report = analyze_paths([tmp_path], rules=["REP005"])
        assert any("duplicate flow name 'dup-flow'" in f.message
                   for f in report.findings)

    def test_rep006_ignores_module_level_callables(self, tmp_path):
        src = textwrap.dedent(
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(j):
                return j

            def run(jobs, pool: ProcessPoolExecutor):
                return [pool.submit(work, j) for j in jobs]
            """
        )
        path = tmp_path / "ok.py"
        path.write_text(src, encoding="utf-8")
        assert analyze_paths([path], rules=["REP006"]).findings == []


class TestPublicSurface:
    def test_lazy_exports_resolve(self):
        import repro

        assert repro.Finding is Finding
        assert callable(repro.analyze_paths)
        assert callable(repro.register_lint)
        assert set(ALL_RULES) <= set(repro.available_lints())

    def test_cheap_import_does_not_load_framework(self):
        """sweep.cache pulls only racecheck, never the lint framework."""
        import subprocess
        import sys

        code = (
            "import sys; import repro.sweep.cache; "
            "assert 'repro.analysis.racecheck' in sys.modules; "
            "assert 'repro.analysis.framework' not in sys.modules"
        )
        subprocess.run([sys.executable, "-c", code], check=True)
