"""Tests for repro.kernels.blocked — executed phase schedule."""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.kernels.blocked import run_blocked_matmul
from repro.kernels.phases import PhaseModelParams, matmul_cycles
from repro.kernels.tiling import TilingPlan
from repro.simulator.memsys import OffChipMemory


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


class TestExecution:
    def test_correct_over_multiple_tiles(self, config):
        plan = TilingPlan(matrix_dim=24, tile_size=8)
        result = run_blocked_matmul(
            config, plan, OffChipMemory(bandwidth_bytes_per_cycle=16), num_cores=8
        )
        assert result.correct
        assert result.phases == plan.total_phases == 27

    def test_single_tile_degenerate(self, config):
        plan = TilingPlan(matrix_dim=8, tile_size=8)
        result = run_blocked_matmul(
            config, plan, OffChipMemory(bandwidth_bytes_per_cycle=16), num_cores=4
        )
        assert result.correct
        assert result.phases == 1

    def test_memory_cycles_match_traffic(self, config):
        plan = TilingPlan(matrix_dim=16, tile_size=8)
        memory = OffChipMemory(bandwidth_bytes_per_cycle=8)
        result = run_blocked_matmul(config, plan, memory, num_cores=8)
        expected_load = plan.total_phases * memory.transfer_cycles(plan.load_bytes_per_phase)
        assert result.memory_cycles == expected_load
        expected_store = plan.output_tiles * memory.transfer_cycles(
            plan.store_bytes_per_output_tile
        )
        assert result.writeback_cycles == expected_store

    def test_plan_must_fit_spm(self):
        tiny_arch_config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)
        plan = TilingPlan(matrix_dim=2048, tile_size=512)  # 3 MiB working set
        with pytest.raises(ValueError):
            run_blocked_matmul(
                tiny_arch_config, plan, OffChipMemory(bandwidth_bytes_per_cycle=16)
            )

    def test_lower_bandwidth_raises_memory_fraction(self, config):
        plan = TilingPlan(matrix_dim=16, tile_size=8)
        slow = run_blocked_matmul(
            config, plan, OffChipMemory(bandwidth_bytes_per_cycle=2), num_cores=8
        )
        fast = run_blocked_matmul(
            config, plan, OffChipMemory(bandwidth_bytes_per_cycle=64), num_cores=8
        )
        assert slow.memory_fraction > fast.memory_fraction
        assert slow.correct and fast.correct


class TestPhaseModelValidation:
    """The analytic model must track the executed schedule."""

    def test_memory_component_exact(self, config):
        plan = TilingPlan(matrix_dim=24, tile_size=8)
        memory = OffChipMemory(bandwidth_bytes_per_cycle=4)
        executed = run_blocked_matmul(config, plan, memory, num_cores=8)
        modeled = matmul_cycles(plan, OffChipMemory(bandwidth_bytes_per_cycle=4))
        assert executed.memory_cycles == pytest.approx(modeled.memory_cycles)
        assert executed.writeback_cycles == pytest.approx(modeled.writeback_cycles)

    def test_compute_component_tracks_model_with_measured_cpi(self, config):
        plan = TilingPlan(matrix_dim=16, tile_size=8)
        num_cores = 8
        executed = run_blocked_matmul(
            config, plan, OffChipMemory(bandwidth_bytes_per_cycle=16),
            num_cores=num_cores,
        )
        # Back out the effective CPI from the executed compute phases and
        # feed it to the model: the model must then reproduce the compute
        # cycles exactly (it is the same arithmetic).
        cpi = executed.compute_cycles * num_cores / plan.total_macs / plan.total_phases * plan.total_phases
        params = PhaseModelParams(
            cpi_mac=cpi, phase_overhead_cycles=0.0, num_cores=num_cores
        )
        modeled = matmul_cycles(plan, OffChipMemory(bandwidth_bytes_per_cycle=16), params)
        assert modeled.compute_cycles == pytest.approx(executed.compute_cycles, rel=0.01)
