"""Tests for repro.arch.icache."""

import pytest

from repro.arch.icache import InstructionCache


class TestConstruction:
    def test_line_count(self):
        cache = InstructionCache(capacity_bytes=2048, line_bytes=32)
        assert cache.num_lines == 64

    def test_rejects_unaligned_capacity(self):
        with pytest.raises(ValueError):
            InstructionCache(capacity_bytes=100, line_bytes=32)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ValueError):
            InstructionCache(refill_penalty=-1)


class TestBehaviour:
    def test_first_fetch_misses_then_hits(self):
        cache = InstructionCache(refill_penalty=20)
        assert cache.fetch(0) == 20
        assert cache.fetch(0) == 0
        assert cache.fetch(4) == 0  # same line

    def test_distinct_lines_miss_independently(self):
        cache = InstructionCache(line_bytes=32, refill_penalty=10)
        assert cache.fetch(0) == 10
        assert cache.fetch(32) == 10
        assert cache.fetch(0) == 0

    def test_fifo_eviction(self):
        cache = InstructionCache(capacity_bytes=64, line_bytes=32, refill_penalty=5)
        cache.fetch(0)
        cache.fetch(32)
        cache.fetch(64)  # evicts line 0
        assert cache.fetch(0) == 5
        assert cache.stats.misses == 4

    def test_loop_fitting_in_cache_hits_after_first_iteration(self):
        cache = InstructionCache(capacity_bytes=2048, line_bytes=32, refill_penalty=20)
        loop_bytes = 256
        for _ in range(3):
            for pc in range(0, loop_bytes, 4):
                cache.fetch(pc)
        assert cache.stats.misses == loop_bytes // 32
        assert cache.stats.hit_rate > 0.95

    def test_warm_makes_fetches_hit(self):
        cache = InstructionCache()
        cache.warm(0, 512)
        assert cache.fetch(100) == 0
        assert cache.stats.misses == 0

    def test_warm_rejects_inverted_range(self):
        cache = InstructionCache()
        with pytest.raises(ValueError):
            cache.warm(100, 50)

    def test_flush_clears_contents(self):
        cache = InstructionCache(refill_penalty=7)
        cache.fetch(0)
        cache.flush()
        assert cache.fetch(0) == 7

    def test_negative_pc_rejected(self):
        cache = InstructionCache()
        with pytest.raises(ValueError):
            cache.fetch(-4)

    def test_hit_rate_defaults_to_one(self):
        cache = InstructionCache()
        assert cache.stats.hit_rate == 1.0
