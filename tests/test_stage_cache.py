"""Stage-factored memoization: the third cache tier.

``Pipeline.run`` splits into two independent stages — the physical
``implement()`` keyed by flow/capacity/arch/frequency, and the workload
``cycles()`` keyed by workload/tiling/arch/bandwidth — memoized in
:class:`repro.engine.cache.StageCache`.  These tests pin the stage-key
contracts, the exactly-A-physical-implementations property of a
K-kernels x A-archs sweep, warm-restart behaviour, and the maintenance
CLI surface.
"""

import json

import pytest

from repro.api import Pipeline, Scenario
from repro.engine import (
    Engine,
    StageCache,
    cache_clear,
    cache_gc,
    cache_stats,
)
from repro.sweep import ResultCache, SweepSpec


class TestStageKeys:
    def test_objective_never_affects_stage_keys(self):
        a = Scenario(capacity_mib=4, flow="2D", objective="edp")
        b = Scenario(capacity_mib=4, flow="2D", objective="performance")
        assert a.physical_key == b.physical_key
        assert a.cycles_key == b.cycles_key

    def test_workload_fields_stay_out_of_physical_key(self):
        a = Scenario(capacity_mib=4, flow="2D", workload="matmul")
        b = Scenario(capacity_mib=4, flow="2D", workload="dotp",
                     matrix_dim=64, num_cores=16, bandwidth=32.0)
        assert a.physical_key == b.physical_key
        assert a.cycles_key != b.cycles_key

    def test_flow_and_frequency_stay_out_of_cycles_key(self):
        a = Scenario(capacity_mib=4, flow="2D", target_frequency_mhz=1000.0)
        b = Scenario(capacity_mib=4, flow="3D", target_frequency_mhz=700.0)
        assert a.cycles_key == b.cycles_key
        assert a.physical_key != b.physical_key

    def test_arch_and_capacity_are_in_both_keys(self):
        a = Scenario(capacity_mib=4, flow="2D")
        b = Scenario(capacity_mib=8, flow="2D")
        c = Scenario(capacity_mib=4, flow="2D",
                     arch={"cores_per_tile": 8})
        assert len({a.physical_key, b.physical_key, c.physical_key}) == 3
        assert len({a.cycles_key, b.cycles_key, c.cycles_key}) == 3


class TestPipelineStageCache:
    def test_physical_shared_across_workloads(self):
        cache = StageCache()
        pipeline = Pipeline(stage_cache=cache)
        pipeline.run(Scenario(capacity_mib=2, flow="3D", workload="matmul"))
        pipeline.run(Scenario(capacity_mib=2, flow="3D", workload="dotp",
                              matrix_dim=64, num_cores=16))
        assert cache.physical_evals == 1
        assert cache.physical_hits == 1
        assert cache.cycles_evals == 2  # different workloads

    def test_cycles_shared_across_flows(self):
        cache = StageCache()
        pipeline = Pipeline(stage_cache=cache)
        r2d = pipeline.run(Scenario(capacity_mib=2, flow="2D"))
        r3d = pipeline.run(Scenario(capacity_mib=2, flow="3D"))
        assert cache.cycles_evals == 1
        assert cache.cycles_hits == 1
        assert cache.physical_evals == 2  # flows implement separately
        assert r2d.cycles == r3d.cycles

    def test_cached_results_are_bit_identical(self):
        scenario = Scenario(capacity_mib=4, flow="3D", bandwidth=32.0)
        plain = Pipeline().run(scenario)
        cache = StageCache()
        cached_pipeline = Pipeline(stage_cache=cache)
        first = cached_pipeline.run(scenario)
        second = cached_pipeline.run(scenario)
        for result in (first, second):
            assert result.to_dict() == plain.to_dict()
        assert cache.physical_evals == 1 and cache.cycles_evals == 1


@pytest.fixture
def spec():
    # K=3 kernels x (A=2 capacities x 2 flows)
    return SweepSpec(
        capacities_mib=(1, 2),
        flows=("2D", "3D"),
        bandwidths=(16.0,),
        matrix_dims=(64,),
        core_counts=(16,),
        kernels=("matmul", "dotp", "axpy"),
    )


class TestEngineStageCache:
    def test_physical_runs_exactly_once_per_arch(self, tmp_path, spec):
        engine = Engine(cache=ResultCache(tmp_path))
        outcome = engine.run(spec.jobs())
        assert outcome.stats.failed == 0
        counters = engine.stage_counters()
        # 2 capacities x 2 flows = 4 physical implementations, not 4 x 3.
        assert counters["physical_evals"] == 4
        assert counters["physical_hits"] == 8
        # cycles: 3 kernels x 2 capacities, shared across the 2 flows.
        assert counters["cycles_evals"] == 6
        assert counters["cycles_hits"] == 6

    def test_warm_resweep_evaluates_no_stages(self, tmp_path, spec):
        Engine(cache=ResultCache(tmp_path)).run(spec.jobs())
        before = cache_stats(tmp_path)
        warm = Engine(cache=ResultCache(tmp_path)).run(spec.jobs())
        assert warm.stats.evaluated == 0
        after = cache_stats(tmp_path)
        assert after["physical_evals"] == before["physical_evals"]
        assert after["cycles_evals"] == before["cycles_evals"]

    def test_fresh_process_reloads_stage_memos_from_disk(self, tmp_path, spec):
        Engine(cache=ResultCache(tmp_path)).run(spec.jobs())
        # A fresh StageCache (what a new worker process builds) serves
        # every stage from the stages.jsonl memo without re-evaluating.
        fresh = StageCache(tmp_path)
        assert len(fresh) == 4 + 6
        for job in spec.jobs():
            scenario = job.scenario()
            assert fresh.get_physical(scenario.physical_key) is not None
            assert fresh.get_cycles(scenario.cycles_key) is not None
        assert fresh.physical_evals == 0 and fresh.cycles_evals == 0

    def test_stage_cache_disabled_without_disk_cache(self):
        engine = Engine()
        assert engine.stage_counters() is None

    def test_stage_cache_opt_out(self, tmp_path):
        engine = Engine(cache=ResultCache(tmp_path), stage_cache=False)
        assert engine.stage_counters() is None


class TestMaintenance:
    def test_stats_clear_and_gc_cover_the_stage_file(self, tmp_path, spec):
        Engine(cache=ResultCache(tmp_path)).run(spec.jobs())
        stats = cache_stats(tmp_path)
        assert stats["stage_entries"] == 10
        assert stats["physical_evals"] == 4
        assert stats["cycles_evals"] == 6

        # gc prunes stage memos from other model versions
        stage_file = tmp_path / StageCache.FILENAME
        lines = stage_file.read_text().splitlines()
        stale = json.loads(lines[0])
        stale["key"] = "0" * 64
        stale["model_version"] = "1.obsolete"
        with stage_file.open("a") as fh:
            fh.write(json.dumps(stale) + "\n")
        assert len(StageCache(tmp_path)) == 11
        cache_gc(tmp_path)
        assert len(StageCache(tmp_path)) == 10

        removed = cache_clear(tmp_path)
        assert removed > 0
        assert not stage_file.exists()
        assert cache_stats(tmp_path)["stage_entries"] == 0

    def test_cli_cache_stats_prints_stage_counters(self, tmp_path, capsys):
        from repro.__main__ import main

        Engine(cache=ResultCache(tmp_path)).run(
            SweepSpec(capacities_mib=(1,), flows=("2D",)).jobs()
        )
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "stages:" in out
        assert "physical: 0 hits, 1 evaluations" in out
        assert "cycles:   0 hits, 1 evaluations" in out

    def test_cli_run_profile_prints_stage_times(self, capsys):
        from repro.__main__ import main

        code = main(["run", "--capacity", "1", "--flow", "2D", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile:" in out
        assert "implement" in out and "cycles" in out
