"""Multi-writer safety of the disk cache tiers.

Several processes share one cache directory — engines, service workers,
and ``repro cache merge`` — so concurrent appends must never tear,
duplicate, or drop records, and the counter sidecar must merge, not
clobber.
"""

import json
import multiprocessing
import os

import pytest

from repro.engine.cache import (
    STATS_FILENAME,
    StageCache,
    TieredCache,
    cache_stats,
    merge_cache_dirs,
)
from repro.sweep.cache import ResultCache, _FileLock, atomic_append


def _record(key: str, payload: int = 0) -> dict:
    return {
        "key": key,
        "job": {"capacity_mib": payload},
        "model_version": "test",
        "status": "ok",
        "metrics": {"edp": float(payload)},
    }


def _writer_proc(root: str, keys: list, start_gate) -> None:
    start_gate.wait()
    cache = ResultCache(root)
    for key in keys:
        cache.put(_record(key, payload=int(key.split("-")[-1])))


def _stage_writer_proc(root: str, keys: list, start_gate) -> None:
    start_gate.wait()
    stages = StageCache(root)
    for key in keys:
        stages.put_cycles(key, float(int(key.split("-")[-1])))


def _counter_proc(root: str, repeats: int, start_gate) -> None:
    start_gate.wait()
    cache = TieredCache(disk=ResultCache(root))
    for i in range(repeats):
        cache.get(f"miss-{os.getpid()}-{i}")  # counted as a miss
        cache.flush_stats()


class TestConcurrentResultWriters:
    def test_no_torn_or_duplicate_records(self, tmp_path):
        """4 processes x 40 keys with heavy overlap: every record lands
        exactly once, every line parses."""
        root = str(tmp_path)
        keys = [f"key-{i}" for i in range(40)]
        # Every process writes every key: maximal write contention.
        gate = multiprocessing.Event()
        procs = [
            multiprocessing.Process(
                target=_writer_proc, args=(root, keys, gate)
            )
            for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        gate.set()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0

        lines = (tmp_path / ResultCache.FILENAME).read_text().splitlines()
        parsed = [json.loads(line) for line in lines]  # no torn lines
        seen_keys = [record["key"] for record in parsed]
        assert sorted(set(seen_keys)) == sorted(keys)
        # The locked read-check-append means identical records are
        # written once, not once per process.
        assert len(seen_keys) == len(set(seen_keys))

        cache = ResultCache(root)
        assert len(cache) == len(keys)
        for key in keys:
            assert cache.get(key)["metrics"]["edp"] == float(
                key.split("-")[-1]
            )

    def test_refresh_adopts_other_writers(self, tmp_path):
        a = ResultCache(tmp_path)
        b = ResultCache(tmp_path)
        b.put(_record("k-1"))
        assert a.get("k-1") is None  # not yet folded in
        assert a.refresh() == 1
        assert a.get("k-1") == _record("k-1")
        assert a.refresh() == 0  # idempotent, cheap

    def test_torn_final_line_is_skipped_and_recovered(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_record("k-0"))
        # Simulate a crashed writer: a partial record with no newline.
        with (tmp_path / ResultCache.FILENAME).open("ab") as fh:
            fh.write(b'{"key": "torn-')
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 1  # fragment ignored
        # A later append completes the file; the now-corrupt joined line
        # is skipped on parse, the new record still loads.
        # Appends take the sidecar lock like any disciplined writer
        # would (and so the REPRO_RACE_CHECK=1 run stays clean).
        with _FileLock(tmp_path / ResultCache.LOCKNAME):
            atomic_append(
                tmp_path / ResultCache.FILENAME,
                json.dumps(_record("k-1"), sort_keys=True) + "\n",
            )
            atomic_append(
                tmp_path / ResultCache.FILENAME,
                json.dumps(_record("k-2"), sort_keys=True) + "\n",
            )
        assert fresh.refresh() == 1
        assert fresh.get("k-2") is not None
        assert "torn-" not in list(fresh.keys())


class TestConcurrentStageWriters:
    def test_stage_memos_survive_contention(self, tmp_path):
        root = str(tmp_path)
        keys = [f"stage-{i}" for i in range(30)]
        gate = multiprocessing.Event()
        procs = [
            multiprocessing.Process(
                target=_stage_writer_proc, args=(root, keys, gate)
            )
            for _ in range(3)
        ]
        for proc in procs:
            proc.start()
        gate.set()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0

        lines = (tmp_path / StageCache.FILENAME).read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        seen = [entry["key"] for entry in parsed]
        assert sorted(set(seen)) == sorted(keys)
        assert len(seen) == len(set(seen))  # deduplicated under the lock
        stages = StageCache(root)
        for key in keys:
            assert stages.get_cycles(key) == float(key.split("-")[-1])


class TestConcurrentCounters:
    def test_sidecar_merges_instead_of_clobbering(self, tmp_path):
        root = str(tmp_path)
        gate = multiprocessing.Event()
        procs = [
            multiprocessing.Process(
                target=_counter_proc, args=(root, 25, gate)
            )
            for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        gate.set()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        counters = json.loads((tmp_path / STATS_FILENAME).read_text())
        assert counters["misses"] == 4 * 25


class TestMergeCacheDirs:
    def test_merge_folds_records_stages_and_counters(self, tmp_path):
        src, dst = tmp_path / "worker", tmp_path / "shared"
        src_cache, dst_cache = ResultCache(src), ResultCache(dst)
        for i in range(4):
            src_cache.put(_record(f"s-{i}", payload=i))
        dst_cache.put(_record("s-0", payload=0))  # overlap
        dst_cache.put(_record("d-0", payload=9))
        StageCache(src).put_cycles("c-1", 123.0)
        (src / STATS_FILENAME).write_text(json.dumps({"misses": 7}))
        (dst / STATS_FILENAME).write_text(json.dumps({"misses": 5}))

        merged = merge_cache_dirs(src, dst)
        assert merged == {"records": 3, "stages": 1}

        combined = ResultCache(dst)
        assert len(combined) == 5
        assert combined.get("s-3")["metrics"]["edp"] == 3.0
        assert StageCache(dst).get_cycles("c-1") == 123.0
        assert json.loads((dst / STATS_FILENAME).read_text())["misses"] == 12
        # Re-merging is a no-op: everything is already present.
        assert merge_cache_dirs(src, dst) == {"records": 0, "stages": 0}

    def test_merge_missing_source_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_cache_dirs(tmp_path / "nope", tmp_path / "dst")


class TestEngineLevelRefresh:
    def test_second_engine_sees_first_engines_results(self, tmp_path):
        """Two engines share a directory; the one built first still gets
        disk hits for results the other wrote after both were opened."""
        from repro.engine import Engine
        from repro.sweep import SweepSpec

        spec = SweepSpec(
            capacities_mib=(1, 2), flows=("2D",), bandwidths=(4.0,)
        )
        early = Engine(cache=ResultCache(tmp_path))  # opened before any write
        other = Engine(cache=ResultCache(tmp_path))
        other.run(spec.jobs())
        outcome = early.run(spec.jobs())
        assert outcome.stats.failed == 0
        assert outcome.stats.cached == len(outcome.records)

    def test_cache_stats_document_matches_cli_json(self, tmp_path):
        """`/v1/cache` and `repro cache stats --json` are one code path."""
        from repro.engine import Engine
        from repro.sweep import SweepSpec

        Engine(cache=ResultCache(tmp_path)).run(
            SweepSpec(
                capacities_mib=(1,), flows=("2D",), bandwidths=(4.0,)
            ).jobs()
        )
        stats = cache_stats(tmp_path)
        assert stats["entries"] == 1
        assert stats["stores"] == 1
        for field in ("memory_hits", "disk_hits", "misses", "hit_rate",
                      "stage_entries", "bytes", "versions"):
            assert field in stats
