"""Tests for repro.kernels.matmul — simulated kernels verified vs numpy."""

import pytest

from repro.core.config import ArchParams, Flow, MemPoolConfig
from repro.kernels.matmul import (
    MatmulLayout,
    calibrate_from_simulation,
    matmul_program_blocked,
    matmul_program_simple,
    run_matmul,
)


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


class TestMatmulLayout:
    def test_default_bases_are_contiguous(self):
        layout = MatmulLayout(n=8)
        assert layout.base_a == 0
        assert layout.base_b == 8 * 8 * 4
        assert layout.base_c == 2 * 8 * 8 * 4
        assert layout.bytes_needed == 3 * 8 * 8 * 4

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            MatmulLayout(n=0)


class TestSimpleKernel:
    @pytest.mark.parametrize("n,cores", [(4, 1), (8, 4), (12, 8)])
    def test_correct(self, config, n, cores):
        run = run_matmul(config, n=n, num_cores=cores, blocked=False)
        assert run.correct

    def test_single_core(self, config):
        run = run_matmul(config, n=6, num_cores=1, blocked=False)
        assert run.correct


class TestBlockedKernel:
    @pytest.mark.parametrize("n,cores", [(4, 1), (8, 4), (16, 8), (16, 16)])
    def test_correct(self, config, n, cores):
        run = run_matmul(config, n=n, num_cores=cores, blocked=True)
        assert run.correct

    def test_odd_dimension_rejected(self):
        layout = MatmulLayout(n=7)
        with pytest.raises(ValueError):
            matmul_program_blocked(layout, num_cores=4)

    def test_blocked_beats_simple(self, config):
        simple = run_matmul(config, n=16, num_cores=8, blocked=False)
        blocked = run_matmul(config, n=16, num_cores=8, blocked=True)
        assert blocked.cycles < simple.cycles
        assert blocked.cpi_mac < simple.cpi_mac

    def test_more_cores_reduce_cycles(self, config):
        few = run_matmul(config, n=16, num_cores=2)
        many = run_matmul(config, n=16, num_cores=16)
        assert many.cycles < few.cycles

    def test_oversized_operands_rejected(self):
        small = MemPoolConfig(
            capacity_mib=1,
            flow=Flow.FLOW_2D,
            arch=ArchParams(),
        )
        with pytest.raises(ValueError):
            run_matmul(small, n=600, num_cores=4)  # 3 * 600^2 * 4 > 1 MiB


class TestPrograms:
    def test_program_lengths_reasonable(self):
        layout = MatmulLayout(n=8)
        simple = matmul_program_simple(layout, num_cores=4)
        blocked = matmul_program_blocked(layout, num_cores=4)
        assert 20 < len(simple) < 60
        assert 30 < len(blocked) < 80

    def test_rejects_nonpositive_cores(self):
        layout = MatmulLayout(n=8)
        with pytest.raises(ValueError):
            matmul_program_simple(layout, num_cores=0)
        with pytest.raises(ValueError):
            matmul_program_blocked(layout, num_cores=0)


class TestCalibration:
    def test_calibration_produces_plausible_cpi(self, config):
        params = calibrate_from_simulation(config, n=16, num_cores=8)
        # Blocking loads put the simulated CPI above the paper's optimized
        # kernel (~2.9) but it must stay within a small factor.
        assert 1.0 < params.cpi_mac < 12.0
        assert params.num_cores == 256

    def test_calibration_keeps_overhead(self, config):
        params = calibrate_from_simulation(
            config, n=8, num_cores=4, phase_overhead_cycles=5000.0
        )
        assert params.phase_overhead_cycles == 5000.0
