"""Tests for repro.engine — backends, two-tier cache, streaming engine."""

import json

import pytest

from repro.engine import (
    BACKENDS,
    Engine,
    LRUCache,
    TieredCache,
    available_backends,
    cache_clear,
    cache_gc,
    cache_stats,
    evaluate_job,
    register_backend,
    resolve_backend,
)
from repro.engine.cache import STATS_FILENAME
from repro.sweep import Job, ResultCache, ResultStore, SweepSpec

#: The paper's full 56-point grid: 4 capacities x 2 flows x 7 bandwidths.
PAPER_GRID = SweepSpec(
    bandwidths=(2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)
)

SMALL = SweepSpec(capacities_mib=(1, 8), bandwidths=(4.0, 64.0))


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert set(available_backends()) >= {"serial", "thread", "process"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("quantum")

    def test_default_resolution_follows_workers(self):
        assert type(resolve_backend(None, workers=0)).__name__ == "SerialBackend"
        assert type(resolve_backend(None, workers=1)).__name__ == "SerialBackend"
        assert type(resolve_backend(None, workers=4)).__name__ == "ProcessBackend"

    def test_instance_passthrough_and_bad_type(self):
        backend = resolve_backend("serial")
        assert resolve_backend(backend) is backend
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_backend_class_is_instantiated(self):
        from repro.engine import ThreadBackend

        backend = resolve_backend(ThreadBackend, workers=3)
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 3

    def test_engine_default_backend_honors_workers(self):
        assert type(Engine().backend).__name__ == "SerialBackend"
        assert type(Engine(workers=4).backend).__name__ == "ProcessBackend"

    def test_custom_backend_plugs_in(self):
        calls = []

        @register_backend("recording")
        class RecordingBackend:
            def __init__(self, workers=0, mp_context=None, chunksize=None):
                pass

            def run(self, evaluate, jobs):
                from repro.engine.backends import run_one

                for job in jobs:
                    calls.append(job.key)
                    yield run_one(evaluate, job)

        try:
            outcome = Engine(backend="recording").run(SMALL.jobs())
            assert outcome.stats.evaluated == len(SMALL)
            assert len(calls) == len(SMALL)
        finally:
            BACKENDS.unregister("recording")


class TestBackendEquality:
    """serial == thread == process, bit for bit, on the 56-point grid."""

    @pytest.fixture(scope="class")
    def serial_outcome(self):
        return Engine(backend="serial").run(PAPER_GRID.jobs())

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matrix_matches_serial(self, backend, serial_outcome):
        assert len(serial_outcome.records) == 56
        assert serial_outcome.stats.failed == 0
        outcome = Engine(backend=backend, workers=4).run(PAPER_GRID.jobs())
        assert outcome.stats.failed == 0
        assert [j.key for j in outcome.jobs] == [
            j.key for j in serial_outcome.jobs
        ]
        # Bit-for-bit: identical records (metrics are floats, no
        # accumulation reordering anywhere in the evaluation path).
        def strip(record):
            return {k: v for k, v in record.items() if k != "source"}

        assert [strip(r) for r in outcome.records] == [
            strip(r) for r in serial_outcome.records
        ]
        assert outcome.points() == serial_outcome.points()


class TestLRUCache:
    def test_bounded_size_evicts_lru(self):
        lru = LRUCache(maxsize=2)
        lru.put("a", {"v": 1})
        lru.put("b", {"v": 2})
        assert lru.get("a") == {"v": 1}  # refreshes "a"
        lru.put("c", {"v": 3})  # evicts "b", the least recently used
        assert len(lru) == 2
        assert "b" not in lru
        assert lru.get("a") and lru.get("c")

    def test_zero_size_disables(self):
        lru = LRUCache(maxsize=0)
        lru.put("a", {"v": 1})
        assert len(lru) == 0
        assert lru.get("a") is None

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)


class TestTieredCache:
    def test_warm_repeats_never_touch_disk(self, tmp_path):
        engine = Engine(backend="serial", cache=ResultCache(tmp_path))
        cold = engine.run(SMALL.jobs())
        assert cold.stats.evaluated == len(SMALL)
        warm = engine.run(SMALL.jobs())
        assert warm.stats.evaluated == 0
        assert warm.stats.memory_hits == len(SMALL)
        assert warm.stats.disk_hits == 0

    def test_disk_tier_promotes_into_memory(self, tmp_path):
        cache = ResultCache(tmp_path)
        Engine(backend="serial", cache=cache).run(SMALL.jobs())
        # Fresh engine, same disk: first pass hits disk, second memory.
        engine = Engine(backend="serial", cache=ResultCache(tmp_path))
        first = engine.run(SMALL.jobs())
        assert first.stats.disk_hits == len(SMALL)
        second = engine.run(SMALL.jobs())
        assert second.stats.memory_hits == len(SMALL)
        assert second.stats.disk_hits == 0

    def test_memory_only_engine_still_dedups(self):
        engine = Engine(backend="serial", cache=None)
        assert engine.run(SMALL.jobs()).stats.evaluated == len(SMALL)
        assert engine.run(SMALL.jobs()).stats.evaluated == 0

    def test_lru_bound_applies_to_engine_tier(self):
        engine = Engine(backend="serial", cache=None, lru_size=2)
        engine.run(SMALL.jobs())  # 8 points through a 2-entry LRU
        assert len(engine.cache.memory) == 2

    def test_version_keyed_invalidation(self, tmp_path, monkeypatch):
        engine = Engine(backend="serial", cache=ResultCache(tmp_path))
        jobs = list(SMALL.jobs())
        assert engine.run(jobs).stats.evaluated == len(jobs)
        # A model-version bump changes every content address, so both
        # tiers miss: nothing stale is ever served.
        monkeypatch.setattr(
            "repro.api.scenario.CODE_MODEL_VERSION", "999.test"
        )
        bumped = [Job.from_params(j.params()) for j in jobs]
        assert bumped[0].key != jobs[0].key
        again = engine.run(bumped)
        assert again.stats.evaluated == len(jobs)
        assert again.stats.cached == 0

    def test_put_requires_key(self):
        with pytest.raises(ValueError):
            TieredCache().put({"status": "ok"})


def _fail_on_8mib(job):
    """Deterministically fail a subset of jobs (picklable, module-level)."""
    if job.capacity_mib == 8:
        raise RuntimeError("injected failure")
    return evaluate_job(job)


class TestEngine:
    def test_accepts_scenarios_and_jobs(self):
        from repro.api import Scenario

        scenario = Scenario(capacity_mib=1, flow="3D")
        job = Job.from_scenario(scenario)
        outcome = Engine().run([scenario, job])
        assert outcome.stats.total == 1  # same content address
        assert outcome.records[0]["key"] == job.key

    def test_rejects_other_inputs(self):
        with pytest.raises(TypeError):
            Engine().run(["MemPool-3D-4MiB"])

    def test_run_many_streams_with_error_capture(self):
        engine = Engine(backend="serial", evaluate=_fail_on_8mib)
        seen = list(engine.run_many(SMALL.jobs()))
        assert len(seen) == len(SMALL)
        by_status = {r["status"] for _, r in seen}
        assert by_status == {"ok", "error"}
        failures = [r for _, r in seen if r["status"] != "ok"]
        assert len(failures) == 4  # 8 MiB x 2 flows x 2 bandwidths
        assert all("injected failure" in r["error"] for r in failures)

    def test_failures_not_cached_and_retried(self, tmp_path):
        cache = ResultCache(tmp_path)
        broken = Engine(
            backend="serial", cache=cache, evaluate=_fail_on_8mib
        ).run(SMALL.jobs())
        assert broken.stats.failed == 4
        healed = Engine(backend="serial", cache=cache).run(SMALL.jobs())
        assert healed.stats.cached == 4
        assert healed.stats.evaluated == 4
        assert healed.stats.failed == 0

    def test_on_result_counts_and_sources(self, tmp_path):
        cache = ResultCache(tmp_path)
        Engine(backend="serial", cache=cache).run(SMALL.jobs())
        events = []
        engine = Engine(
            backend="serial",
            cache=ResultCache(tmp_path),
            on_result=lambda done, total, r: events.append(
                (done, total, r["source"])
            ),
        )
        engine.run(SMALL.jobs())
        assert [e[0] for e in events] == list(range(1, len(SMALL) + 1))
        assert {e[1] for e in events} == {len(SMALL)}
        assert {e[2] for e in events} == {"cache"}

    def test_store_receives_every_record(self, tmp_path):
        store = ResultStore(tmp_path / "log.jsonl")
        engine = Engine(backend="serial", store=store)
        engine.run(SMALL.jobs())
        engine.run(SMALL.jobs())
        records = store.load()
        assert len(records) == 2 * len(SMALL)
        assert {r["source"] for r in records} == {"evaluated", "cache"}

    def test_records_carry_model_version(self):
        from repro.api.scenario import CODE_MODEL_VERSION

        outcome = Engine().run([Job(capacity_mib=1, flow="2D")])
        assert outcome.records[0]["model_version"] == CODE_MODEL_VERSION

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            Engine(workers=-1)

    def test_sweep_executor_honors_post_construction_mutation(self):
        # Legacy shim contract: attributes are read at run() time.
        from repro.sweep import SweepExecutor

        executor = SweepExecutor()
        executor.evaluate = _fail_on_8mib
        outcome = executor.run(SMALL)
        assert outcome.stats.failed == 4


class TestCacheMaintenance:
    def test_stats_counts_entries_bytes_and_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = Engine(backend="serial", cache=cache)
        engine.run(SMALL.jobs())
        engine.run(SMALL.jobs())  # memory hits, flushed to the sidecar
        stats = cache_stats(tmp_path)
        assert stats["entries"] == len(SMALL)
        assert stats["bytes"] > 0
        assert stats["memory_hits"] == len(SMALL)
        assert stats["misses"] == len(SMALL)
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_stats_on_empty_cache(self, tmp_path):
        stats = cache_stats(tmp_path / "fresh")
        assert stats["entries"] == 0
        assert stats["hit_rate"] is None

    def test_maintenance_is_read_only_on_missing_cache(self, tmp_path):
        # A mistyped --cache-dir must never leave anything behind.
        missing = tmp_path / "typo-dir"
        assert cache_stats(missing)["entries"] == 0
        assert cache_clear(missing) == 0
        assert cache_gc(missing) == (0, 0)
        assert not missing.exists()

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        Engine(backend="serial", cache=cache).run(SMALL.jobs())
        assert cache_clear(tmp_path) == len(SMALL)
        assert len(ResultCache(tmp_path)) == 0
        assert not (tmp_path / STATS_FILENAME).exists()

    def test_gc_prunes_old_versions(self, tmp_path):
        from repro.api.scenario import CODE_MODEL_VERSION

        cache = ResultCache(tmp_path)
        Engine(backend="serial", cache=cache).run(SMALL.jobs())
        stale = {
            "key": "deadbeef",
            "job": {},
            "model_version": "1.obsolete",
            "status": "ok",
            "metrics": {},
        }
        cache.put(stale)
        kept, pruned = cache_gc(tmp_path)
        assert (kept, pruned) == (len(SMALL), 1)
        survivor = ResultCache(tmp_path)
        assert len(survivor) == len(SMALL)
        assert survivor.get("deadbeef") is None
        assert all(
            survivor.get(k)["model_version"] == CODE_MODEL_VERSION
            for k in survivor.keys()
        )

    def test_gc_keeps_requested_version_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        Engine(backend="serial", cache=cache).run(SMALL.jobs())
        kept, pruned = cache_gc(tmp_path, keep_version="1.obsolete")
        assert kept == 0
        assert pruned == len(SMALL)

    def test_gc_classifies_legacy_records_by_key_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        Engine(backend="serial", cache=cache).run(SMALL.jobs())
        # Strip the version stamps: gc must fall back to recomputing
        # keys from the stored job parameters.
        legacy = [
            {k: v for k, v in cache.get(key).items() if k != "model_version"}
            for key in cache.keys()
        ]
        cache.path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in legacy)
        )
        kept, pruned = cache_gc(tmp_path)
        assert (kept, pruned) == (len(SMALL), 0)
