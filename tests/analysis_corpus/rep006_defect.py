"""REP006 corpus defect: unpicklable callables crossing the boundary."""

from concurrent.futures import ProcessPoolExecutor

from repro.api import register_flow


def run_all(jobs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda job=job: job * 2) for job in jobs]

        def helper(job):
            return job * 3

        futures += [pool.submit(helper, job) for job in jobs]
        return [f.result() for f in futures]


def install_flow():
    @register_flow("corpus-3d-variant")
    def flow_fn(scenario):
        return {}

    return flow_fn
