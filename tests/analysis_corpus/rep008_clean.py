"""REP008 corpus clean twin: keys derive only from cycles_dict fields."""

import json

_KEY_FIELDS = ("workload", "capacity_mib", "num_cores", "word_bytes", "arch")


def batch_compatibility_key(scenario):
    # The sanctioned surface: a subset of cycles_dict(), nothing wider.
    fields = scenario.cycles_dict()
    return json.dumps(
        {name: fields.get(name) for name in _KEY_FIELDS}, sort_keys=True
    )


def render_label(scenario):
    # Outside a compatibility-key function, physical fields are fine.
    return f"{scenario.workload}@{scenario.flow}"
