"""REP009 corpus clean twin: predictors from closed-form arithmetic only."""

import math

from repro.api.registry import register_predictor


@register_predictor("tiny-dotp", error_bound=0.05,
                    calibration_dims=(512, 1536, 4096))
def predict_tiny_dotp(scenario):
    # Pure tier-0: cycles-stage fields and constants, nothing else.
    n = scenario.matrix_dim
    cores = max(1, min(scenario.num_cores, n))
    trips = math.ceil(n / cores)
    return trips * 11.0


def render_banner(scenario):
    # Outside a predictor, physical-stage fields are fair game.
    return f"{scenario.workload} via {scenario.flow}"
