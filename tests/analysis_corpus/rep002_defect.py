"""REP002 corpus defect: raw writes to cache data files.

Both shapes the rule catches: a plain ``open(..., "w")`` on a named
cache file, and a direct ``atomic_append`` call with no lock held.
"""

import json

from repro.sweep.cache import atomic_append


def clobber_results(root):
    record = {"key": "abc", "metrics": {}}
    with open(root / "results.jsonl", "w") as fh:  # truncates racers' records
        fh.write(json.dumps(record) + "\n")


def sneaky_append(path, record):
    atomic_append(path, json.dumps(record) + "\n")
