"""REP007 corpus clean twin: literal, well-formed, collision-free names."""

from repro.obs import metrics, trace

REQUESTS = metrics.counter("corpus_demo_requests_total", "demo requests")
DEPTH = metrics.gauge("corpus_demo_queue_depth", "demo queue depth")
LATENCY = metrics.histogram("corpus_demo_seconds", "demo latency")


def traced(stage):
    # Variants belong in attributes; the span name stays a literal.
    with trace.span("corpus.stage", stage=stage):
        REQUESTS.inc()
        return stage
