"""REP008 corpus defect: compatibility keys built from non-cycles fields."""

import json


def batch_compatibility_key(scenario):
    # Reads .flow — a physical-stage field: flow variants that share a
    # cycles_key split into different batches and re-simulate.
    return f"{scenario.workload}:{scenario.num_cores}:{scenario.flow}"


def wide_compatibility_key(scenario):
    # cache_dict() includes flow and the frequency target wholesale.
    return json.dumps(scenario.cache_dict(), sort_keys=True)


def frequency_compatibility_key(scenario):
    # The frequency target never changes a cycle count.
    return (scenario.workload, scenario.target_frequency_mhz)
