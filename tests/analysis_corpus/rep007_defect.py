"""REP007 corpus defect: non-literal, malformed, and kind-colliding names."""

from repro.obs import metrics, trace

PREFIX = "corpus_demo"


def traced(stage):
    # Non-literal span name: unauditable, and a typo mints a new series.
    with trace.span("stage." + stage):
        return stage


def count(suffix):
    # Non-literal metric name: same problem, worse — it hits dashboards.
    return metrics.counter(PREFIX + suffix, "demo counter")


def malformed():
    # Fails the Prometheus identifier grammar at scrape time.
    return metrics.counter("corpus-demo.requests", "demo counter")


def as_counter():
    return metrics.counter("corpus_demo_value", "demo value")


def as_gauge():
    # Kind collision with as_counter: TypeError, but only in the import
    # order that happens to create both.
    return metrics.gauge("corpus_demo_value", "demo value")
