"""REP006 corpus clean twin: module-level callables pickle by reference."""

from concurrent.futures import ProcessPoolExecutor

from repro.api import register_flow


def double(job):
    return job * 2


@register_flow("corpus-3d-variant")
def flow_fn(scenario):
    return {}


def run_all(jobs):
    with ProcessPoolExecutor() as pool:
        return [f.result() for f in [pool.submit(double, j) for j in jobs]]
