"""REP002 corpus clean twin: cache traffic through the guarded helpers."""

from repro.sweep.cache import ResultCache


def store_result(root, record):
    ResultCache(root).put(record)


def read_results(root):
    # Reading a cache file is fine; only writes are disciplined.
    path = root / "results.jsonl"
    with open(path, "rb") as fh:
        return fh.read()
