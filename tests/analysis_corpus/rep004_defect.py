"""REP004 corpus defect: nondeterminism leaking into a cache key."""

import hashlib
import random
import time


def cache_key(params: dict) -> str:
    blob = f"{sorted(params.items())}-{time.time()}-{id(params)}"
    if random.random() < 0.5:  # unseeded module-level RNG
        blob += "salt"
    return hashlib.sha256(blob.encode()).hexdigest()
