"""REP001 corpus clean twin: every field reaches a stage key.

``voltage_mv`` is part of ``physical_dict``, so dropping it from
``cycles_dict`` is sound stage factoring, not key drift.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class MiniScenario:
    capacity_mib: int = 1
    flow: str = "2D"
    voltage_mv: int = 800
    objective: str = "edp"

    def to_dict(self):
        return {
            "capacity_mib": self.capacity_mib,
            "flow": self.flow,
            "voltage_mv": self.voltage_mv,
            "objective": self.objective,
        }

    def cache_dict(self):
        data = self.to_dict()
        del data["objective"]
        return data

    def physical_dict(self):
        return {
            "flow": self.flow,
            "capacity_mib": self.capacity_mib,
            "voltage_mv": self.voltage_mv,
        }

    def cycles_dict(self):
        data = self.cache_dict()
        del data["flow"]
        del data["voltage_mv"]
        return data
