"""REP005 corpus clean twin: unique names, module-level registration."""

from repro.api import register_workload


@register_workload("corpus-fft")
def fft_v1(scenario):
    return 1.0


@register_workload("corpus-ifft")
def ifft_v1(scenario):
    return 2.0
