"""REP003 corpus clean twin: async-native equivalents."""

import asyncio


def _read(path):
    # Sync I/O is fine here: this def runs inside asyncio.to_thread.
    with open(path) as fh:
        return fh.read()


async def handler(path):
    await asyncio.sleep(0.5)
    proc = await asyncio.create_subprocess_exec(
        "ls", stdout=asyncio.subprocess.PIPE
    )
    await proc.wait()
    data = await asyncio.to_thread(_read, path)
    return proc.returncode, data
