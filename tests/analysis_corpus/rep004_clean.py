"""REP004 corpus clean twin: keys are pure functions of their inputs."""

import hashlib
import json


def cache_key(params: dict) -> str:
    blob = json.dumps(params, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
