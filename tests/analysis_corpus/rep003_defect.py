"""REP003 corpus defect: blocking calls on the event loop."""

import subprocess
import time


async def handler(path):
    time.sleep(0.5)  # stalls every connected client
    proc = subprocess.run(["ls"], capture_output=True)
    with open(path) as fh:  # sync disk read on the loop
        data = fh.read()
    return proc.returncode, data
