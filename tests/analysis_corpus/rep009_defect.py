"""REP009 corpus defect: predictors that are not pure tier-0."""

import time

from repro.api.registry import register_predictor
from repro.simulator.fast import FastEngine  # module-level simulator import


@register_predictor("bad-dotp", error_bound=0.05, calibration_dims=(512,))
def predict_bad_dotp(scenario):
    # Simulating inside a predictor turns the instant tier into tier-1.
    from repro.simulator.engine import run_cluster

    cluster = scenario.build_cluster()
    result = run_cluster(cluster)
    return result.cycles


@register_predictor("bad-axpy", error_bound=0.05, calibration_dims=(512,))
def predict_bad_axpy(scenario):
    # Wall-clock jitter makes calibration residuals unreproducible.
    jitter = time.time() % 1.0
    return scenario.matrix_dim * 12.0 + jitter


@register_predictor("bad-conv", error_bound=0.05, calibration_dims=(18,))
def predict_bad_conv(scenario):
    # flow is a physical-stage field; cache_dict() is a wider view than
    # cycles_dict() — both escape the calibration arch-class.
    scale = 2.0 if scenario.flow == "3D" else 1.0
    return len(scenario.cache_dict()) * scale


_ = FastEngine
