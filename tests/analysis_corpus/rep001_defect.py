"""REP001 corpus defect: a field that reaches no cache key.

``voltage_mv`` is deleted from ``cycles_dict`` without being added to
``physical_dict`` — two scenarios differing only in voltage would share
every stage-cache entry.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class MiniScenario:
    capacity_mib: int = 1
    flow: str = "2D"
    voltage_mv: int = 800
    objective: str = "edp"

    def to_dict(self):
        return {
            "capacity_mib": self.capacity_mib,
            "flow": self.flow,
            "voltage_mv": self.voltage_mv,
            "objective": self.objective,
        }

    def cache_dict(self):
        data = self.to_dict()
        del data["objective"]
        return data

    def physical_dict(self):
        return {"flow": self.flow, "capacity_mib": self.capacity_mib}

    def cycles_dict(self):
        data = self.cache_dict()
        del data["flow"]
        del data["voltage_mv"]  # dropped here, never added to physical_dict
        return data
