"""REP005 corpus defect: colliding and import-invisible registrations."""

from repro.api import register_workload


@register_workload("corpus-fft")
def fft_v1(scenario):
    return 1.0


@register_workload("corpus-fft")  # duplicate name: rejected at import
def fft_v2(scenario):
    return 2.0


def install_plugins():
    # Runs only if something calls install_plugins(): workers spawned
    # earlier (and the lazy repro.* surface) never see it.
    register_workload("corpus-late")(len)
