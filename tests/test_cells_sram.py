"""Tests for repro.physical.cells and repro.physical.sram."""

import pytest

from repro.physical.cells import (
    CELL_LIBRARY,
    CellInventory,
    CellKind,
    inventory_from_kge,
)
from repro.physical.sram import (
    SRAMCompiler,
    icache_bank_macro,
    spm_bank_macro,
)
from repro.physical.technology import DEFAULT_TECHNOLOGY


class TestCellInventory:
    def test_totals(self):
        inv = CellInventory(combinational=10, registers=5, buffers=3, clock=2)
        assert inv.total == 20

    def test_area_matches_library(self):
        inv = CellInventory(combinational=10)
        assert inv.area_ge() == pytest.approx(10 * CELL_LIBRARY[CellKind.COMBINATIONAL].area_ge)

    def test_buffer_fraction(self):
        inv = CellInventory(combinational=1, buffers=3)
        assert inv.buffer_fraction() == pytest.approx(0.75)
        assert CellInventory().buffer_fraction() == 0.0

    def test_with_buffers(self):
        inv = CellInventory(combinational=5, buffers=1)
        updated = inv.with_buffers(100)
        assert updated.buffers == 100
        assert updated.combinational == 5

    def test_scaled_and_merged(self):
        inv = CellInventory(combinational=10, registers=4)
        assert inv.scaled(0.5).combinational == 5
        merged = inv.merged(CellInventory(combinational=1, clock=2))
        assert merged.combinational == 11
        assert merged.clock == 2

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            CellInventory(combinational=-1)
        with pytest.raises(ValueError):
            CellInventory(registers=1).scaled(-2)


class TestInventoryFromKge:
    def test_area_roundtrip(self):
        inv = inventory_from_kge(100.0)
        assert inv.area_ge() == pytest.approx(100_000, rel=0.02)

    def test_fraction_control(self):
        heavy = inventory_from_kge(100.0, register_fraction=0.5)
        light = inventory_from_kge(100.0, register_fraction=0.05)
        assert heavy.registers > light.registers

    def test_rejects_overcommitted_fractions(self):
        with pytest.raises(ValueError):
            inventory_from_kge(10.0, register_fraction=0.8, buffer_fraction=0.3)

    def test_rejects_negative_kge(self):
        with pytest.raises(ValueError):
            inventory_from_kge(-1.0)


class TestSRAMCompiler:
    @pytest.fixture
    def compiler(self):
        return SRAMCompiler()

    def test_area_monotone_in_capacity(self, compiler):
        areas = [compiler.compile(words).area_um2 for words in (256, 512, 1024, 2048)]
        assert areas == sorted(areas)

    def test_access_time_monotone(self, compiler):
        times = [compiler.compile(w).access_time_ps for w in (256, 1024, 2048)]
        assert times == sorted(times)

    def test_energy_monotone(self, compiler):
        e = [compiler.compile(w).read_energy_pj for w in (256, 1024, 2048)]
        assert e == sorted(e)
        macro = compiler.compile(256)
        assert macro.write_energy_pj > macro.read_energy_pj

    def test_capacity_accessors(self, compiler):
        macro = compiler.compile(256, word_bits=32)
        assert macro.capacity_bits == 8192
        assert macro.capacity_bytes == 1024

    def test_sub_linear_area_growth(self, compiler):
        # Periphery amortizes: doubling capacity less than doubles area.
        small = compiler.compile(256).area_um2
        big = compiler.compile(512).area_um2
        assert big < 2 * small

    def test_rejects_non_power_of_two(self, compiler):
        with pytest.raises(ValueError):
            compiler.compile(100)

    def test_rejects_nonpositive(self, compiler):
        with pytest.raises(ValueError):
            compiler.compile(0)
        with pytest.raises(ValueError):
            compiler.compile(256, word_bits=0)

    def test_compile_bytes(self, compiler):
        macro = compiler.compile_bytes(1024)
        assert macro.words == 256
        with pytest.raises(ValueError):
            compiler.compile_bytes(1023)

    def test_aspect_is_landscape(self, compiler):
        macro = compiler.compile(1024)
        assert macro.width_um > macro.height_um

    def test_efficiency_interpolation_monotone(self, compiler):
        effs = [compiler._efficiency(1 << b) for b in range(11, 21)]
        assert effs == sorted(effs)
        assert compiler._efficiency(1 << 8) == compiler._efficiency(1 << 11)
        assert compiler._efficiency(1 << 25) == compiler._efficiency(1 << 20)


class TestBankMacros:
    @pytest.mark.parametrize("cap,bank_bytes", [(1, 1024), (2, 2048), (4, 4096), (8, 8192)])
    def test_spm_bank_capacity(self, cap, bank_bytes):
        macro = spm_bank_macro(cap)
        assert macro.capacity_bytes == bank_bytes
        assert macro.word_bits == 32

    def test_icache_bank(self):
        macro = icache_bank_macro()
        assert macro.capacity_bytes == 512

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            spm_bank_macro(0)
        with pytest.raises(ValueError):
            spm_bank_macro(1, banks_per_tile=7)  # does not divide

    def test_access_time_drives_3d_frequency_drop(self):
        # The paper attributes the 3D 1->2 MiB frequency drop to SRAM delay.
        assert spm_bank_macro(2).access_time_ps > spm_bank_macro(1).access_time_ps

    def test_technology_accessor(self):
        assert SRAMCompiler().technology is DEFAULT_TECHNOLOGY
