"""Tests for the public package API (subpackage exports)."""

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize(
    "module",
    ["repro.core", "repro.arch", "repro.interconnect", "repro.simulator",
     "repro.kernels", "repro.physical", "repro.sweep", "repro.api",
     "repro.engine", "repro.search", "repro.service", "repro.client",
     "repro.analysis"],
)
def test_subpackage_all_resolves(module):
    import importlib

    mod = importlib.import_module(module)
    assert mod.__all__
    for name in mod.__all__:
        assert getattr(mod, name, None) is not None, f"{module}.{name}"


class TestEndToEndThroughPublicApi:
    def test_implement_and_measure(self):
        from repro.core import config_by_name, normalize
        from repro.physical import implement_group

        base = implement_group(config_by_name("MemPool-2D-1MiB")).to_group_result()
        other = implement_group(config_by_name("MemPool-3D-1MiB")).to_group_result()
        n = normalize(other, base)
        assert n.footprint < 0.75
        assert n.frequency > 1.0

    def test_simulate_through_public_api(self):
        from repro.core import MemPoolConfig, Flow
        from repro.kernels import run_matmul

        run = run_matmul(MemPoolConfig(1, Flow.FLOW_2D), n=8, num_cores=4)
        assert run.correct

    def test_phase_model_through_public_api(self):
        from repro.kernels import matmul_cycles, paper_tiling
        from repro.simulator import OffChipMemory

        b = matmul_cycles(paper_tiling(1), OffChipMemory(bandwidth_bytes_per_cycle=16))
        assert b.total > 0

    def test_facade_through_top_level_package(self):
        import repro

        result = repro.run(repro.Scenario(capacity_mib=1, flow="3D"))
        assert isinstance(result, repro.RunResult)
        assert result.name == "MemPool-3D-1MiB"
        assert result.objective_value() == result.edp

    def test_registry_lookups_through_top_level_package(self):
        import repro

        assert "3D" in repro.available_flows()
        assert "matmul" in repro.available_workloads()
        assert "edp" in repro.available_objectives()
        key, higher_better = repro.get_objective("performance")
        assert higher_better is True
        assert callable(repro.get_flow("2D"))
        assert callable(repro.get_workload("matmul"))

    def test_search_facade_through_top_level_package(self):
        import repro

        assert "evolutionary" in repro.available_strategies()
        space = repro.paper_space()
        assert space.cardinality == 56
        assert callable(repro.get_strategy("random"))

    def test_analysis_facade_through_top_level_package(self):
        import repro

        assert "REP001" in repro.available_lints()
        report = repro.analyze_paths([])
        assert report.findings == [] and report.files_checked == 0

    def test_legacy_import_paths_still_work(self):
        from repro.core.explorer import OBJECTIVES, evaluate_point
        from repro.sweep import CODE_MODEL_VERSION, Job

        assert "edp" in OBJECTIVES
        assert callable(evaluate_point)
        assert Job(capacity_mib=1, flow="2D").key
        assert CODE_MODEL_VERSION.startswith("2.")
