"""Tests for repro.analytic — the calibrated tier-0 prediction tier.

Covers the full contract: calibration drift (re-fit from scratch must
honour every declared error bound), stale-artifact refusal, cache-key
separation between tiers, the pipeline/engine/CLI wiring, the analytic
counters, and the generalized successive-halving screen.
"""

import json

import pytest

from repro.__main__ import main
from repro.analytic import (
    CalibrationStore,
    calibrate,
    ensure_calibrated,
    predict_cycles,
)
from repro.analytic.store import CalibrationRecord, _reset_stores
from repro.analytic.tier import analytic_engine
from repro.api import Pipeline, Scenario
from repro.api.registry import PREDICTORS, available_predictors
from repro.engine import Engine
from repro.engine.cache import cache_stats
from repro.simulator.engine import set_default_sim_engine
from repro.sweep import ResultCache

#: Valid starting dims per workload (calibrate() swaps in its own dims).
SEED_DIMS = {
    "matmul": 16, "dotp": 512, "axpy": 512,
    "conv2d": 18, "matvec": 56, "stencil5": 18,
}

BASE = Scenario(capacity_mib=1, flow="2D", bandwidth=16.0,
                matrix_dim=512, workload="dotp")


@pytest.fixture(autouse=True)
def isolated_stores():
    """Each test starts with empty process-wide calibration stores."""
    _reset_stores()
    yield
    _reset_stores()


@pytest.fixture
def plain_workload():
    """A registered workload with no predictor (tier-0 must fall back)."""
    from repro.api.registry import WORKLOADS, register_workload

    @register_workload("plainw")
    def plainw(scenario):
        return float(scenario.matrix_dim) * 100.0

    yield "plainw"
    WORKLOADS.unregister("plainw")


@pytest.fixture(scope="module")
def fitted():
    """Every built-in predictor re-fitted from scratch (the drift check)."""
    records = {}
    for workload in available_predictors():
        scenario = BASE.replace(
            workload=workload, matrix_dim=SEED_DIMS[workload], tile_size=None
        )
        records[workload] = calibrate(workload, scenario)
    return records


class TestCalibrationDrift:
    def test_every_predictor_refits_within_declared_bound(self, fitted):
        """The CI drift gate: a from-scratch fit must honour its bound."""
        for workload, record in fitted.items():
            assert record.within_bound, (
                f"{workload}: achieved {record.achieved_error:.3f} > "
                f"declared {record.error_bound:.3f}"
            )
            assert record.achieved_error == pytest.approx(
                max(abs(record.residuals[str(d)]) for d in record.probe_dims)
            )

    def test_residual_summary_covers_every_dim(self, fitted):
        for record in fitted.values():
            for dim in (*record.calibration_dims, *record.probe_dims):
                assert str(dim) in record.residuals

    def test_matvec_declares_contention_limited_bound(self, fitted):
        # matvec's shared-x bank contention is bank-alignment jagged;
        # its wider bound (and nonzero contention regressor) is the
        # documented contract, not an accident.
        record = fitted["matvec"]
        assert record.error_bound == pytest.approx(0.15)
        assert record.contention_factor != 0.0
        for workload, other in fitted.items():
            if workload != "matvec":
                assert other.error_bound <= 0.05


class TestStaleArtifacts:
    def test_version_drift_is_refused(self, fitted):
        record = fitted["dotp"]
        stale = CalibrationRecord.from_json(
            {**record.to_json(), "model_version": "0.0-ancient"}
        )
        store = CalibrationStore(None)
        store.inject(stale)
        assert store.get(stale.key) is None  # refused, not served

    def test_doctored_content_is_refused(self, fitted):
        record = fitted["dotp"]
        doctored = CalibrationRecord.from_json(
            {**record.to_json(), "calibration_dims": [3, 5, 7]}
        )
        assert doctored.is_stale(record.model_version)
        store = CalibrationStore(None)
        store.inject(doctored)
        assert store.get(doctored.key) is None

    def test_stale_record_triggers_refit_not_silent_use(self, fitted):
        record = fitted["dotp"]
        stale = CalibrationRecord.from_json(
            {**record.to_json(), "model_version": "0.0-ancient",
             "factor": 1e9}
        )
        store = CalibrationStore(None)
        store.inject(stale)
        scenario = BASE.replace(workload="dotp", tile_size=None)
        fresh, refitted = ensure_calibrated("dotp", scenario, store)
        assert refitted
        assert fresh.model_version != "0.0-ancient"
        assert fresh.factor != pytest.approx(1e9)
        # The refit shadows the stale line for later lookups.
        again, refitted_again = ensure_calibrated("dotp", scenario, store)
        assert not refitted_again
        assert again.factor == pytest.approx(fresh.factor)

    def test_store_roundtrips_records_on_disk(self, tmp_path, fitted):
        store = CalibrationStore(tmp_path)
        store.put(fitted["dotp"])
        reloaded = CalibrationStore(tmp_path)
        record = reloaded.get(fitted["dotp"].key)
        assert record is not None
        assert record.factor == pytest.approx(fitted["dotp"].factor)
        # Torn trailing line (a crashed writer) is skipped, not fatal.
        with (tmp_path / CalibrationStore.FILENAME).open("a") as fh:
            fh.write('{"key": "torn')
        assert CalibrationStore(tmp_path).get(fitted["dotp"].key) is not None


class TestPredictionAccuracy:
    @pytest.mark.parametrize("workload,dim", [("dotp", 1024), ("axpy", 640)])
    def test_prediction_matches_fast_engine_within_bound(self, workload, dim):
        from repro.api.registry import WORKLOADS

        scenario = BASE.replace(workload=workload, matrix_dim=dim,
                                tile_size=None)
        with analytic_engine():
            predicted = predict_cycles(scenario)
        assert predicted is not None
        measured = float(WORKLOADS.get(workload)(scenario))
        bound = PREDICTORS.get(workload).error_bound
        assert abs(predicted - measured) / measured <= bound

    def test_workload_without_predictor_falls_back(self, plain_workload):
        scenario = BASE.replace(workload=plain_workload, matrix_dim=512,
                                tile_size=None)
        assert predict_cycles(scenario) is None


class TestKeySeparation:
    def test_marker_present_only_under_analytic_mode(self):
        assert "evaluation_tier" not in BASE.cache_dict()
        with analytic_engine():
            assert BASE.cache_dict()["evaluation_tier"] == "analytic"
        assert "evaluation_tier" not in BASE.cache_dict()

    def test_cache_and_cycles_keys_differ_across_tiers(self):
        default_cache, default_cycles = BASE.cache_key, BASE.cycles_key
        with analytic_engine():
            assert BASE.cache_key != default_cache
            assert BASE.cycles_key != default_cycles
        # Leaving the scope restores the byte-identical default keys.
        assert BASE.cache_key == default_cache
        assert BASE.cycles_key == default_cycles

    def test_workloads_without_predictor_keep_default_keys(
        self, plain_workload
    ):
        scenario = BASE.replace(workload=plain_workload, matrix_dim=512,
                                tile_size=None)
        default = scenario.cache_key
        with analytic_engine():
            assert scenario.cache_key == default


class TestPipelineWiring:
    def test_analytic_engine_param_serves_predictions(self):
        scenario = BASE.replace(matrix_dim=1280, tile_size=None)
        tier1 = Pipeline().run(scenario)
        tier0 = Pipeline(engine="analytic").run(scenario)
        with analytic_engine():
            predicted = predict_cycles(scenario)
        assert tier0.cycles == pytest.approx(predicted)  # served tier-0
        assert abs(tier0.cycles - tier1.cycles) / tier1.cycles <= 0.05
        # Physical metrics come from the same implement stage either way.
        assert tier0.footprint_um2 == tier1.footprint_um2

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Pipeline(engine="psychic")

    def test_global_default_engine_routes_to_tier0(self):
        scenario = BASE.replace(matrix_dim=2048, tile_size=None)
        expected = Pipeline(engine="analytic").run(scenario).cycles
        previous = set_default_sim_engine("analytic")
        try:
            assert Pipeline().run(scenario).cycles == expected
        finally:
            set_default_sim_engine(previous)

    def test_run_cluster_analytic_falls_back_to_fast(self):
        from repro.core.config import config_by_name
        from repro.kernels.workloads import run_dotp

        run = run_dotp(config_by_name("MemPool-2D-1MiB"), 64, 4,
                       sim_engine="analytic")
        assert run.correct


class TestEngineTier0:
    def test_run_many_end_to_end_with_counters(self, tmp_path):
        scenarios = [
            BASE.replace(matrix_dim=dim, bandwidth=bw, tile_size=None)
            for dim in (512, 1024)
            for bw in (8.0, 32.0)
        ]
        previous = set_default_sim_engine("analytic")
        try:
            engine = Engine(backend="serial", cache=ResultCache(tmp_path))
            outcome = engine.run(scenarios)
        finally:
            set_default_sim_engine(previous)
        assert outcome.stats.failed == 0
        assert len(outcome.ok_records) == 4
        assert (tmp_path / CalibrationStore.FILENAME).exists()
        stats = cache_stats(tmp_path)
        assert stats["analytic_predictions"] >= 4
        assert stats["analytic_calibrations"] >= 1
        assert stats["calibration_entries"] >= 1

    def test_tier_records_never_collide_with_tier1(self, tmp_path):
        scenario = BASE.replace(matrix_dim=1024, tile_size=None)
        cache = ResultCache(tmp_path)
        Engine(backend="serial", cache=cache).run([scenario])
        previous = set_default_sim_engine("analytic")
        try:
            outcome = Engine(backend="serial",
                             cache=ResultCache(tmp_path)).run([scenario])
        finally:
            set_default_sim_engine(previous)
        # The analytic run must not be served from the tier-1 record.
        assert outcome.stats.evaluated == 1


class TestSuccessiveHalvingScreen:
    def _strategy(self, space, **options):
        from repro.search import STRATEGIES

        return STRATEGIES.get("successive-halving")(
            space,
            objectives=(("edp", lambda p: p.edp, False),),
            seed=0,
            **options,
        )

    def test_screen_ranking_matches_brute_force_predictor_ranking(self):
        from repro.search import Choice, SearchSpace

        space = SearchSpace(
            (Choice("capacity_mib", (1, 2, 4, 8)),
             Choice("bandwidth", (4.0, 16.0, 64.0))),
            flow="2D", workload="dotp", matrix_dim=512,
        )
        strategy = self._strategy(space)
        grid = [
            {"capacity_mib": c, "bandwidth": b}
            for c in (1, 2, 4, 8) for b in (4.0, 16.0, 64.0)
        ]
        screened = [strategy._proxy_costs(v)[0] for v in grid]
        brute = [
            Pipeline(engine="analytic").run(space.scenario(v)).edp
            for v in grid
        ]
        ranked_by_screen = sorted(range(len(grid)), key=lambda i: screened[i])
        ranked_by_brute = sorted(range(len(grid)), key=lambda i: brute[i])
        assert ranked_by_screen == ranked_by_brute

    def test_non_matmul_search_recovers_grid_pareto_best(self):
        from repro.search import Choice, Searcher, SearchSpace

        axes = (Choice("capacity_mib", (1, 2, 4, 8)),
                Choice("bandwidth", (4.0, 16.0, 64.0)))
        space = SearchSpace(axes, flow="2D", workload="dotp", matrix_dim=512)
        grid_best = min(
            Pipeline().run(space.scenario(
                {"capacity_mib": c, "bandwidth": b}
            )).edp
            for c in (1, 2, 4, 8) for b in (4.0, 16.0, 64.0)
        )
        outcome = Searcher(
            space, strategy="successive-halving", budget=9,
            objectives=("edp",), seed=0,
        ).run()
        found = min(c.objectives["edp"] for c in outcome.candidates
                    if c.objectives)
        assert found == pytest.approx(grid_best)

    def test_workload_without_predictor_screens_via_matmul_proxy(
        self, plain_workload
    ):
        from repro.search import paper_space

        strategy = self._strategy(paper_space(workload=plain_workload))
        costs = strategy._proxy_costs(
            {"capacity_mib": 1, "flow": "2D", "bandwidth": 16.0}
        )
        assert costs is not None and costs[0] > 0

    def test_memo_invalidated_when_predictor_registry_changes(self):
        from repro.api.registry import register_predictor
        from repro.search import paper_space

        strategy = self._strategy(paper_space(workload="dotp",
                                              matrix_dim=512))
        values = {"capacity_mib": 1, "flow": "2D", "bandwidth": 16.0}
        assert strategy._proxy_costs(values) is not None
        assert strategy._proxy_memo
        generation = strategy._proxy_generation

        @register_predictor("ephemeral-pred")
        def ephemeral(scenario):  # pragma: no cover - never evaluated
            raise AssertionError("screen must not evaluate this")

        try:
            assert strategy._proxy_costs(values) is not None
            assert strategy._proxy_generation != generation
        finally:
            PREDICTORS.unregister("ephemeral-pred")


class TestCli:
    def test_list_predictors(self, capsys):
        assert main(["list", "predictors"]) == 0
        out = capsys.readouterr().out
        for name in ("matmul", "dotp", "matvec", "stencil5"):
            assert name in out

    def test_cache_stats_prints_analytic_counters(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "analytic:" in out
        assert "calibration records" in out

    def test_cache_stats_json_carries_analytic_keys(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        for key in ("analytic_predictions", "analytic_calibrations",
                    "analytic_fallbacks", "calibration_entries"):
            assert key in stats

    def test_trajectory_append_and_check_analytic(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_analytic.json"
        trajectory = tmp_path / "BENCH_trajectory.json"
        bench.write_text(json.dumps({
            "workloads": {
                "dotp": {"error_bound": 0.05, "achieved_error": 0.013,
                         "within_bound": True},
            },
            "throughput": {"analytic_points_per_s": 9000.0,
                           "fast_points_per_s": 15.0,
                           "speedup_vs_fast": 600.0},
        }))
        assert main(["trajectory", "append", "--file", str(trajectory),
                     "--analytic", str(bench), "--label", "t0"]) == 0
        assert "analytic" in capsys.readouterr().out
        assert main(["trajectory", "check", "--file", str(trajectory)]) == 0

        bench.write_text(json.dumps({
            "workloads": {
                "dotp": {"error_bound": 0.05, "achieved_error": 0.2,
                         "within_bound": False},
            },
        }))
        assert main(["trajectory", "append", "--file", str(trajectory),
                     "--analytic", str(bench), "--label", "t1"]) == 0
        capsys.readouterr()
        assert main(["trajectory", "check", "--file", str(trajectory)]) == 1
        assert "error bound" in capsys.readouterr().err

    def test_trajectory_append_requires_an_artifact(self, capsys):
        assert main(["trajectory", "append"]) == 2
        assert "--analytic" in capsys.readouterr().err

    def test_run_with_analytic_sim_engine(self, tmp_path, capsys):
        previous = set_default_sim_engine("fast")
        try:
            scenario = dict(BASE.replace(matrix_dim=2048,
                                         tile_size=None).to_dict())
            path = tmp_path / "scenario.json"
            path.write_text(json.dumps(scenario))
            assert main(["run", "--scenario", str(path),
                         "--sim-engine", "analytic"]) == 0
            assert "cycles" in capsys.readouterr().out
        finally:
            set_default_sim_engine(previous)
