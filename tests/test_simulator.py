"""Tests for repro.simulator: engine, memsys, trace, generic programs."""

import pytest

from repro.arch.cluster import MemPoolCluster
from repro.core.config import Flow, MemPoolConfig
from repro.simulator.engine import Engine, SimulationTimeout, run_cluster
from repro.simulator.memsys import (
    DDR_CHANNEL_BYTES_PER_CYCLE,
    OffChipMemory,
    PAPER_BANDWIDTH_SWEEP,
)
from repro.simulator.program import fill_program, memcpy_program, vector_add_program
from repro.simulator.trace import collect_trace


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


class TestEngine:
    def test_requires_loaded_program(self, config):
        with pytest.raises(ValueError):
            Engine(MemPoolCluster(config))

    def test_vector_add(self, config):
        n, cores = 64, 8
        base_a, base_b, base_c = 0, 4 * n, 8 * n
        cluster = MemPoolCluster(config)
        cluster.write_words(base_a, list(range(n)))
        cluster.write_words(base_b, [10 * i for i in range(n)])
        cluster.load_program(
            vector_add_program(n, cores, base_a, base_b, base_c), num_cores=cores
        )
        result = run_cluster(cluster)
        assert cluster.read_words(base_c, n) == [11 * i for i in range(n)]
        assert result.cycles > 0
        assert result.instructions > n

    def test_memcpy(self, config):
        n, cores = 128, 16
        src, dst = 0, 4 * n
        cluster = MemPoolCluster(config)
        payload = [i * 3 + 1 for i in range(n)]
        cluster.write_words(src, payload)
        cluster.load_program(memcpy_program(n, cores, src, dst), num_cores=cores)
        run_cluster(cluster)
        assert cluster.read_words(dst, n) == payload

    def test_fill(self, config):
        n, cores = 96, 12
        cluster = MemPoolCluster(config)
        cluster.load_program(fill_program(n, cores, 0, 0xAB), num_cores=cores)
        run_cluster(cluster)
        assert cluster.read_words(0, n) == [0xAB] * n

    def test_more_cores_run_faster(self, config):
        n = 256

        def cycles_with(cores):
            cluster = MemPoolCluster(config)
            cluster.load_program(fill_program(n, cores, 0, 1), num_cores=cores)
            return run_cluster(cluster).cycles

        assert cycles_with(16) < cycles_with(2)

    def test_timeout_raises(self, config):
        from repro.arch.isa import ProgramBuilder

        spin = ProgramBuilder()
        spin.label("forever")
        spin.j("forever")
        cluster = MemPoolCluster(config)
        cluster.load_program(spin.build(), num_cores=1)
        with pytest.raises(SimulationTimeout):
            Engine(cluster, max_cycles=100).run()

    def test_barrier_synchronizes_all_cores(self, config):
        cluster = MemPoolCluster(config)
        cluster.load_program(fill_program(64, 8, 0, 5), num_cores=8)
        result = run_cluster(cluster)
        assert result.barrier_episodes >= 1

    def test_ipc_positive(self, config):
        cluster = MemPoolCluster(config)
        cluster.load_program(fill_program(32, 4, 0, 1), num_cores=4)
        result = run_cluster(cluster)
        assert result.ipc > 0


class TestOffChipMemory:
    def test_transfer_cycles_bandwidth_bound(self):
        mem = OffChipMemory(bandwidth_bytes_per_cycle=16)
        assert mem.transfer_cycles(160) == 10
        assert mem.transfer_cycles(161) == 11
        assert mem.transfer_cycles(0) == 0

    def test_rejects_negative_bytes(self):
        mem = OffChipMemory()
        with pytest.raises(ValueError):
            mem.transfer_cycles(-1)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            OffChipMemory(bandwidth_bytes_per_cycle=0)

    def test_load_store_logging(self):
        mem = OffChipMemory(bandwidth_bytes_per_cycle=8)
        mem.load(64)
        mem.store(32)
        assert mem.total_bytes == 96
        assert mem.total_cycles == 8 + 4
        assert [t.is_store for t in mem.transfers] == [False, True]

    def test_paper_sweep_contains_ddr_channel(self):
        assert DDR_CHANNEL_BYTES_PER_CYCLE in PAPER_BANDWIDTH_SWEEP
        assert tuple(sorted(PAPER_BANDWIDTH_SWEEP)) == PAPER_BANDWIDTH_SWEEP

    def test_halving_bandwidth_doubles_cycles(self):
        fast = OffChipMemory(bandwidth_bytes_per_cycle=32)
        slow = OffChipMemory(bandwidth_bytes_per_cycle=16)
        assert slow.transfer_cycles(4096) == 2 * fast.transfer_cycles(4096)


class TestTrace:
    def test_trace_counts_locality(self, config):
        cluster = MemPoolCluster(config)
        cluster.load_program(fill_program(256, 8, 0, 1), num_cores=8)
        result = run_cluster(cluster)
        trace = collect_trace(cluster, result.cycles)
        assert trace.total_accesses > 0
        local, group, remote = trace.locality_fractions
        assert local + group + remote == pytest.approx(1.0)
        assert trace.conflict_rate >= 0
        assert trace.barrier_episodes == result.barrier_episodes

    def test_interleaved_fill_reaches_remote_banks(self, config):
        # 256 words span all 16 banks of tiles 0..? => remote traffic exists.
        cluster = MemPoolCluster(config)
        cluster.load_program(fill_program(1024, 4, 0, 1), num_cores=4)
        result = run_cluster(cluster)
        trace = collect_trace(cluster, result.cycles)
        assert trace.group_accesses + trace.cluster_accesses > 0

    def test_empty_trace(self, config):
        cluster = MemPoolCluster(config)
        trace = collect_trace(cluster, 0)
        assert trace.total_accesses == 0
        assert trace.locality_fractions == (0.0, 0.0, 0.0)
        assert trace.icache_hit_rate == 1.0
