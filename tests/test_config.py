"""Tests for repro.core.config."""

import pytest

from repro.core.config import (
    CAPACITIES_MIB,
    PAPER_MATRIX_DIM,
    TILE_SIZE_BY_CAPACITY,
    ArchParams,
    Flow,
    MemPoolConfig,
    config_by_name,
    paper_configurations,
)


class TestArchParams:
    def test_default_totals_match_mempool(self):
        arch = ArchParams()
        assert arch.num_tiles == 64
        assert arch.num_cores == 256
        assert arch.num_banks == 1024

    def test_latency_contract(self):
        arch = ArchParams()
        assert (arch.local_latency, arch.group_latency, arch.cluster_latency) == (1, 3, 5)

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError):
            ArchParams(cores_per_tile=0)

    def test_rejects_inverted_latencies(self):
        with pytest.raises(ValueError):
            ArchParams(local_latency=4, group_latency=3)

    def test_rejects_zero_local_latency(self):
        with pytest.raises(ValueError):
            ArchParams(local_latency=0)

    def test_custom_geometry(self):
        arch = ArchParams(cores_per_tile=2, tiles_per_group=4, groups=2)
        assert arch.num_tiles == 8
        assert arch.num_cores == 16


class TestMemPoolConfig:
    def test_name_follows_paper_convention(self):
        config = MemPoolConfig(capacity_mib=4, flow=Flow.FLOW_3D)
        assert config.name == "MemPool-3D-4MiB"

    def test_bank_bytes_scaling(self):
        for cap in CAPACITIES_MIB:
            config = MemPoolConfig(capacity_mib=cap, flow=Flow.FLOW_2D)
            assert config.bank_bytes == cap * 1024  # 1 KiB bank per MiB cluster
            assert config.spm_bytes == cap << 20

    def test_spm_bytes_per_tile(self):
        config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)
        assert config.spm_bytes_per_tile == 16 * 1024

    def test_matmul_tile_sizes_match_paper(self):
        for cap, t in TILE_SIZE_BY_CAPACITY.items():
            config = MemPoolConfig(capacity_mib=cap, flow=Flow.FLOW_2D)
            assert config.matmul_tile_size == t

    def test_unknown_capacity_tile_size_raises(self):
        config = MemPoolConfig(capacity_mib=16, flow=Flow.FLOW_2D)
        with pytest.raises(ValueError):
            _ = config.matmul_tile_size

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemPoolConfig(capacity_mib=0, flow=Flow.FLOW_2D)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D, target_frequency_mhz=0)

    def test_rejects_capacity_not_divisible_over_banks(self):
        arch = ArchParams(banks_per_tile=13)  # 1 MiB does not divide over 13*64 banks
        with pytest.raises(ValueError):
            MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D, arch=arch)

    def test_is_3d_flag(self):
        assert MemPoolConfig(1, Flow.FLOW_3D).is_3d
        assert not MemPoolConfig(1, Flow.FLOW_2D).is_3d


class TestPaperConfigurations:
    def test_eight_instances(self):
        configs = paper_configurations()
        assert len(configs) == 8
        assert len({c.name for c in configs}) == 8

    def test_covers_all_capacities_and_flows(self):
        configs = paper_configurations()
        assert {c.capacity_mib for c in configs} == set(CAPACITIES_MIB)
        assert {c.flow for c in configs} == {Flow.FLOW_2D, Flow.FLOW_3D}


class TestConfigByName:
    def test_roundtrip(self):
        for config in paper_configurations():
            assert config_by_name(config.name).name == config.name

    def test_case_insensitive(self):
        assert config_by_name("mempool-2d-1mib").capacity_mib == 1

    @pytest.mark.parametrize(
        "bad", ["MemPool", "MemPool-5D-1MiB", "MemPool-2D-xMiB", "Foo-2D-1MiB", "MemPool-2D-1GiB"]
    )
    def test_malformed_names_raise(self, bad):
        with pytest.raises(ValueError):
            config_by_name(bad)


def test_paper_matrix_dim_is_lcm_multiple():
    for t in TILE_SIZE_BY_CAPACITY.values():
        assert PAPER_MATRIX_DIM % t == 0
