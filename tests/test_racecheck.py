"""Tests for the runtime race detector (repro.analysis.racecheck).

The detector instruments ``_FileLock`` and ``atomic_append`` — the
primitives every disciplined cache writer goes through — so these tests
drive the real cache code paths, not mocks.  The subprocess tests prove
the ``REPRO_RACE_CHECK=1`` activation path end to end, including a full
multiwriter cache test running under the detector.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import racecheck
from repro.analysis.racecheck import RaceError
from repro.engine.cache import (
    StageCache,
    _merge_sidecar,
    cache_clear,
    cache_gc,
)
from repro.sweep.cache import ResultCache, _FileLock, atomic_append

REPO = Path(__file__).parent.parent


@pytest.fixture
def detector():
    """Enable the detector for one test, with clean state either side."""
    racecheck.reset()
    racecheck.enable()
    yield racecheck
    racecheck.disable()
    racecheck.reset()


class TestUnguardedWrites:
    def test_raw_append_to_cache_file_raises(self, detector, tmp_path):
        with pytest.raises(RaceError, match="unguarded cache-file write"):
            atomic_append(tmp_path / "results.jsonl", "{}\n")

    def test_append_under_wrong_lock_raises(self, detector, tmp_path):
        with _FileLock(tmp_path / StageCache.LOCKNAME), \
                pytest.raises(RaceError, match="results.lock"):
            atomic_append(tmp_path / "results.jsonl", "{}\n")

    def test_append_under_matching_lock_passes(self, detector, tmp_path):
        with _FileLock(tmp_path / ResultCache.LOCKNAME):
            atomic_append(
                tmp_path / "results.jsonl", json.dumps({"key": "k"}) + "\n"
            )
        assert "k" in ResultCache(tmp_path)

    def test_non_cache_files_are_exempt(self, detector, tmp_path):
        atomic_append(tmp_path / "progress.log", "tick\n")

    def test_disabled_detector_is_a_no_op(self, tmp_path):
        racecheck.reset()
        assert not racecheck.enabled()
        atomic_append(tmp_path / "results.jsonl", "{}\n")


class TestGuardedHelpers:
    """The real writers must all be clean under the detector."""

    def test_result_cache_put(self, detector, tmp_path):
        ResultCache(tmp_path).put({"key": "a", "metrics": {}})

    def test_stage_cache_appends(self, detector, tmp_path):
        cache = StageCache(tmp_path)
        cache.put_cycles("k", 42.0)
        cache.put_cycles("k2", 43.0)
        assert StageCache(tmp_path).get_cycles("k") == 42.0

    def test_sidecar_merge(self, detector, tmp_path):
        _merge_sidecar(tmp_path / "stats.json", {"hits": 3})
        _merge_sidecar(tmp_path / "stats.json", {"hits": 2})
        data = json.loads((tmp_path / "stats.json").read_text())
        assert data["hits"] == 5

    def test_cache_gc_and_clear(self, detector, tmp_path):
        ResultCache(tmp_path).put({"key": "stale", "metrics": {}})
        kept, pruned = cache_gc(tmp_path)
        assert (kept, pruned) == (0, 1)  # no model_version: pruned
        assert cache_clear(tmp_path) == 0


class TestLockOrder:
    def test_inversion_is_caught(self, detector, tmp_path):
        a, b = tmp_path / "a.lock", tmp_path / "b.lock"
        with _FileLock(a), _FileLock(b):
            pass
        with pytest.raises(RaceError, match="lock-order inversion"), \
                _FileLock(b), _FileLock(a):
            pass

    def test_consistent_order_is_fine(self, detector, tmp_path):
        a, b = tmp_path / "a.lock", tmp_path / "b.lock"
        for _ in range(3):
            with _FileLock(a), _FileLock(b):
                pass

    def test_rejected_inversion_does_not_poison_the_graph(
        self, detector, tmp_path
    ):
        a, b = tmp_path / "a.lock", tmp_path / "b.lock"
        with _FileLock(a), _FileLock(b):
            pass
        with pytest.raises(RaceError), _FileLock(b), _FileLock(a):
            pass
        # The legitimate order must still be accepted afterwards.
        with _FileLock(a), _FileLock(b):
            pass

    def test_transitive_inversion_is_caught(self, detector, tmp_path):
        a, b, c = (tmp_path / n for n in ("a.lock", "b.lock", "c.lock"))
        with _FileLock(a), _FileLock(b):
            pass
        with _FileLock(b), _FileLock(c):
            pass
        with pytest.raises(RaceError, match="lock-order inversion"), \
                _FileLock(c), _FileLock(a):
            pass

    def test_reentrant_acquisition_is_caught(self, detector, tmp_path):
        a = tmp_path / "a.lock"
        with pytest.raises(RaceError, match="reentrant"), \
                _FileLock(a), _FileLock(a):
            pass

    def test_events_trace_records_activity(self, detector, tmp_path):
        with _FileLock(tmp_path / ResultCache.LOCKNAME):
            atomic_append(tmp_path / "results.jsonl", "{}\n")
        trace = racecheck.events()
        assert any(e.startswith("acquire") for e in trace)
        assert any(e.startswith("append") for e in trace)
        assert any(e.startswith("release") for e in trace)


class TestEnvActivation:
    """REPRO_RACE_CHECK=1 must arm the detector in fresh processes."""

    def _run(self, code: str, check: bool) -> subprocess.CompletedProcess:
        env = {**os.environ, "PYTHONPATH": str(REPO / "src"),
               "REPRO_RACE_CHECK": "1" if check else ""}
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
        )

    def test_env_var_arms_unguarded_write_check(self, tmp_path):
        code = (
            "from repro.sweep.cache import atomic_append; "
            f"atomic_append({str(tmp_path / 'results.jsonl')!r}, '{{}}\\n')"
        )
        armed = self._run(code, check=True)
        assert armed.returncode != 0
        assert "RaceError" in armed.stderr
        disarmed = self._run(code, check=False)
        assert disarmed.returncode == 0, disarmed.stderr

    def test_injected_inversion_fails_loudly(self, tmp_path):
        code = (
            "from repro.sweep.cache import _FileLock\n"
            f"a, b = {str(tmp_path / 'a.lock')!r}, {str(tmp_path / 'b.lock')!r}\n"
            "with _FileLock(a), _FileLock(b):\n    pass\n"
            "with _FileLock(b), _FileLock(a):\n    pass\n"
        )
        result = self._run(code, check=True)
        assert result.returncode != 0
        assert "lock-order inversion" in result.stderr

    def test_multiwriter_suite_passes_under_detector(self):
        """The whole multi-writer cache suite, detector armed.

        Every writer in those tests goes through the guarded helpers,
        so the detector must stay silent while real multi-process
        contention exercises it (the satellite run from ISSUE 7).
        """
        env = {**os.environ, "PYTHONPATH": str(REPO / "src"),
               "REPRO_RACE_CHECK": "1"}
        result = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
             str(REPO / "tests" / "test_cache_multiwriter.py")],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        assert result.returncode == 0, result.stdout + result.stderr
