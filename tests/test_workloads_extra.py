"""Tests for the matvec and stencil workloads, plus the report module."""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.kernels.workloads import (
    matvec_program,
    run_matvec,
    run_stencil5,
    stencil5_program,
)


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


class TestMatvec:
    @pytest.mark.parametrize("rows,cols,cores", [(8, 8, 2), (12, 10, 4), (20, 6, 8)])
    def test_correct(self, config, rows, cols, cores):
        run = run_matvec(config, rows=rows, cols=cols, num_cores=cores)
        assert run.correct

    def test_single_core(self, config):
        assert run_matvec(config, rows=5, cols=7, num_cores=1).correct

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            matvec_program(0, 4, 2, 0, 64, 128)
        with pytest.raises(ValueError):
            matvec_program(4, 4, 0, 0, 64, 128)


class TestStencil5:
    @pytest.mark.parametrize("w,h,cores", [(8, 8, 2), (10, 8, 4), (16, 12, 8)])
    def test_correct(self, config, w, h, cores):
        run = run_stencil5(config, width=w, height=h, num_cores=cores)
        assert run.correct

    def test_minimal_image(self, config):
        assert run_stencil5(config, width=3, height=3, num_cores=1).correct

    def test_rejects_tiny_image(self):
        with pytest.raises(ValueError):
            stencil5_program(2, 3, 2, 0, 100)

    def test_parallel_speedup(self, config):
        one = run_stencil5(config, width=16, height=16, num_cores=1)
        eight = run_stencil5(config, width=16, height=16, num_cores=8)
        assert eight.cycles < one.cycles


class TestReport:
    def test_report_builds_and_covers_everything(self):
        from repro.experiments.report import build_report

        report = build_report()
        assert "# MemPool-3D reproduction" in report
        assert "## Table I" in report
        assert "## Table II" in report
        assert "## Figure 6" in report
        assert "## Figures 7-9" in report
        assert "MemPool-3D-8MiB" in report
        assert "EDP optimum" in report

    def test_report_writes_to_file(self, tmp_path):
        from repro.experiments.report import write_report

        path = tmp_path / "report.md"
        write_report(str(path))
        text = path.read_text()
        assert text.startswith("# MemPool-3D reproduction")
        assert "| config |" in text
