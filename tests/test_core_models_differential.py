"""Differential property test: both core models agree architecturally.

Generates random straight-line programs (arithmetic + memory ops) with
hypothesis and runs them on the blocking-load :class:`SnitchCore` and the
scoreboarded :class:`ScoreboardSnitchCore`.  Cycle counts may differ —
architectural state (registers, memory) must not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.isa import ProgramBuilder
from repro.arch.scoreboard import ScoreboardSnitchCore
from repro.arch.snitch import SnitchCore


class FlatMemory:
    def __init__(self, words=64, latency=3):
        self.data = [0] * words
        self.latency = latency

    def port(self, cycle, address, is_store, value):
        index = (address // 4) % len(self.data)
        if is_store:
            self.data[index] = value & 0xFFFFFFFF
            return True, self.latency, 0
        return True, self.latency, self.data[index]


# Each op is a tuple the builder interprets; registers x1..x7, word
# offsets 0..15 (kept in range by masking in FlatMemory anyway).
reg = st.integers(min_value=1, max_value=7)
imm = st.integers(min_value=-64, max_value=64)
offset = st.integers(min_value=0, max_value=15)

operation = st.one_of(
    st.tuples(st.just("li"), reg, imm),
    st.tuples(st.just("add"), reg, reg, reg),
    st.tuples(st.just("sub"), reg, reg, reg),
    st.tuples(st.just("addi"), reg, reg, imm),
    st.tuples(st.just("mul"), reg, reg, reg),
    st.tuples(st.just("mac"), reg, reg, reg),
    st.tuples(st.just("lw"), reg, offset),
    st.tuples(st.just("sw"), reg, offset),
)


def build_program(ops):
    b = ProgramBuilder()
    b.li(1, 5)  # give the memory ops a defined base state
    for op in ops:
        name = op[0]
        if name == "li":
            b.li(op[1], op[2])
        elif name == "add":
            b.add(op[1], op[2], op[3])
        elif name == "sub":
            b.sub(op[1], op[2], op[3])
        elif name == "addi":
            b.addi(op[1], op[2], op[3])
        elif name == "mul":
            b.mul(op[1], op[2], op[3])
        elif name == "mac":
            b.mac(op[1], op[2], op[3])
        elif name == "lw":
            b.li(8, op[2] * 4)
            b.lw(op[1], 8, 0)
        elif name == "sw":
            b.li(8, op[2] * 4)
            b.sw(op[1], 8, 0)
    b.halt()
    return b.build()


def run(core_class, program, latency):
    memory = FlatMemory(latency=latency)
    for i in range(len(memory.data)):
        memory.data[i] = (i * 2654435761) & 0xFFFFFFFF
    core = core_class(0, program, memory.port)
    cycle = 0
    while not core.halted:
        assert cycle < 50_000, "core did not halt"
        core.step(cycle)
        cycle += 1
    return core.regs, memory.data, cycle


@settings(max_examples=150, deadline=None)
@given(ops=st.lists(operation, min_size=1, max_size=30),
       latency=st.integers(min_value=1, max_value=8))
def test_scoreboard_matches_blocking_architectural_state(ops, latency):
    program = build_program(ops)
    regs_a, mem_a, _ = run(SnitchCore, program, latency)
    regs_b, mem_b, _ = run(ScoreboardSnitchCore, program, latency)
    assert regs_a == regs_b
    assert mem_a == mem_b


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(operation, min_size=5, max_size=30))
def test_scoreboard_never_slower(ops):
    program = build_program(ops)
    _, _, cycles_blocking = run(SnitchCore, program, 6)
    _, _, cycles_scoreboard = run(ScoreboardSnitchCore, program, 6)
    assert cycles_scoreboard <= cycles_blocking
