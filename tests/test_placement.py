"""Tests for repro.physical.placement — Figures 4/5 mechanisms."""

import pytest

from repro.physical.placement import (
    ChannelPlan,
    GroupPlacement,
    channel_supply_tracks_per_um,
    place_group,
    plan_channels,
)
from repro.physical.technology import make_stack


@pytest.fixture
def m8():
    return make_stack("M8")


@pytest.fixture
def m6m6():
    return make_stack("M6M6")


class TestChannelPlan:
    def test_total_width(self):
        plan = ChannelPlan(outer_width_um=100, center_width_um=180)
        assert plan.total_width_um == 380

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ChannelPlan(outer_width_um=0, center_width_um=1)


class TestChannelSupply:
    def test_3d_supply_beats_2d_despite_blockage(self, m8, m6m6):
        assert channel_supply_tracks_per_um(m6m6, True) > channel_supply_tracks_per_um(m8, False)

    def test_blockage_only_applies_to_3d(self, m6m6):
        assert channel_supply_tracks_per_um(m6m6, True) < channel_supply_tracks_per_um(m6m6, False)


class TestPlanChannels:
    def test_3d_channels_about_18_percent_narrower(self, m8, m6m6):
        """Section V-A: 3D channels are ~18 % narrower than 2D ones."""
        bits = 7040
        w2d = plan_channels(bits, m8, is_3d=False).total_width_um
        w3d = plan_channels(bits, m6m6, is_3d=True).total_width_um
        assert w3d / w2d == pytest.approx(0.82, abs=0.03)

    def test_center_channel_wider(self, m8):
        plan = plan_channels(7040, m8, is_3d=False)
        assert plan.center_width_um > plan.outer_width_um

    def test_width_grows_with_demand(self, m8):
        narrow = plan_channels(6000, m8, is_3d=False).total_width_um
        wide = plan_channels(7000, m8, is_3d=False).total_width_um
        assert wide > narrow

    def test_address_bits_barely_move_channels(self, m8):
        # The interconnect size is "largely independent of the SPM
        # capacity, except for the additional address bits".
        base = plan_channels(4 * 16 * 110, m8, is_3d=False).total_width_um
        plus3bits = plan_channels(4 * 16 * 113, m8, is_3d=False).total_width_um
        assert plus3bits / base < 1.04

    def test_rejects_bad_inputs(self, m8):
        with pytest.raises(ValueError):
            plan_channels(0, m8, is_3d=False)
        with pytest.raises(ValueError):
            plan_channels(100, m8, is_3d=False, grid=1)


class TestGroupPlacement:
    def make(self, tile=500.0, outer=80.0, center=150.0, grid=4):
        return GroupPlacement(
            grid=grid,
            tile_width_um=tile,
            tile_height_um=tile,
            channels=ChannelPlan(outer_width_um=outer, center_width_um=center),
        )

    def test_outline(self):
        p = self.make()
        expected = 4 * 500 + (2 * 80 + 150) + 2 * 15
        assert p.width_um == pytest.approx(expected)
        assert p.height_um == pytest.approx(expected)
        assert p.footprint_um2 == pytest.approx(expected**2)

    def test_diagonal_exceeds_width(self):
        p = self.make()
        assert p.width_um < p.diagonal_um < 2 * p.width_um

    def test_tile_centers_ordered_and_symmetric(self):
        p = self.make()
        xs = [p.tile_center(0, c)[0] for c in range(4)]
        assert xs == sorted(xs)
        # Symmetric around the die center.
        assert xs[0] + xs[3] == pytest.approx(p.width_um)
        assert xs[1] + xs[2] == pytest.approx(p.width_um)

    def test_center_channel_between_middle_tiles(self):
        p = self.make()
        x1 = p.tile_center(0, 1)[0]
        x2 = p.tile_center(0, 2)[0]
        # Gap between middle tiles = tile width + center channel.
        assert x2 - x1 == pytest.approx(500 + 150)

    def test_center_position(self):
        p = self.make()
        cx, cy = p.center
        assert cx == pytest.approx(p.width_um / 2)
        assert cy == pytest.approx(p.height_um / 2)

    def test_out_of_range_tile(self):
        with pytest.raises(ValueError):
            self.make().tile_center(4, 0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            self.make(tile=-1)


class TestPlaceGroup:
    def test_place_group_wires_demand_through(self, m8):
        p = place_group(500, 500, 7040, m8, is_3d=False)
        assert p.grid == 4
        assert p.footprint_um2 > 4 * 4 * 500 * 500
