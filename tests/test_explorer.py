"""Tests for repro.core.explorer — the co-exploration driver."""

import pytest

from repro.core.config import Flow
from repro.core.explorer import Explorer, OBJECTIVES, pareto_front
from repro.kernels.phases import PhaseModelParams


@pytest.fixture(scope="module")
def points():
    return Explorer().explore()


class TestExplore:
    def test_covers_all_configurations(self, points):
        assert len(points) == 8
        assert len({p.config.name for p in points}) == 8

    def test_metrics_attached(self, points):
        for p in points:
            assert p.frequency_mhz > 0
            assert p.power_mw > 0
            assert p.kernel.cycles > 0
            assert p.edp > 0

    def test_same_capacity_shares_cycles(self, points):
        by_name = {p.config.name: p for p in points}
        assert (
            by_name["MemPool-2D-4MiB"].kernel.cycles
            == by_name["MemPool-3D-4MiB"].kernel.cycles
        )

    def test_restricted_sweep(self):
        explorer = Explorer(capacities_mib=(1, 8), flows=(Flow.FLOW_3D,))
        points = explorer.explore()
        assert {p.config.name for p in points} == {
            "MemPool-3D-1MiB",
            "MemPool-3D-8MiB",
        }

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            Explorer(capacities_mib=())


class TestRank:
    def test_performance_winner_is_3d_8mib(self, points):
        best = Explorer().rank("performance", points)[0]
        assert best.config.name == "MemPool-3D-8MiB"

    def test_efficiency_winner_is_small_3d(self, points):
        best = Explorer().rank("energy_efficiency", points)[0]
        assert best.config.flow is Flow.FLOW_3D
        assert best.config.capacity_mib <= 2

    def test_edp_winner_is_small_3d(self, points):
        best = Explorer().rank("edp", points)[0]
        assert best.config.flow is Flow.FLOW_3D
        assert best.config.capacity_mib <= 2

    def test_footprint_winner_is_3d(self, points):
        best = Explorer().rank("footprint", points)[0]
        assert best.config.flow is Flow.FLOW_3D

    def test_silicon_cost_winner_is_2d_1mib(self, points):
        # Combined die area favors 2D (one die).
        best = Explorer().rank("silicon_cost", points)[0]
        assert best.config.name == "MemPool-2D-1MiB"

    def test_every_objective_orders_correctly(self, points):
        explorer = Explorer()
        for name, (key, higher_better) in OBJECTIVES.items():
            ranked = explorer.rank(name, points)
            values = [key(p) for p in ranked]
            assert values == sorted(values, reverse=higher_better)

    def test_unknown_objective(self, points):
        with pytest.raises(ValueError):
            Explorer().rank("beauty", points)


class TestParetoFront:
    def test_front_members_are_undominated(self, points):
        front = Explorer().pareto_front(points)
        assert front
        for p in front:
            for q in points:
                dominates = (
                    q.performance >= p.performance
                    and q.energy_efficiency >= p.energy_efficiency
                    and (
                        q.performance > p.performance
                        or q.energy_efficiency > p.energy_efficiency
                    )
                )
                assert not dominates

    def test_front_is_all_3d(self, points):
        # Every 2D design is dominated by its 3D counterpart.
        front = Explorer().pareto_front(points)
        assert all(p.config.flow is Flow.FLOW_3D for p in front)

    def test_front_sorted_by_performance(self, points):
        front = Explorer().pareto_front(points)
        perfs = [p.performance for p in front]
        assert perfs == sorted(perfs)


class TestGeneralizedParetoFront:
    """pareto_front accepts explicit (key, higher_better) objectives."""

    def test_explicit_default_matches_implicit(self, points):
        explicit = pareto_front(
            points,
            objectives=(
                (lambda p: p.performance, True),
                (lambda p: p.energy_efficiency, True),
            ),
        )
        assert explicit == pareto_front(points)

    def test_single_objective_front_is_the_optimum(self, points):
        front = pareto_front(points, objectives=((lambda p: p.edp, False),))
        assert len(front) == 1
        assert front[0].edp == min(p.edp for p in points)

    def test_registry_objective_tuples_plug_in(self, points):
        # Registry entries are (key, higher_better) pairs — usable as-is.
        front = pareto_front(
            points, objectives=[OBJECTIVES["edp"], OBJECTIVES["silicon_cost"]]
        )
        for p in front:
            dominated = any(
                q.edp <= p.edp
                and q.combined_area_um2 <= p.combined_area_um2
                and (q.edp < p.edp or q.combined_area_um2 < p.combined_area_um2)
                for q in points
            )
            assert not dominated

    def test_front_sorted_by_first_objective(self, points):
        front = pareto_front(
            points, objectives=[OBJECTIVES["edp"], OBJECTIVES["silicon_cost"]]
        )
        edps = [p.edp for p in front]
        assert edps == sorted(edps)

    def test_rejects_empty_objectives(self, points):
        with pytest.raises(ValueError):
            pareto_front(points, objectives=())

    def test_explorer_method_passes_objectives_through(self, points):
        front = Explorer().pareto_front(
            points, objectives=((lambda p: p.edp, False),)
        )
        assert len(front) == 1


class TestCustomPhaseParams:
    def test_zero_overhead_params_change_cycles(self):
        fast = Explorer(
            phase_params=PhaseModelParams(cpi_mac=1.0, phase_overhead_cycles=0.0)
        ).explore()
        slow = Explorer().explore()
        fast_cycles = {p.config.name: p.kernel.cycles for p in fast}
        slow_cycles = {p.config.name: p.kernel.cycles for p in slow}
        for name in fast_cycles:
            assert fast_cycles[name] < slow_cycles[name]
