"""Full-scale integration: all 256 cores of the cluster simulating together."""

import pytest

from repro.arch.cluster import MemPoolCluster
from repro.core.config import Flow, MemPoolConfig
from repro.kernels.matmul import run_matmul
from repro.simulator.engine import run_cluster
from repro.simulator.program import fill_program, vector_add_program
from repro.simulator.trace import collect_trace


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


class TestAll256Cores:
    def test_fill_with_every_core(self, config):
        cluster = MemPoolCluster(config)
        n = 4096  # 16 words per core
        cluster.load_program(fill_program(n, 256, 0, 0x5A), num_cores=256)
        result = run_cluster(cluster)
        assert cluster.read_words(0, n) == [0x5A] * n
        assert result.barrier_episodes >= 1

    def test_vector_add_with_every_core(self, config):
        cluster = MemPoolCluster(config)
        n = 2048
        base_a, base_b, base_c = 0, 4 * n, 8 * n
        cluster.write_words(base_a, list(range(n)))
        cluster.write_words(base_b, [2 * i for i in range(n)])
        cluster.load_program(
            vector_add_program(n, 256, base_a, base_b, base_c), num_cores=256
        )
        run_cluster(cluster)
        assert cluster.read_words(base_c, n) == [3 * i for i in range(n)]

    def test_matmul_with_many_cores(self, config):
        run = run_matmul(config, n=32, num_cores=64, scoreboard=True)
        assert run.correct

    def test_traffic_spans_all_groups(self, config):
        cluster = MemPoolCluster(config)
        cluster.load_program(fill_program(4096, 256, 0, 1), num_cores=256)
        result = run_cluster(cluster)
        trace = collect_trace(cluster, result.cycles)
        # With 256 cores and interleaved data, inter-group traffic exists.
        assert trace.cluster_accesses > 0
        # Every tile served some traffic.
        touched = sum(
            1 for t in cluster.tiles
            if t.port_stats.local_requests + t.port_stats.remote_in_requests > 0
        )
        assert touched == 64

    def test_parallel_efficiency_reasonable(self, config):
        def cycles_with(cores):
            cluster = MemPoolCluster(config)
            cluster.load_program(fill_program(8192, cores, 0, 7), num_cores=cores)
            return run_cluster(cluster).cycles

        c64 = cycles_with(64)
        c256 = cycles_with(256)
        # 4x the cores: at least 2x faster on this bandwidth-light kernel.
        assert c256 < c64 / 2
