"""Tests for repro.physical.netlist."""

from repro.core.config import CAPACITIES_MIB, Flow, MemPoolConfig
from repro.interconnect.butterfly import ButterflyNetwork
from repro.physical.netlist import (
    GROUP_GLUE_KGE,
    TILE_CONTROL_KGE,
    build_group_netlist,
    build_tile_netlist,
    butterfly_kge,
)
from repro.physical.technology import DEFAULT_TECHNOLOGY


def config(cap=1, flow=Flow.FLOW_2D):
    return MemPoolConfig(capacity_mib=cap, flow=flow)


class TestTileNetlist:
    def test_macro_counts(self):
        netlist = build_tile_netlist(config())
        assert len(netlist.spm_macros) == 16
        assert len(netlist.icache_macros) == 4

    def test_logic_area_anchored_to_core_kge(self):
        netlist = build_tile_netlist(config())
        # 4 cores x 60 kGE dominate the ~270-290 kGE tile.
        core_area = DEFAULT_TECHNOLOGY.kge_to_area_um2(4 * 60.0)
        assert core_area < netlist.logic_area_um2 < 1.4 * core_area

    def test_macro_area_grows_with_capacity(self):
        areas = [
            build_tile_netlist(config(cap)).macro_area_um2 for cap in CAPACITIES_MIB
        ]
        assert areas == sorted(areas)

    def test_logic_area_nearly_capacity_independent(self):
        # Only the crossbar's address bits grow with capacity.
        small = build_tile_netlist(config(1)).logic_area_um2
        large = build_tile_netlist(config(8)).logic_area_um2
        assert large > small
        assert large / small < 1.01

    def test_sram_access_time_accessor(self):
        netlist = build_tile_netlist(config(2))
        assert netlist.sram_access_time_ps == netlist.spm_macros[0].access_time_ps

    def test_crossbar_shape(self):
        netlist = build_tile_netlist(config())
        assert netlist.crossbar.masters == 8
        assert netlist.crossbar.slaves == 16


class TestGroupNetlist:
    def test_four_butterflies(self):
        netlist = build_group_netlist(config())
        assert len(netlist.butterflies) == 4
        assert all(b.ports == 16 and b.radix == 4 for b in netlist.butterflies)

    def test_boundary_bits_grow_with_address_width(self):
        small = build_group_netlist(config(1)).boundary_bits
        large = build_group_netlist(config(8)).boundary_bits
        assert small < large
        # 3 extra address bits x 4 butterflies x 16 ports.
        assert large - small == 3 * 4 * 16

    def test_interconnect_cells_register_heavy(self):
        netlist = build_group_netlist(config())
        cells = netlist.interconnect_cells
        assert cells.registers > 0
        assert cells.total == netlist.total_group_level_cells

    def test_reuses_supplied_tile(self):
        cfg = config()
        tile = build_tile_netlist(cfg)
        netlist = build_group_netlist(cfg, tile)
        assert netlist.tile is tile

    def test_num_tiles(self):
        assert build_group_netlist(config()).num_tiles == 16


class TestButterflyKge:
    def test_positive_and_scales_with_width(self):
        narrow = butterfly_kge(ButterflyNetwork(ports=16, radix=4, request_bits=60))
        wide = butterfly_kge(ButterflyNetwork(ports=16, radix=4, request_bits=80))
        assert 0 < narrow < wide

    def test_group_interconnect_magnitude(self):
        # Four butterflies plus glue land in the low-hundreds of kGE.
        total = 4 * butterfly_kge(ButterflyNetwork()) + GROUP_GLUE_KGE
        assert 50 < total < 400

    def test_tile_control_constant_sane(self):
        assert 5 < TILE_CONTROL_KGE < 60
