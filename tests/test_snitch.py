"""Tests for repro.arch.snitch — core semantics against a flat memory."""

from repro.arch.icache import InstructionCache
from repro.arch.isa import ProgramBuilder
from repro.arch.snitch import CoreState, SnitchCore


class FlatMemory:
    """Simple word memory with configurable latency, used as a port."""

    def __init__(self, words=1024, latency=1):
        self.data = [0] * words
        self.latency = latency
        self.accesses = []

    def port(self, cycle, address, is_store, value):
        self.accesses.append((cycle, address, is_store))
        index = address // 4
        if is_store:
            self.data[index] = value & 0xFFFFFFFF
            return True, self.latency, 0
        return True, self.latency, self.data[index]


def run_core(program, memory=None, core_id=0, max_cycles=10_000, icache=None):
    memory = memory or FlatMemory()
    core = SnitchCore(core_id, program, memory.port, icache=icache)
    cycle = 0
    while not core.halted:
        if cycle > max_cycles:
            raise AssertionError("core did not halt")
        core.step(cycle)
        cycle += 1
    return core, memory


class TestArithmetic:
    def test_li_add_sub(self):
        p = ProgramBuilder().li(1, 10).li(2, 3).add(3, 1, 2).sub(4, 1, 2).halt().build()
        core, _ = run_core(p)
        assert core.regs[3] == 13
        assert core.regs[4] == 7

    def test_addi_and_mul(self):
        p = ProgramBuilder().li(1, 6).addi(2, 1, -2).mul(3, 1, 2).halt().build()
        core, _ = run_core(p)
        assert core.regs[2] == 4
        assert core.regs[3] == 24

    def test_mac_accumulates(self):
        p = (
            ProgramBuilder()
            .li(1, 3).li(2, 4).li(3, 100)
            .mac(3, 1, 2)
            .mac(3, 1, 2)
            .halt().build()
        )
        core, _ = run_core(p)
        assert core.regs[3] == 124

    def test_mul_signed_semantics(self):
        p = ProgramBuilder().li(1, -3).li(2, 5).mul(3, 1, 2).halt().build()
        core, _ = run_core(p)
        assert core.regs[3] == (-15) & 0xFFFFFFFF

    def test_x0_is_hardwired_zero(self):
        p = ProgramBuilder().li(0, 99).add(1, 0, 0).halt().build()
        core, _ = run_core(p)
        assert core.regs[0] == 0
        assert core.regs[1] == 0

    def test_csrr_hartid(self):
        p = ProgramBuilder().csrr_hartid(5).halt().build()
        core, _ = run_core(p, core_id=17)
        assert core.regs[5] == 17


class TestMemoryOps:
    def test_store_then_load(self):
        p = (
            ProgramBuilder()
            .li(1, 0x123).li(2, 8)
            .sw(1, 2, 0)
            .lw(3, 2, 0)
            .halt().build()
        )
        core, mem = run_core(p)
        assert mem.data[2] == 0x123
        assert core.regs[3] == 0x123

    def test_load_with_offset(self):
        mem = FlatMemory()
        mem.data[5] = 77
        p = ProgramBuilder().li(1, 0).lw(2, 1, 20).halt().build()
        core, _ = run_core(p, mem)
        assert core.regs[2] == 77

    def test_postincrement_load_advances_pointer(self):
        mem = FlatMemory()
        mem.data[0], mem.data[1] = 11, 22
        p = (
            ProgramBuilder()
            .li(1, 0)
            .lw_postinc(2, 1, 4)
            .lw_postinc(3, 1, 4)
            .halt().build()
        )
        core, _ = run_core(p, mem)
        assert core.regs[2] == 11
        assert core.regs[3] == 22
        assert core.regs[1] == 8

    def test_postincrement_store(self):
        p = (
            ProgramBuilder()
            .li(1, 0).li(2, 5)
            .sw_postinc(2, 1, 4)
            .sw_postinc(2, 1, 4)
            .halt().build()
        )
        core, mem = run_core(p)
        assert mem.data[0] == 5 and mem.data[1] == 5
        assert core.regs[1] == 8

    def test_load_latency_stalls_core(self):
        fast_mem = FlatMemory(latency=1)
        slow_mem = FlatMemory(latency=5)
        p = ProgramBuilder().li(1, 0).lw(2, 1, 0).halt().build()
        fast_core, _ = run_core(p, fast_mem)
        slow_core, _ = run_core(p, slow_mem)
        assert slow_core.stats.cycles > fast_core.stats.cycles
        assert slow_core.stats.load_stall_cycles > 0

    def test_refused_request_retries(self):
        class RefuseOnce(FlatMemory):
            def __init__(self):
                super().__init__()
                self.refused = False

            def port(self, cycle, address, is_store, value):
                if not self.refused:
                    self.refused = True
                    return False, 0, 0
                return super().port(cycle, address, is_store, value)

        mem = RefuseOnce()
        p = ProgramBuilder().li(1, 0).lw(2, 1, 0).halt().build()
        core, _ = run_core(p, mem)
        assert core.halted
        assert core.stats.conflict_retries == 1


class TestControlFlow:
    def test_loop_counts(self):
        p = (
            ProgramBuilder()
            .li(1, 0).li(2, 10)
            .label("loop")
            .addi(1, 1, 1)
            .blt(1, 2, "loop")
            .halt().build()
        )
        core, _ = run_core(p)
        assert core.regs[1] == 10

    def test_bne_loop(self):
        p = (
            ProgramBuilder()
            .li(1, 5).li(2, 0)
            .label("loop")
            .addi(1, 1, -1)
            .bne(1, 2, "loop")
            .halt().build()
        )
        core, _ = run_core(p)
        assert core.regs[1] == 0

    def test_taken_branch_costs_extra_cycle(self):
        taken = (
            ProgramBuilder().li(1, 0).li(2, 1).blt(1, 2, "t").label("t").halt().build()
        )
        not_taken = (
            ProgramBuilder().li(1, 1).li(2, 0).blt(1, 2, "t").label("t").halt().build()
        )
        taken_core, _ = run_core(taken)
        nt_core, _ = run_core(not_taken)
        assert taken_core.stats.cycles > nt_core.stats.cycles

    def test_jump(self):
        p = ProgramBuilder().j("end").li(1, 99).label("end").halt().build()
        core, _ = run_core(p)
        assert core.regs[1] == 0

    def test_running_off_program_halts(self):
        p = ProgramBuilder().li(1, 1).build()  # no HALT
        core, _ = run_core(p)
        assert core.halted


class TestBarrier:
    def test_barrier_waits_for_release(self):
        p = ProgramBuilder().barrier().li(1, 7).halt().build()
        released = {"value": False}
        core = SnitchCore(0, p, FlatMemory().port)
        core.barrier_arrive = lambda _cid: (lambda: released["value"])
        for cycle in range(5):
            core.step(cycle)
        assert core.state is CoreState.WAIT_BARRIER
        assert core.regs[1] == 0
        released["value"] = True
        for cycle in range(5, 10):
            core.step(cycle)
        assert core.halted
        assert core.regs[1] == 7

    def test_barrier_without_callback_releases_immediately(self):
        p = ProgramBuilder().barrier().halt().build()
        core, _ = run_core(p)
        assert core.halted


class TestICacheIntegration:
    def test_cold_icache_slows_execution(self):
        p = ProgramBuilder().li(1, 1).li(2, 2).li(3, 3).halt().build()
        cold = InstructionCache(refill_penalty=20)
        core_cold, _ = run_core(p, icache=cold)
        core_warm, _ = run_core(p)
        assert core_cold.stats.cycles > core_warm.stats.cycles

    def test_warmed_icache_matches_no_cache(self):
        p = ProgramBuilder().li(1, 1).halt().build()
        warm = InstructionCache(refill_penalty=20)
        warm.warm(0, len(p) * SnitchCore.PC_BYTES)
        core_warm, _ = run_core(p, icache=warm)
        core_none, _ = run_core(p)
        assert core_warm.stats.cycles == core_none.stats.cycles


class TestStats:
    def test_instruction_count(self):
        p = ProgramBuilder().li(1, 1).addi(1, 1, 1).halt().build()
        core, _ = run_core(p)
        assert core.stats.instructions == 3

    def test_ipc_bounded_by_one(self):
        p = ProgramBuilder().li(1, 1).addi(1, 1, 1).halt().build()
        core, _ = run_core(p)
        assert 0 < core.stats.ipc <= 1.0
