"""Tests for repro.physical.technology."""

import pytest

from repro.physical.technology import (
    DEFAULT_TECHNOLOGY,
    F2FVia,
    MetalLayer,
    MetalStack,
    make_stack,
)


class TestMetalLayer:
    def test_tracks_per_um(self):
        layer = MetalLayer("M2", 0.1, 3.2, 0.2, "V")
        assert layer.tracks_per_um() == pytest.approx(10.0)


class TestF2FVia:
    def test_paper_parameters(self):
        via = F2FVia()
        assert via.size_um == 0.5
        assert via.resistance_ohm == 0.5
        assert via.capacitance_ff == 1.0
        assert via.pitch_um == 10.0

    def test_vias_per_area(self):
        via = F2FVia()
        assert via.vias_per_area(100, 100) == 100
        assert via.vias_per_area(5, 100) == 0


class TestMakeStack:
    def test_m6(self):
        stack = make_stack("M6")
        assert stack.layer_count == 6
        assert not stack.mirrored
        assert stack.routable_layers == 5

    def test_m8(self):
        stack = make_stack("M8")
        assert stack.layer_count == 8
        assert [l.name for l in stack.layers][-1] == "M8"

    def test_m6m6_mirrored(self):
        stack = make_stack("M6M6")
        assert stack.mirrored
        assert stack.layer_count == 12
        assert stack.routable_layers == 10
        assert stack.f2f is not None

    def test_mirrored_supply_exceeds_m8(self):
        # Twelve layers of M6M6 supply more raw tracks than eight of M8.
        assert (
            make_stack("M6M6").supply_tracks_per_um()
            > make_stack("M8").supply_tracks_per_um()
        )

    def test_unknown_stack_raises(self):
        with pytest.raises(ValueError):
            make_stack("M4")

    def test_mirrored_requires_f2f(self):
        layers = make_stack("M6").layers
        with pytest.raises(ValueError):
            MetalStack(name="bad", layers=layers, mirrored=True, f2f=None)


class TestTechnology:
    def test_kge_roundtrip(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.area_to_kge(tech.kge_to_area_um2(60.0)) == pytest.approx(60.0)

    def test_snitch_core_area_scale(self):
        # 60 kGE at ~0.65 um^2/GE lands in the tens of thousands of um^2.
        area = DEFAULT_TECHNOLOGY.kge_to_area_um2(60.0)
        assert 20_000 < area < 80_000

    def test_negative_kge_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_TECHNOLOGY.kge_to_area_um2(-1.0)

    def test_wire_delay_linear_in_length(self):
        tech = DEFAULT_TECHNOLOGY
        stack = make_stack("M8")
        d1 = tech.wire_delay_ps(1000, stack)
        d2 = tech.wire_delay_ps(2000, stack)
        assert d2 == pytest.approx(2 * d1)

    def test_wire_delay_in_plausible_band(self):
        # Buffered 28 nm global wires: ~0.05-0.2 ps/um.
        tech = DEFAULT_TECHNOLOGY
        per_um = tech.wire_delay_ps(1000, make_stack("M8")) / 1000
        assert 0.05 < per_um < 0.2

    def test_unbuffered_delay_quadratic(self):
        tech = DEFAULT_TECHNOLOGY
        stack = make_stack("M8")
        d1 = tech.unbuffered_wire_delay_ps(500, stack)
        d2 = tech.unbuffered_wire_delay_ps(1000, stack)
        assert d2 == pytest.approx(4 * d1)

    def test_unbuffered_beats_buffered_only_for_short_wires(self):
        tech = DEFAULT_TECHNOLOGY
        stack = make_stack("M8")
        assert tech.unbuffered_wire_delay_ps(50, stack) < tech.wire_delay_ps(50, stack)
        assert tech.unbuffered_wire_delay_ps(5000, stack) > tech.wire_delay_ps(5000, stack)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_TECHNOLOGY.wire_delay_ps(-1, make_stack("M8"))

    def test_critical_rc_identical_across_stacks(self):
        # Modeling assumption documented in critical_route_rc.
        assert make_stack("M8").critical_route_rc() == make_stack("M6M6").critical_route_rc()

    def test_default_stacks_present(self):
        assert set(DEFAULT_TECHNOLOGY.stacks) == {"M6", "M8", "M6M6"}
