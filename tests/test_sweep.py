"""Tests for repro.sweep — spec, cache, executor, store, report."""

import json
import subprocess
import sys

import pytest

from repro.core.explorer import Explorer
from repro.sweep import (
    Job,
    ResultCache,
    ResultStore,
    SweepExecutor,
    SweepSpec,
    evaluate_job,
    point_to_record,
    rank,
    record_to_point,
    summarize,
)

SMALL = SweepSpec(capacities_mib=(1, 8), bandwidths=(4.0, 64.0))


class TestSweepSpec:
    def test_cross_product_size(self):
        assert len(SMALL) == 8
        assert len(list(SMALL.jobs())) == 8

    def test_order_is_deterministic(self):
        assert [j.key for j in SMALL.jobs()] == [j.key for j in SMALL.jobs()]

    def test_default_spec_covers_paper_points(self):
        names = {j.to_config().name for j in SweepSpec().jobs()}
        assert len(names) == 8
        assert "MemPool-3D-4MiB" in names

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            SweepSpec(capacities_mib=())

    def test_dict_roundtrip(self):
        data = SMALL.to_dict()
        assert SweepSpec.from_dict(json.loads(json.dumps(data))) == SMALL

    def test_from_dict_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"voltages": [0.8]})


class TestJob:
    def test_rejects_bad_flow_and_kernel(self):
        with pytest.raises(ValueError):
            Job(capacity_mib=1, flow="2.5D")
        with pytest.raises(ValueError):
            Job(capacity_mib=1, flow="2D", kernel="fft")

    def test_key_is_stable_within_process(self):
        a = Job(capacity_mib=4, flow="3D", bandwidth=16)
        b = Job(capacity_mib=4, flow="3D", bandwidth=16.0)
        assert a.key == b.key  # int/float normalization

    def test_key_distinguishes_parameters(self):
        base = Job(capacity_mib=4, flow="3D")
        assert base.key != Job(capacity_mib=4, flow="2D").key
        assert base.key != Job(capacity_mib=4, flow="3D", bandwidth=8).key
        assert base.key != Job(capacity_mib=4, flow="3D", num_cores=128).key

    def test_key_is_stable_across_processes(self):
        job = Job(capacity_mib=2, flow="3D", bandwidth=32)
        script = (
            "from repro.sweep import Job; "
            "print(Job(capacity_mib=2, flow='3D', bandwidth=32).key)"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == job.key

    def test_paper_point_uses_paper_tiling(self):
        job = Job(capacity_mib=1, flow="2D")
        assert job.tiling().tile_size == 256

    def test_non_paper_point_fits_tiling(self):
        job = Job(capacity_mib=1, flow="2D", matrix_dim=4096)
        plan = job.tiling()
        assert plan.matrix_dim == 4096
        assert plan.fits(1 << 20)

    def test_params_roundtrip(self):
        job = Job(capacity_mib=8, flow="3D", bandwidth=4, num_cores=128)
        assert Job.from_params(job.params()) == job

    def test_scenario_surface_fields_distinguish_keys(self):
        base = Job(capacity_mib=4, flow="3D")
        assert base.key != Job(capacity_mib=4, flow="3D", tile_size=272).key
        assert base.key != Job(
            capacity_mib=4, flow="3D", target_frequency_mhz=800.0
        ).key
        assert base.key != Job(
            capacity_mib=4, flow="3D", arch={"core_kge": 80.0}
        ).key

    def test_scenario_canonicalization_copied_back(self):
        # An explicit tile equal to the derived one folds to None, and
        # all-default arch overrides fold to None: equal evaluations
        # must be equal jobs.
        assert Job(capacity_mib=1, flow="2D", tile_size=256) == Job(
            capacity_mib=1, flow="2D"
        )
        assert Job(capacity_mib=1, flow="2D", arch={}) == Job(
            capacity_mib=1, flow="2D"
        )

    def test_extended_job_roundtrips_through_records(self):
        job = Job(
            capacity_mib=2,
            flow="3D",
            tile_size=192,
            arch={"core_kge": 75.0},
            target_frequency_mhz=900.0,
        )
        point = evaluate_job(job)
        record = json.loads(json.dumps(point_to_record(job, point)))
        assert Job.from_params(record["job"]) == job
        assert record_to_point(record) == point


class TestResultCache:
    def test_put_get_and_persistence(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = {"key": "k1", "status": "ok", "metrics": {}}
        cache.put(record)
        assert cache.get("k1") == record
        assert "k1" in cache and len(cache) == 1
        assert ResultCache(tmp_path).get("k1") == record

    def test_last_record_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put({"key": "k", "v": 1})
        cache.put({"key": "k", "v": 2})
        assert ResultCache(tmp_path).get("k")["v"] == 2

    def test_tolerates_torn_final_line(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put({"key": "k", "v": 1})
        with cache.path.open("a") as fh:
            fh.write('{"key": "torn", "v"')  # interrupted write
        assert ResultCache(tmp_path).get("k")["v"] == 1
        assert ResultCache(tmp_path).get("torn") is None

    def test_rejects_keyless_record(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).put({"status": "ok"})


def _fail_on_8mib(job):
    """Deterministically fail a subset of jobs (picklable, module-level)."""
    if job.capacity_mib == 8:
        raise RuntimeError("injected failure")
    return evaluate_job(job)


class TestSweepExecutor:
    def test_serial_run_matches_explorer(self, tmp_path):
        outcome = SweepExecutor(cache=ResultCache(tmp_path)).run(
            SweepSpec(bandwidths=(16.0,))
        )
        assert outcome.stats.evaluated == 8
        assert outcome.stats.failed == 0
        serial = {p.config.name: p for p in Explorer(bandwidth=16.0).explore()}
        for point in outcome.points():
            assert point == serial[point.config.name]

    def test_parallel_equals_serial(self, tmp_path):
        serial = SweepExecutor(workers=0).run(SMALL)
        parallel = SweepExecutor(workers=2).run(SMALL)
        assert serial.stats.evaluated == parallel.stats.evaluated == 8
        assert [r["key"] for r in serial.records] == [
            r["key"] for r in parallel.records
        ]
        assert serial.points() == parallel.points()

    def test_rerun_is_pure_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = SweepExecutor(cache=cache).run(SMALL)
        second = SweepExecutor(cache=cache).run(SMALL)
        assert first.stats.evaluated == 8
        assert second.stats.evaluated == 0
        assert second.stats.cached == 8
        assert second.points() == first.points()

    def test_cache_shared_between_worker_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(cache=cache, workers=2).run(SMALL)
        resumed = SweepExecutor(cache=cache, workers=0).run(SMALL)
        assert resumed.stats.evaluated == 0

    def test_resume_after_partial_failure(self, tmp_path):
        cache = ResultCache(tmp_path)
        broken = SweepExecutor(cache=cache, evaluate=_fail_on_8mib).run(SMALL)
        assert broken.stats.failed == 4  # 8 MiB x 2 flows x 2 bandwidths
        assert broken.stats.evaluated == 8
        assert all("injected failure" in r["error"] for r in broken.failures)
        # Failures stayed out of the cache: the retry evaluates exactly them.
        healed = SweepExecutor(cache=cache).run(SMALL)
        assert healed.stats.cached == 4
        assert healed.stats.evaluated == 4
        assert healed.stats.failed == 0

    def test_parallel_failure_capture(self, tmp_path):
        outcome = SweepExecutor(workers=2, evaluate=_fail_on_8mib).run(SMALL)
        assert outcome.stats.failed == 4
        assert len(outcome.ok_records) == 4

    def test_store_logs_every_record(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        store = ResultStore(tmp_path / "results.jsonl")
        SweepExecutor(cache=cache, store=store).run(SMALL)
        SweepExecutor(cache=cache, store=store).run(SMALL)
        records = store.load()
        assert len(records) == 16  # both runs logged, cache hits included
        assert {r["source"] for r in records} == {"evaluated", "cache"}
        assert len(store.latest()) == 8

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=-1)
        with pytest.raises(ValueError):
            SweepExecutor(chunksize=0)


def _const_cycles(scenario):
    """Module-level workload plugin (picklable by reference into workers)."""
    return 1.0e6 * scenario.capacity_mib


class TestPluginSweepAcrossProcesses:
    """Runtime-registered workloads must survive spawn-started workers."""

    def test_spawn_workers_see_parent_registered_workload(self):
        import multiprocessing

        from repro.api import WORKLOADS, register_workload

        register_workload("spawned_wl")(_const_cycles)
        try:
            jobs = [
                Job(capacity_mib=1, flow="3D", kernel="spawned_wl"),
                Job(capacity_mib=2, flow="3D", kernel="spawned_wl"),
            ]
            outcome = SweepExecutor(
                workers=2, mp_context=multiprocessing.get_context("spawn")
            ).run(jobs)
            assert outcome.stats.failed == 0
            assert [r["metrics"]["cycles"] for r in outcome.ok_records] == [
                1.0e6,
                2.0e6,
            ]
        finally:
            WORKLOADS.unregister("spawned_wl")

    def test_unpicklable_workload_fails_per_job_not_fatally(self):
        """A lambda workload cannot reach spawn workers: each job must
        become a failure record — never a traceback killing the sweep."""
        import multiprocessing

        from repro.api import WORKLOADS, register_workload

        register_workload("lambda_wl")(lambda scenario: 1.0)
        try:
            jobs = [Job(capacity_mib=1, flow="2D", kernel="lambda_wl")]
            outcome = SweepExecutor(
                workers=2, mp_context=multiprocessing.get_context("spawn")
            ).run(jobs)
            assert outcome.stats.failed == 1
            assert "unknown workload" in outcome.failures[0]["error"]
        finally:
            WORKLOADS.unregister("lambda_wl")


class TestRecords:
    def test_point_record_roundtrip(self):
        job = Job(capacity_mib=2, flow="3D", bandwidth=8)
        point = evaluate_job(job)
        rebuilt = record_to_point(
            json.loads(json.dumps(point_to_record(job, point)))
        )
        assert rebuilt == point

    def test_record_to_point_rejects_failures(self):
        with pytest.raises(ValueError):
            record_to_point({"status": "error", "job": {}})


class TestReport:
    @pytest.fixture(scope="class")
    def records(self):
        return SweepExecutor().run(SMALL).records

    def test_rank_orders_by_objective(self, records):
        ranked = rank(records, "edp")
        values = [p.edp for _, p in ranked]
        assert values == sorted(values)

    def test_rank_rejects_unknown_objective(self, records):
        with pytest.raises(ValueError):
            rank(records, "beauty")

    def test_summary_names_winners_and_failures(self, records):
        text = summarize(records)
        assert "best performance" in text
        assert "Pareto front" in text
        assert "failures" not in text
        failed = records + [
            {"status": "error", "job": Job(1, "2D").params(), "error": "boom"}
        ]
        assert "failures (1)" in summarize(failed)
