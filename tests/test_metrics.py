"""Tests for repro.core.metrics."""

import pytest

from repro.core.metrics import (
    GroupResult,
    KernelMetrics,
    as_table,
    gain,
    normalize,
    variation,
)


def make_result(name="g", fp=100.0, area=None, freq=1000.0, power=500.0,
                tns=-10.0, failing=5, buffers=1000, bumps=0, wl=1e6, density=0.5):
    return GroupResult(
        name=name,
        footprint_um2=fp,
        combined_area_um2=area if area is not None else fp,
        wire_length_um=wl,
        density=density,
        num_buffers=buffers,
        num_f2f_bumps=bumps,
        frequency_mhz=freq,
        total_negative_slack_ps=tns,
        failing_paths=failing,
        power_mw=power,
    )


class TestGroupResult:
    def test_period_and_pdp(self):
        r = make_result(freq=1000.0, power=500.0)
        assert r.period_ps == pytest.approx(1000.0)
        assert r.power_delay_product == pytest.approx(500.0 * 1000.0)

    def test_rejects_positive_tns(self):
        with pytest.raises(ValueError):
            make_result(tns=5.0)

    def test_rejects_combined_area_below_footprint(self):
        with pytest.raises(ValueError):
            make_result(fp=100.0, area=50.0)

    def test_rejects_density_above_one(self):
        with pytest.raises(ValueError):
            make_result(density=1.2)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            make_result(power=0.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            make_result(buffers=-1)


class TestNormalize:
    def test_baseline_normalizes_to_one(self):
        base = make_result()
        n = normalize(base, base)
        assert n.footprint == pytest.approx(1.0)
        assert n.frequency == pytest.approx(1.0)
        assert n.power == pytest.approx(1.0)
        assert n.power_delay_product == pytest.approx(1.0)
        assert n.total_negative_slack == pytest.approx(-1.0)

    def test_tns_normalized_by_magnitude(self):
        base = make_result(tns=-10.0)
        other = make_result(name="o", tns=-25.0)
        n = normalize(other, base)
        assert n.total_negative_slack == pytest.approx(-2.5)

    def test_zero_baseline_tns(self):
        base = make_result(tns=0.0)
        clean = normalize(make_result(name="c", tns=0.0), base)
        assert clean.total_negative_slack == 0.0
        dirty = normalize(make_result(name="d", tns=-5.0), base)
        assert dirty.total_negative_slack == float("-inf")

    def test_density_stays_absolute(self):
        base = make_result(density=0.5)
        n = normalize(make_result(name="o", density=0.6), base)
        assert n.density == pytest.approx(0.6)

    def test_f2f_against_zero_baseline_reports_absolute(self):
        base = make_result(bumps=0)
        n = normalize(make_result(name="o", bumps=80_000), base)
        assert n.num_f2f_bumps == pytest.approx(80_000)

    def test_pdp_equals_power_over_frequency_ratio(self):
        base = make_result(freq=1000.0, power=500.0)
        other = make_result(name="o", freq=875.0, power=564.5)
        n = normalize(other, base)
        assert n.power_delay_product == pytest.approx(n.power / n.frequency)


class TestKernelMetrics:
    def test_runtime_and_performance(self):
        m = KernelMetrics(name="k", cycles=1e9, frequency_mhz=1000.0, power_mw=500.0)
        assert m.runtime_s == pytest.approx(1.0)
        assert m.performance == pytest.approx(1.0)

    def test_energy_and_efficiency(self):
        m = KernelMetrics(name="k", cycles=1e9, frequency_mhz=1000.0, power_mw=500.0)
        assert m.energy_j == pytest.approx(0.5)
        assert m.energy_efficiency == pytest.approx(2.0)

    def test_edp(self):
        m = KernelMetrics(name="k", cycles=2e9, frequency_mhz=1000.0, power_mw=250.0)
        assert m.edp == pytest.approx(m.energy_j * m.runtime_s)

    def test_faster_clock_improves_performance_and_edp(self):
        slow = KernelMetrics(name="s", cycles=1e9, frequency_mhz=875.0, power_mw=500.0)
        fast = KernelMetrics(name="f", cycles=1e9, frequency_mhz=955.0, power_mw=500.0)
        assert fast.performance > slow.performance
        assert fast.edp < slow.edp

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            KernelMetrics(name="k", cycles=0, frequency_mhz=1.0, power_mw=1.0)


class TestGain:
    def test_gain_sign(self):
        assert gain(1.1, 1.0) == pytest.approx(0.1)
        assert gain(0.9, 1.0) == pytest.approx(-0.1)

    def test_variation_alias(self):
        assert variation(1.2, 1.0) == gain(1.2, 1.0)

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            gain(1.0, 0.0)


class TestAsTable:
    def test_empty(self):
        assert as_table([]) == "(no results)"

    def test_contains_names_and_metrics(self):
        base = make_result(name="base")
        text = as_table([normalize(base, base)])
        assert "base" in text
        assert "footprint" in text
        assert "power_delay_product" in text
