"""Direct tests for repro.sweep.report — labels, ranking, summaries."""

import pytest

from repro.core.explorer import pareto_front
from repro.sweep import (
    Job,
    SweepExecutor,
    SweepSpec,
    failure_record,
    format_table,
    labeled_points,
    rank,
    summarize,
)


@pytest.fixture(scope="module")
def mixed_records():
    """A small grid's records plus two injected failures, interleaved."""
    ok = SweepExecutor().run(
        SweepSpec(capacities_mib=(1, 4), bandwidths=(4.0, 64.0))
    ).records
    boom = failure_record(
        Job(capacity_mib=8, flow="3D", bandwidth=4.0), RuntimeError("boom")
    )
    crash = failure_record(
        Job(capacity_mib=8, flow="2D", bandwidth=64.0), ValueError("crash")
    )
    return [boom] + ok[:4] + [crash] + ok[4:]


class TestLabeledPoints:
    def test_preserves_input_order_and_skips_failures(self, mixed_records):
        pairs = labeled_points(mixed_records)
        assert len(pairs) == 8  # failures dropped
        ok_labels = [
            Job.from_params(r["job"]).label
            for r in mixed_records
            if r["status"] == "ok"
        ]
        assert [label for label, _ in pairs] == ok_labels

    def test_labels_carry_flow_capacity_and_bandwidth(self, mixed_records):
        labels = {label for label, _ in labeled_points(mixed_records)}
        assert "MemPool-3D-4MiB@64B/c" in labels
        assert "MemPool-2D-1MiB@4B/c" in labels

    def test_empty_input(self):
        assert labeled_points([]) == []


class TestRank:
    def test_orders_best_first_per_objective(self, mixed_records):
        for objective, reverse in (("edp", False), ("performance", True)):
            ranked = rank(mixed_records, objective)
            values = [getattr(p, objective) for _, p in ranked]
            assert values == sorted(values, reverse=reverse)

    def test_unknown_objective_error_names_choices(self, mixed_records):
        with pytest.raises(ValueError, match="beauty"):
            rank(mixed_records, "beauty")

    def test_failures_never_ranked(self, mixed_records):
        assert len(rank(mixed_records, "edp")) == 8


class TestFormatTable:
    def test_renders_rows_and_header(self, mixed_records):
        text = format_table(labeled_points(mixed_records))
        assert "EDP Js" in text
        assert text.count("\n") == 8  # header + 8 rows

    def test_empty(self):
        assert format_table([]) == "(no results)"


class TestSummarize:
    def test_mixed_records_report_winners_front_and_failures(
        self, mixed_records
    ):
        text = summarize(mixed_records)
        assert "best edp:" in text
        assert "best performance:" in text
        assert "Pareto front" in text
        assert "failures (2):" in text
        assert "RuntimeError: boom" in text
        assert "ValueError: crash" in text

    def test_summary_front_matches_pareto_front(self, mixed_records):
        pairs = labeled_points(mixed_records)
        front = pareto_front([p for _, p in pairs])
        text = summarize(mixed_records)
        front_block = text.split("Pareto front:")[1].split("failures")[0]
        assert front_block.count("perf") == len(front)

    def test_all_failed(self):
        records = [
            failure_record(Job(capacity_mib=1, flow="2D"), RuntimeError("x"))
        ]
        text = summarize(records)
        assert "(no successful results)" in text
        assert "failures (1):" in text
