"""Tests for repro.core.partition — the paper's partitioning scheme."""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.core.partition import (
    TilePartition,
    adjusted_partition,
    default_partition,
    select_partition,
)
from repro.physical.netlist import build_tile_netlist


def config(cap, flow=Flow.FLOW_3D):
    return MemPoolConfig(capacity_mib=cap, flow=flow)


class TestTilePartition:
    def test_default_flag(self):
        assert TilePartition(16, 0, True).is_default
        assert not TilePartition(15, 1, False).is_default

    def test_total_banks(self):
        assert TilePartition(15, 1, False).total_banks == 16

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TilePartition(-1, 0, True)

    def test_rejects_no_banks(self):
        with pytest.raises(ValueError):
            TilePartition(0, 0, True)


class TestNamedPartitions:
    def test_default_partition(self):
        p = default_partition(config(1))
        assert p.spm_banks_on_memory_die == 16
        assert p.icache_on_memory_die

    def test_adjusted_partition(self):
        p = adjusted_partition(config(8))
        assert p.spm_banks_on_memory_die == 15
        assert p.spm_banks_on_logic_die == 1
        assert not p.icache_on_memory_die

    def test_adjusted_bounds(self):
        with pytest.raises(ValueError):
            adjusted_partition(config(8), banks_moved=0)
        with pytest.raises(ValueError):
            adjusted_partition(config(8), banks_moved=16)


class TestSelectPartition:
    """Reproduces Section IV's scheme selection from the macro areas."""

    @pytest.mark.parametrize("cap", [1, 2, 4])
    def test_small_capacities_keep_default(self, cap):
        cfg = config(cap)
        netlist = build_tile_netlist(cfg)
        p = select_partition(
            cfg,
            bank_area_um2=netlist.spm_macros[0].area_um2,
            icache_area_um2=sum(m.area_um2 for m in netlist.icache_macros),
            logic_die_area_um2=netlist.logic_area_um2 / 0.9,
        )
        assert p.is_default

    def test_8mib_moves_one_bank(self):
        cfg = config(8)
        netlist = build_tile_netlist(cfg)
        p = select_partition(
            cfg,
            bank_area_um2=netlist.spm_macros[0].area_um2,
            icache_area_um2=sum(m.area_um2 for m in netlist.icache_macros),
            logic_die_area_um2=netlist.logic_area_um2 / 0.9,
        )
        assert p.spm_banks_on_memory_die == 15
        assert not p.icache_on_memory_die

    def test_huge_macros_move_more_banks(self):
        cfg = config(1)
        p = select_partition(
            cfg,
            bank_area_um2=50_000.0,
            icache_area_um2=10_000.0,
            logic_die_area_um2=200_000.0,
        )
        assert p.spm_banks_on_logic_die >= 1

    def test_extreme_macros_converge_to_heavy_move(self):
        # Moving banks to the logic die grows its budget, so the balance
        # rule always converges; absurd macro sizes end with nearly all
        # banks on the logic die.
        cfg = config(1)
        p = select_partition(
            cfg,
            bank_area_um2=1e9,
            icache_area_um2=0.0,
            logic_die_area_um2=1.0,
        )
        assert p.spm_banks_on_logic_die >= p.spm_banks_on_memory_die

    def test_validates_inputs(self):
        cfg = config(1)
        with pytest.raises(ValueError):
            select_partition(cfg, bank_area_um2=0, icache_area_um2=0, logic_die_area_um2=1)
        with pytest.raises(ValueError):
            select_partition(
                cfg, bank_area_um2=1, icache_area_um2=0, logic_die_area_um2=1,
                balance_limit=0.5,
            )
