"""Tests for the clock-tree, cost, and DMA extensions."""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.physical.clocktree import synthesize_clock_tree
from repro.physical.cost import (
    CostModelParams,
    analyze_cost,
    cost_ratio_3d_over_2d,
    dies_per_wafer,
    murphy_yield,
)
from repro.physical.flow2d import implement_group_2d
from repro.physical.flow3d import implement_group_3d
from repro.physical.technology import DEFAULT_TECHNOLOGY, make_stack


class TestClockTree:
    def make(self, width=3000.0, height=3000.0, sinks=10_000):
        return synthesize_clock_tree(
            width, height, sinks, DEFAULT_TECHNOLOGY, make_stack("M8")
        )

    def test_structure(self):
        tree = self.make()
        assert tree.levels >= 2
        assert tree.buffers > tree.levels
        assert tree.wirelength_um > 3000.0

    def test_more_sinks_deeper_tree(self):
        small = self.make(sinks=100)
        large = self.make(sinks=100_000)
        assert large.levels >= small.levels
        assert large.buffers > small.buffers

    def test_bigger_die_more_wire_and_delay(self):
        small = self.make(width=2000, height=2000)
        large = self.make(width=4000, height=4000)
        assert large.wirelength_um > small.wirelength_um
        assert large.insertion_delay_ps > small.insertion_delay_ps

    def test_skew_smaller_than_insertion(self):
        tree = self.make()
        assert 0 < tree.skew_ps < tree.insertion_delay_ps

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            self.make(width=0)
        with pytest.raises(ValueError):
            self.make(sinks=0)


class TestYieldModel:
    def test_murphy_yield_bounds(self):
        assert murphy_yield(1e-9, 0.25) == pytest.approx(1.0, abs=1e-6)
        assert 0 < murphy_yield(500.0, 0.25) < murphy_yield(50.0, 0.25) < 1

    def test_zero_defects_perfect_yield(self):
        assert murphy_yield(100.0, 0.0) == 1.0

    def test_dies_per_wafer_decreases_with_area(self):
        assert dies_per_wafer(10.0, 300) > dies_per_wafer(100.0, 300)

    def test_dies_per_wafer_sane_magnitude(self):
        # A ~100 mm^2 die on a 300 mm wafer: several hundred dies.
        assert 400 < dies_per_wafer(100.0, 300) < 800

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            murphy_yield(0, 0.25)
        with pytest.raises(ValueError):
            dies_per_wafer(0, 300)


class TestCostAnalysis:
    @pytest.fixture(scope="class")
    def pair(self):
        g3 = implement_group_3d(MemPoolConfig(4, Flow.FLOW_3D))
        g2 = implement_group_2d(MemPoolConfig(4, Flow.FLOW_2D))
        return g3, g2

    def test_3d_uses_two_smaller_dies(self, pair):
        g3, g2 = pair
        c3, c2 = analyze_cost(g3), analyze_cost(g2)
        assert c3.dies == 2 and c2.dies == 1
        assert c3.die_area_mm2 < c2.die_area_mm2
        assert c3.dies_per_wafer > c2.dies_per_wafer

    def test_smaller_die_yields_better(self, pair):
        g3, g2 = pair
        assert analyze_cost(g3).die_yield > analyze_cost(g2).die_yield

    def test_3d_unit_yield_includes_bonding(self, pair):
        g3, _ = pair
        c3 = analyze_cost(g3)
        assert c3.unit_yield < c3.die_yield**2 + 1e-12

    def test_cost_ratio_moderate(self, pair):
        g3, g2 = pair
        ratio = cost_ratio_3d_over_2d(g3, g2)
        # Two dies cost more, but yield pulls the ratio well below 2x.
        assert 1.0 < ratio < 2.0

    def test_defect_density_penalizes_w2w_bonding(self, pair):
        # Wafer-to-wafer bonding joins *untested* dies: the unit needs two
        # good dies, so although each 3D die is smaller and yields better,
        # rising defect density still widens the 3D cost gap.  (This is
        # the classic argument for known-good-die / die-to-wafer flows.)
        g3, g2 = pair
        clean = cost_ratio_3d_over_2d(g3, g2, CostModelParams(defect_density_per_cm2=0.05))
        dirty = cost_ratio_3d_over_2d(g3, g2, CostModelParams(defect_density_per_cm2=1.0))
        assert dirty > clean

    def test_argument_order_enforced(self, pair):
        g3, g2 = pair
        with pytest.raises(ValueError):
            cost_ratio_3d_over_2d(g2, g3)


class TestDMA:
    @pytest.fixture
    def cluster(self):
        from repro.arch.cluster import MemPoolCluster

        return MemPoolCluster(MemPoolConfig(1, Flow.FLOW_2D))

    def test_fill_writes_data(self, cluster):
        from repro.simulator.dma import dma_fill

        payload = [i * 7 + 1 for i in range(256)]
        cycles = dma_fill(cluster, 0, payload, bandwidth_bytes_per_cycle=16)
        assert cluster.read_words(0, 256) == payload
        # 256 words at 4 words/cycle: at least 64 cycles.
        assert cycles >= 64

    def test_bandwidth_bounds_cycles(self, cluster):
        from repro.arch.cluster import MemPoolCluster
        from repro.simulator.dma import dma_fill

        payload = list(range(512))
        fast_cluster = MemPoolCluster(cluster.config)
        slow = dma_fill(cluster, 0, payload, bandwidth_bytes_per_cycle=8)
        fast = dma_fill(fast_cluster, 0, payload, bandwidth_bytes_per_cycle=64)
        assert fast < slow

    def test_readback_transfer(self, cluster):
        from repro.simulator.dma import DMACore, DMARequest

        cluster.write_words(128, [5, 6, 7, 8])
        dma = DMACore(cluster, bandwidth_bytes_per_cycle=16)
        request = DMARequest(spm_address=128, words=4, to_spm=False)
        dma.enqueue(request)
        cycle = 0
        while not dma.halted:
            dma.step(cycle)
            cycle += 1
        assert request.data == [5, 6, 7, 8]

    def test_competes_with_cores_for_banks(self, cluster):
        # A core hammering bank 0 forces DMA retries on that bank.
        from repro.simulator.dma import DMACore, DMARequest

        dma = DMACore(cluster, bandwidth_bytes_per_cycle=16)
        dma.enqueue(DMARequest(spm_address=0, words=64, to_spm=True, data=[1] * 64))
        cycle = 0
        while not dma.halted:
            # Steal bank 0 of tile 0 on even cycles before the DMA runs.
            if cycle % 2 == 0:
                cluster.tile(0).access(cycle, 0, 0, write=False)
            dma.step(cycle)
            cycle += 1
            assert cycle < 10_000
        assert dma.stats.stall_cycles > 0
        assert cluster.read_words(0, 64) == [1] * 64

    def test_request_validation(self):
        from repro.simulator.dma import DMARequest

        with pytest.raises(ValueError):
            DMARequest(spm_address=2, words=4, to_spm=False)
        with pytest.raises(ValueError):
            DMARequest(spm_address=0, words=0, to_spm=False)
        with pytest.raises(ValueError):
            DMARequest(spm_address=0, words=4, to_spm=True, data=[1])
