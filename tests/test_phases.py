"""Tests for repro.kernels.phases — the Figure 6 cycle model."""

import pytest

from repro.kernels.phases import (
    DEFAULT_PHASE_PARAMS,
    PhaseModelParams,
    matmul_cycles,
    speedup,
)
from repro.kernels.tiling import paper_tiling
from repro.simulator.memsys import OffChipMemory


class TestParams:
    def test_defaults_documented(self):
        assert DEFAULT_PHASE_PARAMS.cpi_mac == pytest.approx(2.9)
        assert DEFAULT_PHASE_PARAMS.phase_overhead_cycles == pytest.approx(10_000.0)
        assert DEFAULT_PHASE_PARAMS.num_cores == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseModelParams(cpi_mac=0)
        with pytest.raises(ValueError):
            PhaseModelParams(phase_overhead_cycles=-1)
        with pytest.raises(ValueError):
            PhaseModelParams(num_cores=0)


class TestMatmulCycles:
    def test_breakdown_sums(self):
        plan = paper_tiling(1)
        memory = OffChipMemory(bandwidth_bytes_per_cycle=16)
        b = matmul_cycles(plan, memory)
        assert b.total == pytest.approx(
            b.memory_cycles + b.compute_cycles + b.overhead_cycles + b.writeback_cycles
        )
        assert 0 < b.memory_fraction < 1

    def test_higher_bandwidth_fewer_cycles(self):
        plan = paper_tiling(1)
        slow = matmul_cycles(plan, OffChipMemory(bandwidth_bytes_per_cycle=4))
        fast = matmul_cycles(plan, OffChipMemory(bandwidth_bytes_per_cycle=64))
        assert fast.total < slow.total
        assert fast.memory_fraction < slow.memory_fraction

    def test_bigger_spm_fewer_cycles(self):
        memory = OffChipMemory(bandwidth_bytes_per_cycle=16)
        small = matmul_cycles(paper_tiling(1), memory)
        large = matmul_cycles(paper_tiling(8), memory)
        assert large.total < small.total

    def test_compute_cycles_independent_of_tile_size(self):
        # Total MACs are fixed at M^3; only overheads and memory change.
        memory = OffChipMemory(bandwidth_bytes_per_cycle=16)
        a = matmul_cycles(paper_tiling(1), memory)
        b = matmul_cycles(paper_tiling(8), memory)
        assert a.compute_cycles == pytest.approx(b.compute_cycles, rel=1e-9)

    def test_overhead_shrinks_with_bigger_tiles(self):
        memory = OffChipMemory(bandwidth_bytes_per_cycle=16)
        a = matmul_cycles(paper_tiling(1), memory)
        b = matmul_cycles(paper_tiling(8), memory)
        assert b.overhead_cycles < a.overhead_cycles


class TestPaperHeadlines:
    """Section VI-A's reported speedups for 8 MiB over 1 MiB."""

    @pytest.mark.parametrize("bw,expected,tol", [(4, 0.43, 0.02), (16, 0.16, 0.02), (64, 0.08, 0.02)])
    def test_speedup_8mib_over_1mib(self, bw, expected, tol):
        memory = OffChipMemory(bandwidth_bytes_per_cycle=bw)
        c1 = matmul_cycles(paper_tiling(1), memory).total
        c8 = matmul_cycles(paper_tiling(8), memory).total
        assert c1 / c8 - 1.0 == pytest.approx(expected, abs=tol)

    def test_memory_phase_dominates_at_low_bandwidth(self):
        b = matmul_cycles(paper_tiling(1), OffChipMemory(bandwidth_bytes_per_cycle=4))
        assert b.memory_fraction > 0.3


class TestSpeedup:
    def test_definition(self):
        assert speedup(200.0, 100.0) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(0, 10)
        with pytest.raises(ValueError):
            speedup(10, 0)
