"""Tests for the workload-characterization experiment."""

import pytest

from repro.experiments.workloads_table import (
    KERNELS,
    WorkloadCharacterization,
    characterize,
    format_rows,
    run,
)


@pytest.fixture(scope="module")
def rows():
    return run(core_counts=(4, 16))


class TestCharacterization:
    def test_covers_all_kernels(self, rows):
        assert {r.kernel for r in rows} == set(KERNELS)

    def test_locality_fractions_sum_to_one(self, rows):
        for r in rows:
            total = r.local_fraction + r.group_fraction + r.cluster_fraction
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_conflicts_stay_low_for_streaming_kernels(self, rows):
        # The design property MemPool is built around: interleaving keeps
        # streaming kernels nearly conflict-free.
        for r in rows:
            if r.kernel != "matvec":
                assert r.conflict_rate < 0.08, r

    def test_matvec_broadcast_reads_create_hotspot(self, rows):
        # matvec is the exception: every core walks the *same* x vector in
        # lockstep, so its banks serialize — visibly above dotp's rate.
        by = {(r.kernel, r.num_cores): r for r in rows}
        assert (
            by[("matvec", 16)].conflict_rate > 2 * by[("dotp", 16)].conflict_rate
        )

    def test_more_cores_more_throughput(self, rows):
        by_kernel = {}
        for r in rows:
            by_kernel.setdefault(r.kernel, {})[r.num_cores] = r
        for kernel, runs in by_kernel.items():
            if len(runs) == 2:
                assert runs[16].cycles <= runs[4].cycles, kernel

    def test_ipc_positive_and_bounded(self, rows):
        for r in rows:
            assert 0 < r.ipc <= r.num_cores

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            characterize("fft", 4)

    def test_format(self, rows):
        text = format_rows(rows)
        assert "matmul" in text
        assert "IPC" in text

    def test_row_type(self, rows):
        assert all(isinstance(r, WorkloadCharacterization) for r in rows)
