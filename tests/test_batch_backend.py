"""The ``batched`` execution backend: grouping, fallback, and parity.

The backend is only allowed to *reorganise* work, never change it: every
record it produces must equal the record the ``serial`` backend writes
for the same job, byte for byte — including jobs it cannot batch (no
fleet preparer) and flow variants that share a ``cycles_key`` with a
batched lane.  Alongside parity, this file covers the compatibility-key
contract (REP008), the sidecar batch counters, and the trajectory gate
that turns a diverged-lane fleet benchmark into a blocking problem.
"""

import json

import pytest

from repro.engine import (
    BatchedBackend,
    Engine,
    batch_compatibility_key,
    cache_stats,
    record_batch_stats,
)
from repro.engine.cache import stage_cache_for
from repro.obs.report import (
    _fleet_summary,
    append_trajectory,
    check_trajectory,
)
from repro.sweep import Job, ResultCache


def _grid_jobs():
    jobs = []
    for dim in (96, 128, 160, 192):
        for kernel in ("dotp", "axpy"):
            jobs.append(Job(capacity_mib=1, flow="2D", matrix_dim=dim,
                            num_cores=16, kernel=kernel))
    # Analytic matmul has no fleet preparer: must fall back serially.
    jobs.append(Job(capacity_mib=1, flow="2D", matrix_dim=512,
                    kernel="matmul"))
    # A 3D flow variant shares its cycles_key with the 2D dotp dim=96
    # lane: one simulated lane must serve both records.
    jobs.append(Job(capacity_mib=1, flow="3D", matrix_dim=96, num_cores=16,
                    kernel="dotp"))
    return jobs


def _run(backend, cache_dir, jobs):
    engine = Engine(backend=backend, cache=ResultCache(str(cache_dir)))
    return {record["key"]: record
            for _job, record in engine.run_many(jobs)}


def _flush(cache_dir):
    stage_cache_for(str(cache_dir)).flush_stats()


class TestCompatibilityKey:
    def test_same_key_iff_same_cycles_inputs(self):
        base = Job(capacity_mib=1, flow="2D", matrix_dim=96, num_cores=16,
                   kernel="dotp").scenario()
        flow_variant = Job(capacity_mib=1, flow="3D", matrix_dim=96,
                           num_cores=16, kernel="dotp").scenario()
        other_cores = Job(capacity_mib=1, flow="2D", matrix_dim=96,
                          num_cores=64, kernel="dotp").scenario()
        other_kernel = Job(capacity_mib=1, flow="2D", matrix_dim=96,
                           num_cores=16, kernel="axpy").scenario()
        key = batch_compatibility_key(base)
        # Flow (a physical-layer knob) must NOT split batches: cycle
        # counts do not depend on it, so the lanes are interchangeable.
        assert batch_compatibility_key(flow_variant) == key
        assert batch_compatibility_key(other_cores) != key
        assert batch_compatibility_key(other_kernel) != key

    def test_key_ignores_matrix_dim_by_design(self):
        # matrix_dim feeds the workload plugin, not the compatibility
        # key: different dims still simulate together (mixed-retirement
        # lanes), they just produce different cycles_keys.
        a = Job(capacity_mib=1, flow="2D", matrix_dim=96, num_cores=16,
                kernel="dotp").scenario()
        b = Job(capacity_mib=1, flow="2D", matrix_dim=192, num_cores=16,
                kernel="dotp").scenario()
        assert batch_compatibility_key(a) == batch_compatibility_key(b)


class TestBackendParity:
    def test_records_identical_to_serial(self, tmp_path):
        jobs = _grid_jobs()
        serial = _run("serial", tmp_path / "serial", jobs)
        batched = _run("batched", tmp_path / "batched", jobs)
        assert set(serial) == set(batched)
        for key in serial:
            assert batched[key] == serial[key], key

    def test_batch_counters_recorded(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _run("batched", cache_dir, _grid_jobs())
        _flush(cache_dir)
        stats = cache_stats(str(cache_dir))
        assert stats["batches_formed"] >= 1
        assert stats["batch_lanes"] >= 8
        assert stats["batch_fallbacks"] >= 1  # the matmul job
        assert stats["batch_mean_occupancy"] == pytest.approx(
            stats["batch_lanes"] / stats["batches_formed"]
        )

    def test_warm_rerun_forms_no_batches(self, tmp_path):
        cache_dir = tmp_path / "cache"
        jobs = _grid_jobs()
        _run("batched", cache_dir, jobs)
        _flush(cache_dir)
        before = cache_stats(str(cache_dir))["batches_formed"]
        warm = _run("batched", cache_dir, jobs)
        assert all(r["source"] == "cache" for r in warm.values())
        _flush(cache_dir)
        assert cache_stats(str(cache_dir))["batches_formed"] == before

    def test_chunksize_caps_lanes_per_fleet(self, tmp_path):
        jobs = [Job(capacity_mib=1, flow="2D", matrix_dim=dim,
                    num_cores=16, kernel="dotp")
                for dim in (96, 128, 160, 192)]
        cache_dir = tmp_path / "cache"
        engine = Engine(backend="batched", cache=ResultCache(str(cache_dir)),
                        chunksize=2)
        records = {r["key"]: r for _j, r in engine.run_many(jobs)}
        assert len(records) == 4
        _flush(cache_dir)
        stats = cache_stats(str(cache_dir))
        assert stats["batches_formed"] == 2
        assert stats["batch_lanes"] == 4

    def test_chunksize_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchedBackend(chunksize=0)

    def test_single_lane_group_falls_back(self, tmp_path):
        # One cache-miss job below MIN_FLEET_LANES: serial path, but the
        # record is still produced and counted as a fallback, not a batch.
        cache_dir = tmp_path / "cache"
        records = _run("batched", cache_dir,
                       [Job(capacity_mib=1, flow="2D", matrix_dim=96,
                            num_cores=16, kernel="dotp")])
        assert len(records) == 1
        _flush(cache_dir)
        stats = cache_stats(str(cache_dir))
        assert stats["batches_formed"] == 0
        assert stats["batch_fallbacks"] == 1


class TestBatchStatsSidecar:
    def test_record_batch_stats_merges(self, tmp_path):
        record_batch_stats(str(tmp_path), batches=2, lanes=7, fallbacks=1)
        record_batch_stats(str(tmp_path), batches=1, lanes=3)
        stats = cache_stats(str(tmp_path))
        assert stats["batches_formed"] == 3
        assert stats["batch_lanes"] == 10
        assert stats["batch_fallbacks"] == 1
        assert stats["batch_mean_occupancy"] == pytest.approx(10 / 3)

    def test_all_zero_is_a_noop(self, tmp_path):
        record_batch_stats(str(tmp_path))
        stats = cache_stats(str(tmp_path))
        assert stats["batches_formed"] == 0
        assert stats["batch_mean_occupancy"] is None


def _fleet_doc(identical: bool) -> dict:
    return {
        "benchmark": "fleet batched-vs-fast",
        "results": {
            "lockstep": {"lanes": 64, "serial_s": 1.0, "batched_s": 0.25,
                         "speedup": 4.0, "identical": identical,
                         "lanes_verified": 128},
            "mixed": {"lanes": 32, "serial_s": 0.5, "batched_s": 0.4,
                      "speedup": 1.25, "identical": True,
                      "lanes_verified": 64},
        },
    }


class TestTrajectoryFleetGate:
    def test_fleet_summary_shape(self):
        summary = _fleet_summary(_fleet_doc(identical=True))
        assert summary["speedups"] == {"lockstep": 4.0, "mixed": 1.25}
        assert summary["lanes_identical"] is True
        assert 2.0 < summary["geomean_speedup"] < 2.5

    def test_append_and_pass(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        entry = append_trajectory(path, fleet=_fleet_doc(identical=True),
                                  label="t0")
        assert entry["fleet"]["lanes_identical"] is True
        assert check_trajectory(path) == []

    def test_diverged_lanes_block(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        append_trajectory(path, fleet=_fleet_doc(identical=True), label="t0")
        append_trajectory(path, fleet=_fleet_doc(identical=False), label="t1")
        problems = check_trajectory(path)
        assert problems, "diverged fleet lanes must fail the gate"
        assert any("identical" in p or "bit-for-bit" in p for p in problems)

    def test_fleet_artifact_roundtrip(self, tmp_path):
        artifact = tmp_path / "BENCH_fleet.json"
        artifact.write_text(json.dumps(_fleet_doc(identical=True)),
                            encoding="utf-8")
        path = tmp_path / "BENCH_trajectory.json"
        entry = append_trajectory(path, fleet=artifact, label="t0")
        assert entry["fleet"]["speedups"]["lockstep"] == 4.0
