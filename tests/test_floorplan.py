"""Tests for repro.physical.floorplan."""

import pytest

from repro.physical.floorplan import (
    DiePlan,
    MacroArray,
    best_macro_array,
    memory_die_packing,
    plan_2d_tile,
    plan_3d_tile,
)
from repro.physical.sram import spm_bank_macro


class TestMacroArray:
    def test_geometry(self):
        macro = spm_bank_macro(1)
        array = MacroArray(rows=2, cols=3, macro=macro, spacing_um=2.0)
        assert array.count == 6
        assert array.width_um == pytest.approx(3 * macro.width_um + 2 * 2.0)
        assert array.height_um == pytest.approx(2 * macro.height_um + 2.0)
        assert array.macro_area_um2 == pytest.approx(6 * macro.area_um2)

    def test_rejects_bad_dims(self):
        macro = spm_bank_macro(1)
        with pytest.raises(ValueError):
            MacroArray(rows=0, cols=1, macro=macro)
        with pytest.raises(ValueError):
            MacroArray(rows=1, cols=1, macro=macro, spacing_um=-1)


class TestBestMacroArray:
    def test_15_macros_form_5x3(self):
        # Figure 3c: the 8 MiB memory die arranges 15 macros in a 5x3 array.
        macro = spm_bank_macro(8)
        array = best_macro_array(15, macro)
        assert {array.rows, array.cols} == {5, 3}
        assert array.count == 15

    def test_16_macros_form_grid_without_waste(self):
        macro = spm_bank_macro(4)
        array = best_macro_array(16, macro)
        assert array.rows * array.cols == 16

    def test_prefers_no_waste(self):
        macro = spm_bank_macro(1)
        array = best_macro_array(6, macro)
        assert array.rows * array.cols == 6

    def test_single_macro(self):
        macro = spm_bank_macro(1)
        array = best_macro_array(1, macro)
        assert (array.rows, array.cols) == (1, 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            best_macro_array(0, spm_bank_macro(1))


class TestDiePlan:
    def test_utilizations(self):
        plan = DiePlan(width_um=100, height_um=100, cell_area_um2=4500, macro_area_um2=5000)
        assert plan.area_um2 == 10_000
        assert plan.core_utilization == pytest.approx(0.9)
        assert plan.macro_utilization == pytest.approx(0.5)

    def test_macro_only_die(self):
        plan = DiePlan(width_um=10, height_um=10, cell_area_um2=0, macro_area_um2=97)
        assert plan.macro_utilization == pytest.approx(0.97)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            DiePlan(width_um=0, height_um=1, cell_area_um2=0, macro_area_um2=0)


class TestPlan2DTile:
    def test_area_composition(self):
        plan = plan_2d_tile(logic_area_um2=90_000, macro_area_um2=50_000)
        assert plan.area_um2 == pytest.approx(90_000 / 0.9 + 50_000 * 1.0)
        assert plan.core_utilization == pytest.approx(0.9, abs=0.01)

    def test_aspect(self):
        plan = plan_2d_tile(logic_area_um2=90_000, macro_area_um2=0, aspect=2.0)
        assert plan.width_um == pytest.approx(2 * plan.height_um)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_2d_tile(logic_area_um2=0, macro_area_um2=0)
        with pytest.raises(ValueError):
            plan_2d_tile(logic_area_um2=1, macro_area_um2=0, target_density=1.5)


class TestPlan3DTile:
    def test_dies_share_footprint(self):
        logic, memory = plan_3d_tile(100_000, 0, 50_000)
        assert logic.area_um2 == pytest.approx(memory.area_um2)
        assert (logic.width_um, logic.height_um) == (memory.width_um, memory.height_um)

    def test_logic_bound_die(self):
        # Small memory: logic sets the footprint; memory die underutilized
        # (the 51 % situation of MemPool-3D-1MiB).
        logic, memory = plan_3d_tile(100_000, 0, 50_000)
        assert logic.area_um2 == pytest.approx(100_000 / 0.9)
        assert memory.macro_utilization < 0.6

    def test_memory_bound_die(self):
        # Big memory forces the footprint (the 4/8 MiB situation).
        logic, memory = plan_3d_tile(100_000, 0, 400_000, memory_packing=0.97)
        assert memory.area_um2 == pytest.approx(400_000 / 0.97)
        assert memory.macro_utilization == pytest.approx(0.97)

    def test_macros_on_logic_die_count_toward_area(self):
        plain, _ = plan_3d_tile(100_000, 0, 10_000)
        with_macros, _ = plan_3d_tile(100_000, 30_000, 10_000)
        assert with_macros.area_um2 > plain.area_um2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_3d_tile(0, 0, 0)
        with pytest.raises(ValueError):
            plan_3d_tile(1, 0, 1, memory_packing=0)


class TestMemoryDiePacking:
    def test_large_macros_pack_better(self):
        assert memory_die_packing(65536) > memory_die_packing(8192)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            memory_die_packing(0)
