"""Additional physical-layer tests: group clock trees, calibration overrides."""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.physical.calibration import (
    Calibration,
    PowerCalibration,
    TimingCalibration,
)
from repro.physical.clocktree import clock_tree_for_group
from repro.physical.flow2d import implement_group_2d
from repro.physical.flow3d import implement_group_3d


class TestGroupClockTree:
    @pytest.fixture(scope="class")
    def pair(self):
        return (
            implement_group_2d(MemPoolConfig(1, Flow.FLOW_2D)),
            implement_group_3d(MemPoolConfig(1, Flow.FLOW_3D)),
        )

    def test_tree_covers_group(self, pair):
        g2, _ = pair
        tree = clock_tree_for_group(g2)
        assert tree.wirelength_um > g2.placement.half_perimeter_um

    def test_smaller_3d_group_has_cheaper_tree(self, pair):
        g2, g3 = pair
        t2 = clock_tree_for_group(g2)
        t3 = clock_tree_for_group(g3)
        assert t3.wirelength_um < t2.wirelength_um
        assert t3.insertion_delay_ps < t2.insertion_delay_ps

    def test_skew_fraction_of_period(self, pair):
        g2, _ = pair
        tree = clock_tree_for_group(g2)
        assert tree.skew_ps < 0.05 * g2.timing.period_ps


class TestCalibrationOverrides:
    def test_zero_noise_changes_frequency(self):
        config = MemPoolConfig(8, Flow.FLOW_2D)
        default = implement_group_2d(config)
        mechanistic = implement_group_2d(
            config, calibration=Calibration(closure_adjust_ps={})
        )
        # The 2D-8MiB entry carries a large negative (lucky-run) noise.
        assert mechanistic.timing.frequency_mhz < default.timing.frequency_mhz

    def test_wire_activity_scales_power(self):
        config = MemPoolConfig(1, Flow.FLOW_2D)
        low = implement_group_2d(
            config,
            calibration=Calibration(power=PowerCalibration(wire_activity=0.05)),
        )
        high = implement_group_2d(
            config,
            calibration=Calibration(power=PowerCalibration(wire_activity=0.20)),
        )
        assert high.power.wires_mw > 2 * low.power.wires_mw

    def test_diagonal_fraction_scales_wire_delay(self):
        config = MemPoolConfig(1, Flow.FLOW_2D)
        short = implement_group_2d(
            config,
            calibration=Calibration(
                timing=TimingCalibration(diagonal_route_fraction=0.5),
                closure_adjust_ps={},
            ),
        )
        long = implement_group_2d(
            config,
            calibration=Calibration(
                timing=TimingCalibration(diagonal_route_fraction=1.0),
                closure_adjust_ps={},
            ),
        )
        assert long.timing.wire_delay_ps == pytest.approx(
            2 * short.timing.wire_delay_ps
        )

    def test_unknown_config_noise_defaults_to_zero(self):
        cal = Calibration()
        assert cal.closure_noise("2D", 16) == 0.0
        assert cal.closure_noise("3D", 8) != 0.0
