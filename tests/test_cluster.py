"""Tests for repro.arch.{tile,group,cluster} and the fabric router."""

import pytest

from repro.arch.cluster import Barrier, MemPoolCluster
from repro.arch.group import Group, INTERCONNECT_DIRECTIONS
from repro.arch.tile import Tile, TileInventory
from repro.core.config import ArchParams, Flow, MemPoolConfig


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


class TestTile:
    def test_structure(self):
        tile = Tile(tile_id=5, words_per_bank=256)
        assert len(tile.spm.banks) == 16
        assert tile.group_id == 0
        assert tile.local_tile_index == 5

    def test_group_assignment(self):
        tile = Tile(tile_id=17, words_per_bank=4)
        assert tile.group_id == 1
        assert tile.local_tile_index == 1

    def test_access_tracks_local_vs_remote(self):
        tile = Tile(tile_id=0, words_per_bank=4)
        tile.access(0, 0, 0, write=False)
        tile.access(1, 1, 0, write=False, remote=True)
        assert tile.port_stats.local_requests == 1
        assert tile.port_stats.remote_in_requests == 1

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Tile(tile_id=-1, words_per_bank=4)

    def test_inventory_counts(self):
        inv = TileInventory()
        assert inv.crossbar_masters == 8
        assert inv.crossbar_slaves == 16
        assert inv.spm_macros == 16
        assert inv.icache_macros == 4


class TestGroup:
    def test_structure(self):
        group = Group(group_id=2, words_per_bank=4)
        assert len(group.tiles) == 16
        assert group.tiles[0].tile_id == 32
        assert set(group.interconnects) == set(INTERCONNECT_DIRECTIONS)

    def test_direction_mapping(self):
        group = Group(group_id=0, words_per_bank=4)
        assert group.direction_to(0) == "local"
        assert group.direction_to(1) == "east"
        assert group.direction_to(2) == "north"
        assert group.direction_to(3) == "northeast"

    def test_direction_symmetry(self):
        # The XOR relation makes direction(a->b) == direction(b->a).
        for a in range(4):
            for b in range(4):
                ga = Group(group_id=a, words_per_bank=4)
                gb = Group(group_id=b, words_per_bank=4)
                assert ga.direction_to(b) == gb.direction_to(a)

    def test_direction_bounds(self):
        group = Group(group_id=0, words_per_bank=4)
        with pytest.raises(ValueError):
            group.direction_to(4)

    def test_bad_group_id(self):
        with pytest.raises(ValueError):
            Group(group_id=9, words_per_bank=4)


class TestBarrier:
    def test_releases_when_all_arrive(self):
        barrier = Barrier(parties=3)
        r0 = barrier.arrive(0)
        r1 = barrier.arrive(1)
        assert not r0() and not r1()
        r2 = barrier.arrive(2)
        assert r0() and r1() and r2()
        assert barrier.episodes == 1

    def test_generations_are_independent(self):
        barrier = Barrier(parties=2)
        barrier.arrive(0)
        barrier.arrive(1)
        second = barrier.arrive(0)
        assert not second()
        barrier.arrive(1)
        assert second()
        assert barrier.episodes == 2

    def test_reduce_parties_releases_waiters(self):
        barrier = Barrier(parties=3)
        r0 = barrier.arrive(0)
        barrier.arrive(1)
        barrier.reduce_parties(1)  # third party halted
        assert r0()

    def test_rejects_zero_parties(self):
        with pytest.raises(ValueError):
            Barrier(parties=0)


class TestMemPoolCluster:
    def test_structure(self, config):
        cluster = MemPoolCluster(config)
        assert len(cluster.groups) == 4
        assert len(cluster.tiles) == 64
        assert cluster.tile(20).tile_id == 20

    def test_backdoor_roundtrip(self, config):
        cluster = MemPoolCluster(config)
        words = [7, 99, 0xFFFFFFFF, 12345]
        cluster.write_words(128, words)
        assert cluster.read_words(128, len(words)) == words

    def test_backdoor_spreads_over_banks(self, config):
        cluster = MemPoolCluster(config)
        cluster.write_words(0, list(range(32)))
        bank0 = cluster.tile(0).bank(0)
        bank1 = cluster.tile(0).bank(1)
        assert bank0.peek(0) == 0
        assert bank1.peek(0) == 1

    def test_load_program_creates_cores(self, config):
        from repro.simulator.program import fill_program

        cluster = MemPoolCluster(config)
        cluster.load_program(fill_program(16, 4, 0, 1), num_cores=4)
        assert len(cluster.cores) == 4
        assert all(c.barrier_arrive is not None for c in cluster.cores)

    def test_load_program_rejects_too_many_cores(self, config):
        from repro.simulator.program import fill_program

        cluster = MemPoolCluster(config)
        with pytest.raises(ValueError):
            cluster.load_program(fill_program(16, 4, 0, 1), num_cores=1000)

    def test_small_arch_cluster(self):
        arch = ArchParams(cores_per_tile=2, tiles_per_group=4, groups=2, banks_per_tile=4)
        config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D, arch=arch)
        cluster = MemPoolCluster(config)
        assert len(cluster.tiles) == 8
        assert cluster.memory_map.spm_bytes == 1 << 20


class TestFabricRouter:
    def test_local_access_latency(self, config):
        cluster = MemPoolCluster(config)
        accepted, latency, _ = cluster.router.access(0, 0, 0, is_store=False)
        assert accepted
        assert latency == 1

    def test_remote_group_latency(self, config):
        cluster = MemPoolCluster(config)
        # Find an address in a remote group for core 0.
        from repro.arch.memory_map import BankAddress

        addr = cluster.memory_map.encode(BankAddress(group=2, tile=0, bank=0, offset=0))
        accepted, latency, _ = cluster.router.access(0, 0, addr, is_store=False)
        assert accepted
        assert latency == 5

    def test_bank_conflict_refused(self, config):
        cluster = MemPoolCluster(config)
        ok, _, _ = cluster.router.access(0, 0, 0, is_store=False)
        blocked, _, _ = cluster.router.access(0, 1, 0, is_store=False)
        assert ok and not blocked
        assert cluster.router.stats.bank_conflicts == 1

    def test_remote_port_limit(self, config):
        cluster = MemPoolCluster(config)
        from repro.arch.memory_map import BankAddress

        # 5 remote requests to distinct banks of tile 1 in the same cycle:
        # only 4 remote ports exist.
        grants = []
        for bank in range(5):
            addr = cluster.memory_map.encode(
                BankAddress(group=0, tile=1, bank=bank, offset=0)
            )
            ok, _, _ = cluster.router.access(0, 0, addr, is_store=False)
            grants.append(ok)
        assert sum(grants) == 4
        assert cluster.router.stats.port_conflicts == 1

    def test_write_visible_after_routing(self, config):
        cluster = MemPoolCluster(config)
        cluster.router.access(0, 0, 64, is_store=True, value=41)
        _, _, data = cluster.router.access(1, 0, 64, is_store=False)
        assert data == 41
