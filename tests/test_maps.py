"""Tests for repro.physical.maps — Figure 4 density/routing maps."""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.physical.flow3d import implement_group_3d
from repro.physical.maps import cell_density_map, routing_demand_map


@pytest.fixture(scope="module")
def impl():
    # The paper's Figure 4 shows MemPool-3D-4MiB.
    return implement_group_3d(MemPoolConfig(4, Flow.FLOW_3D))


class TestCellDensityMap:
    def test_center_is_hotspot(self, impl):
        density = cell_density_map(impl)
        assert density.center_mean > density.edge_mean

    def test_tiles_are_empty(self, impl):
        # Tile interiors are blackboxes: a large share of bins is zero.
        density = cell_density_map(impl)
        zero_fraction = (density.values == 0).mean()
        assert zero_fraction > 0.4

    def test_normalized(self, impl):
        density = cell_density_map(impl)
        assert 0 <= density.values.min()
        assert density.peak == pytest.approx(1.0)

    def test_ascii_render(self, impl):
        art = cell_density_map(impl, bins=12).to_ascii()
        assert "cell density" in art
        assert len(art.splitlines()) == 13

    def test_rejects_tiny_grid(self, impl):
        with pytest.raises(ValueError):
            cell_density_map(impl, bins=3)


class TestRoutingDemandMap:
    def test_center_cross_is_hottest(self, impl):
        demand = routing_demand_map(impl)
        assert demand.center_mean > demand.edge_mean

    def test_demand_positive_somewhere(self, impl):
        demand = routing_demand_map(impl)
        assert demand.peak == pytest.approx(1.0)
        assert (demand.values > 0).sum() > 10

    def test_bins_shape(self, impl):
        demand = routing_demand_map(impl, bins=16)
        assert demand.values.shape == (16, 16)


class TestTileFrequency:
    def test_tile_ppa_spread_is_small(self):
        """Section IV: negligible PPA difference across tile instances."""
        from repro.physical.flow2d import implement_tile_2d
        from repro.physical.flow3d import implement_tile_3d

        freqs = []
        for cap in (1, 2, 4, 8):
            freqs.append(implement_tile_2d(MemPoolConfig(cap, Flow.FLOW_2D)).frequency_mhz)
            freqs.append(implement_tile_3d(MemPoolConfig(cap, Flow.FLOW_3D)).frequency_mhz)
        spread = max(freqs) / min(freqs) - 1
        assert spread < 0.10  # paper: ~6 %

    def test_tile_faster_than_group(self):
        from repro.physical.flow3d import implement_group_3d, implement_tile_3d

        config = MemPoolConfig(1, Flow.FLOW_3D)
        tile = implement_tile_3d(config)
        group = implement_group_3d(config)
        assert tile.frequency_mhz > group.timing.frequency_mhz
