"""Tests for the double-buffered phase-schedule extension."""

import pytest

from repro.core.config import PAPER_MATRIX_DIM
from repro.kernels.phases import (
    DOUBLE_BUFFER_TILES,
    double_buffered_cycles,
    double_buffered_plan,
    matmul_cycles,
)
from repro.kernels.tiling import paper_tiling
from repro.simulator.memsys import OffChipMemory


class TestDoubleBufferedPlan:
    def test_five_tiles_fit(self):
        for cap in (1, 2, 4, 8):
            plan = double_buffered_plan(PAPER_MATRIX_DIM, cap << 20)
            assert DOUBLE_BUFFER_TILES * plan.tile_bytes <= cap << 20

    def test_tile_smaller_than_serial(self):
        for cap in (1, 2, 4, 8):
            db = double_buffered_plan(PAPER_MATRIX_DIM, cap << 20)
            assert db.tile_size < paper_tiling(cap).tile_size

    def test_divides_matrix(self):
        plan = double_buffered_plan(PAPER_MATRIX_DIM, 1 << 20)
        assert PAPER_MATRIX_DIM % plan.tile_size == 0

    def test_rejects_hopeless_inputs(self):
        with pytest.raises(ValueError):
            double_buffered_plan(0, 1 << 20)
        with pytest.raises(ValueError):
            double_buffered_plan(7, 1 << 10)  # prime dim, tiny SPM


class TestDoubleBufferedCycles:
    def test_wins_when_memory_bound(self):
        # At 4 B/cycle the serial schedule spends ~40 % in memory phases;
        # overlapping hides almost all of it, beating the bigger tile.
        memory = OffChipMemory(bandwidth_bytes_per_cycle=4)
        serial = matmul_cycles(paper_tiling(1), memory)
        db = double_buffered_cycles(
            double_buffered_plan(PAPER_MATRIX_DIM, 1 << 20), memory
        )
        assert db.total < serial.total

    def test_overlap_cannot_beat_compute_bound(self):
        # Exposed memory never goes below zero; total >= compute.
        memory = OffChipMemory(bandwidth_bytes_per_cycle=64)
        plan = double_buffered_plan(PAPER_MATRIX_DIM, 8 << 20)
        db = double_buffered_cycles(plan, memory)
        assert db.total >= db.compute_cycles

    def test_exposed_memory_much_smaller_than_serial(self):
        memory = OffChipMemory(bandwidth_bytes_per_cycle=8)
        plan = double_buffered_plan(PAPER_MATRIX_DIM, 4 << 20)
        serial = matmul_cycles(plan, memory)
        db = double_buffered_cycles(plan, memory)
        assert db.memory_cycles < 0.5 * serial.memory_cycles

    def test_compute_component_unchanged(self):
        memory = OffChipMemory(bandwidth_bytes_per_cycle=16)
        plan = double_buffered_plan(PAPER_MATRIX_DIM, 2 << 20)
        serial = matmul_cycles(plan, memory)
        db = double_buffered_cycles(plan, memory)
        assert db.compute_cycles == pytest.approx(serial.compute_cycles)

    def test_advantage_shrinks_with_bandwidth(self):
        gains = []
        for bw in (4, 16, 64):
            memory = OffChipMemory(bandwidth_bytes_per_cycle=bw)
            serial = matmul_cycles(paper_tiling(1), memory).total
            db = double_buffered_cycles(
                double_buffered_plan(PAPER_MATRIX_DIM, 1 << 20), memory
            ).total
            gains.append(serial / db)
        assert gains == sorted(gains, reverse=True)
