"""Tests for repro.kernels.workloads — DSP kernels verified vs numpy."""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.kernels.workloads import (
    axpy_program,
    conv2d_3x3_program,
    dotp_program,
    run_axpy,
    run_conv2d,
    run_dotp,
)


@pytest.fixture
def config():
    return MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)


class TestDotProduct:
    @pytest.mark.parametrize("n,cores", [(16, 1), (64, 8), (100, 16)])
    def test_correct(self, config, n, cores):
        run = run_dotp(config, num_elements=n, num_cores=cores)
        assert run.correct
        assert run.cycles > 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            dotp_program(0, 4, 0, 64, 128)
        with pytest.raises(ValueError):
            dotp_program(16, 0, 0, 64, 128)


class TestAxpy:
    @pytest.mark.parametrize("n,cores,scalar", [(16, 2, 3), (64, 8, -2), (33, 4, 7)])
    def test_correct(self, config, n, cores, scalar):
        run = run_axpy(config, num_elements=n, num_cores=cores, scalar=scalar)
        assert run.correct

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            axpy_program(0, 4, 1, 0, 64)


class TestConv2D:
    @pytest.mark.parametrize("w,h,cores", [(8, 8, 4), (12, 6, 2), (16, 10, 8)])
    def test_correct(self, config, w, h, cores):
        run = run_conv2d(config, width=w, height=h, num_cores=cores)
        assert run.correct

    def test_rejects_tiny_image(self):
        with pytest.raises(ValueError):
            conv2d_3x3_program(2, 8, 4, 0, 100, 200)

    def test_more_cores_help(self, config):
        few = run_conv2d(config, width=16, height=16, num_cores=1)
        many = run_conv2d(config, width=16, height=16, num_cores=8)
        assert many.cycles < few.cycles
        assert few.correct and many.correct
