"""Closing the loop: Figure 6 rebuilt from simulator-calibrated parameters.

The default phase model uses paper-fitted constants (CPI 2.9, 10 k-cycle
overhead).  This test recalibrates the CPI from an actual cycle-level
simulation (:func:`calibrate_from_simulation`) and verifies the paper's
qualitative Figure 6 conclusions survive: absolute speedups shift with
the CPI, but capacity always helps, bandwidth scarcity amplifies the
benefit, and the 8-over-1 MiB ordering across bandwidths is preserved.
"""

import pytest

from repro.core.config import Flow, MemPoolConfig
from repro.experiments import fig6
from repro.kernels.matmul import calibrate_from_simulation


@pytest.fixture(scope="module")
def calibrated_points():
    config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)
    params = calibrate_from_simulation(config, n=16, num_cores=8)
    return fig6.run(params=params), params


class TestCalibratedFig6:
    def test_cpi_comes_from_simulation(self, calibrated_points):
        _, params = calibrated_points
        assert params.cpi_mac != pytest.approx(2.9)
        assert params.num_cores == 256

    def test_capacity_still_monotone(self, calibrated_points):
        points, _ = calibrated_points
        for bw in {p.bandwidth for p in points}:
            series = sorted(
                (p for p in points if p.bandwidth == bw),
                key=lambda p: p.capacity_mib,
            )
            speedups = [p.speedup_vs_baseline for p in series]
            assert speedups == sorted(speedups)

    def test_scarce_bandwidth_amplifies_capacity_benefit(self, calibrated_points):
        points, _ = calibrated_points
        headline = fig6.speedup_8mib_over_1mib(points)
        bandwidths = sorted(headline)
        values = [headline[bw] for bw in bandwidths]
        assert values == sorted(values, reverse=True)
        assert headline[bandwidths[0]] > 0.1

    def test_memory_fraction_still_decreases_with_capacity(self, calibrated_points):
        points, _ = calibrated_points
        at_4b = {p.capacity_mib: p.memory_fraction for p in points if p.bandwidth == 4}
        assert at_4b[8] < at_4b[1]

    def test_higher_cpi_lowers_relative_speedups(self, calibrated_points):
        # The simulated (blocking-load) CPI exceeds the paper's optimized
        # 2.9, so compute dominates more and memory savings matter less:
        # the calibrated 8-over-1 speedup at 4 B/cycle drops below the
        # paper-fitted 43 %.
        points, params = calibrated_points
        assert params.cpi_mac > 2.9
        headline = fig6.speedup_8mib_over_1mib(points)
        default_headline = fig6.speedup_8mib_over_1mib(fig6.run())
        assert headline[4] < default_headline[4]
