#!/usr/bin/env python3
"""Guided multi-objective optimization with `repro.search`.

Three escalating demos of the search subsystem:

1. *Budgeted recovery* — an evolutionary search over the paper's
   56-point space finds the exhaustive grid's Pareto-best EDP and
   energy points with half the evaluations.
2. *Resume for free* — re-running the same search against the same
   cache replays the trajectory with zero new evaluations (this is
   exactly what `repro search --resume` does after a kill).
3. *A custom strategy plugin* — strategies register like flows,
   workloads, and objectives; a five-line greedy hill-climber joins the
   registry without touching `repro.search` itself.

Run:  python examples/search_optimization.py
"""

import tempfile

from repro.search import (
    ParetoArchive,
    Searcher,
    Strategy,
    paper_space,
    register_strategy,
)
from repro.sweep import ResultCache


def budgeted_recovery(cache: ResultCache) -> None:
    searcher = Searcher(
        paper_space(),
        objectives=("edp", "energy_efficiency"),
        strategy="evolutionary",
        budget=28,  # the exhaustive grid has 56 points
        cache=cache,
        archive=ParetoArchive(),  # in-memory; pass a path to persist
    )
    outcome = searcher.run()
    print("1) evolutionary search, 28-evaluation budget on the 56-point space:")
    print(outcome.report(top=2))
    print()


def resume_for_free(cache: ResultCache) -> None:
    searcher = Searcher(
        paper_space(),
        objectives=("edp", "energy_efficiency"),
        strategy="evolutionary",
        budget=28,
        cache=cache,  # same cache, same seed -> same trajectory
    )
    outcome = searcher.run()
    print("2) the same search resumed against the shared cache:")
    print(f"   {outcome.stats.summary()}")
    assert outcome.stats.evaluated == 0, "resume must be pure cache hits"
    print()


@register_strategy("greedy-edp")
class GreedyEdp(Strategy):
    """Hill-climb the first objective: mutate the best candidate seen."""

    def __init__(self, space, objectives=(), seed=0, **options):
        super().__init__(space, objectives, seed, **options)
        self.best = None

    def observe(self, candidates):
        for c in candidates:
            if c.costs and (self.best is None or c.costs < self.best.costs):
                self.best = c

    def propose(self, n):
        if self.best is None:
            return self.lhs_batch(n)
        batch = []
        for _ in range(n * 20):
            if len(batch) == n:
                break
            values = {
                axis.name: axis.mutate(self.best.values[axis.name], self.rng)
                for axis in self.space.axes
            }
            if self.claim(values):
                batch.append(values)
        return batch or self.random_batch(n)


def custom_strategy(cache: ResultCache) -> None:
    outcome = Searcher(
        paper_space(),
        objectives=("edp",),
        strategy="greedy-edp",
        budget=20,
        cache=cache,
    ).run()
    print("3) custom 'greedy-edp' strategy plugin (single objective):")
    best = outcome.best("edp")
    print(f"   best edp after {outcome.stats.proposed} candidates: "
          f"{best.label}  {best.objectives['edp']:.4e}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="search-cache-") as cache_dir:
        cache = ResultCache(cache_dir)
        budgeted_recovery(cache)
        resume_for_free(cache)
        custom_strategy(cache)


if __name__ == "__main__":
    main()
