#!/usr/bin/env python3
"""Design-space co-exploration across SPM capacity and integration flow.

Reproduces the paper's central workflow: sweep the architectural axis
(1-8 MiB of shared L1) and the technology axis (2D vs Macro-3D) together,
then rank the eight design points under different objectives
and print the performance/efficiency Pareto front.

Run:  python examples/design_space_exploration.py [bandwidth_B_per_cycle]
"""

import sys

from repro.core.explorer import Explorer, OBJECTIVES


def main() -> None:
    bandwidth = float(sys.argv[1]) if len(sys.argv) > 1 else 16.0
    explorer = Explorer(bandwidth=bandwidth)
    points = explorer.explore()

    print(f"Design points (matmul @ {bandwidth:g} B/cycle off-chip):\n")
    header = (
        f"{'config':>18} {'freq MHz':>9} {'power mW':>9} {'fp mm2':>8} "
        f"{'runtime s':>10} {'kernels/J':>10}"
    )
    print(header)
    for p in sorted(points, key=lambda p: (p.config.capacity_mib, p.config.flow.value)):
        print(
            f"{p.config.name:>18} {p.frequency_mhz:9.0f} {p.power_mw:9.0f} "
            f"{p.footprint_um2 / 1e6:8.2f} {p.kernel.runtime_s:10.3e} "
            f"{p.energy_efficiency:10.3e}"
        )

    for objective in OBJECTIVES:
        best = explorer.rank(objective, points)[0]
        print(f"\nBest {objective:>18}: {best.config.name}")

    print("\nPerformance / energy-efficiency Pareto front:")
    for p in explorer.pareto_front(points):
        print(
            f"  {p.config.name:>18}  perf {p.performance:9.3e} /s   "
            f"eff {p.energy_efficiency:9.3e} /J"
        )


if __name__ == "__main__":
    main()
