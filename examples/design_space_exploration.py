#!/usr/bin/env python3
"""Design-space co-exploration on the parallel, cached sweep engine.

Reproduces the paper's central workflow — sweeping the architectural axis
(1-8 MiB of shared L1) and the technology axis (2D vs Macro-3D) together —
but through `repro.sweep`: the grid also spans off-chip bandwidth, runs
across worker processes, and lands in a content-addressed cache, so the
second pass over the same grid costs nothing.

Run:  python examples/design_space_exploration.py [bandwidth_B_per_cycle ...]
"""

import sys
import tempfile

from repro.engine import Engine, cache_stats
from repro.search import Searcher, paper_space
from repro.sweep import (
    Job,
    ResultCache,
    SweepExecutor,
    SweepSpec,
    format_table,
    labeled_points,
    summarize,
)


def engine_demo(spec: SweepSpec) -> None:
    """The execution layer directly: thread backend + in-memory LRU tier."""
    engine = Engine(backend="thread", workers=4)
    cold = engine.run(spec.jobs())
    warm = engine.run(spec.jobs())  # LRU tier: zero evaluations, no disk
    print("engine directly (thread backend, LRU tier):")
    print(f"  cold: {cold.stats.summary()}")
    print(f"  warm: {warm.stats.summary()}")
    assert warm.stats.evaluated == 0


def batched_demo() -> None:
    """Simulator-backed grids: the `batched` backend fleet-batches them.

    Cache-miss jobs group into compatibility classes and step through
    one FleetEngine event loop; records stay byte-identical to the
    serial backend (the analytic matmul of the other demos would simply
    fall back, so this grid uses simulated kernels).
    """
    jobs = [
        Job(capacity_mib=1, flow=flow, matrix_dim=dim, num_cores=16,
            kernel=kernel)
        for dim in (96, 128, 160, 192)
        for kernel in ("dotp", "axpy")
        for flow in ("2D", "3D")
    ]
    with tempfile.TemporaryDirectory(prefix="batched-cache-") as cache_dir:
        engine = Engine(backend="batched", cache=ResultCache(cache_dir))
        outcome = engine.run(jobs)
        stats = cache_stats(cache_dir)
        print("batched backend (cross-scenario fleet batching):")
        print(f"  {len(jobs)} simulator-backed jobs: "
              f"{outcome.stats.summary()}")
        print(f"  batches formed: {stats['batches_formed']}, "
              f"lanes: {stats['batch_lanes']}, "
              f"serial fallbacks: {stats['batch_fallbacks']}")


def analytic_demo() -> None:
    """Tier-0 screen, tier-1 confirm: the two-stage exploration pattern.

    The calibrated analytic engine ranks the whole grid for the cost of
    one calibration fit, then only the short-listed points pay for real
    simulation — the shape that makes million-point sweeps tractable.
    """
    from repro.api import Pipeline, Scenario

    grid = [
        Scenario(capacity_mib=cap, flow=flow, bandwidth=bw,
                 matrix_dim=1280, workload="dotp")
        for cap in (1, 2, 4, 8)
        for flow in ("2D", "3D")
        for bw in (4.0, 16.0, 64.0)
    ]
    tier0 = Pipeline(engine="analytic")
    screened = sorted(grid, key=lambda s: tier0.run(s).edp)[:3]

    tier1 = Pipeline()  # default fast simulator: bit-exact cycles
    confirmed = min(screened, key=lambda s: tier1.run(s).edp)
    best = tier1.run(confirmed)
    print("analytic tier-0 screen -> tier-1 confirmation:")
    print(f"  screened {len(grid)} points analytically, "
          f"simulated only {len(screened)}")
    print(f"  best: {confirmed.capacity_mib} MiB {confirmed.flow} @ "
          f"{confirmed.bandwidth:g} B/cycle, "
          f"edp {best.edp:.3e} (simulated)")


def guided_search_demo() -> None:
    """The same co-exploration, guided: half the budget, same winners."""
    searcher = Searcher(
        paper_space(),
        objectives=("edp", "energy_efficiency"),
        strategy="evolutionary",
        budget=28,  # half of the exhaustive 56-point grid
    )
    outcome = searcher.run()
    print("guided search over the 56-point paper space "
          "(repro.search, evolutionary strategy):")
    print(outcome.report(top=1))


def main() -> None:
    bandwidths = tuple(float(a) for a in sys.argv[1:]) or (4.0, 16.0, 64.0)
    spec = SweepSpec(bandwidths=bandwidths)

    with tempfile.TemporaryDirectory(prefix="sweep-cache-") as cache_dir:
        cache = ResultCache(cache_dir)
        executor = SweepExecutor(cache=cache, workers=2)

        outcome = executor.run(spec)
        print(f"cold sweep of {len(spec)} points:   {outcome.stats.summary()}")

        resumed = executor.run(spec)
        print(f"warm sweep (content-addressed): {resumed.stats.summary()}")
        assert resumed.stats.evaluated == 0, "second pass must be pure cache hits"

    print(f"\nDesign points (matmul @ {', '.join(f'{b:g}' for b in bandwidths)}"
          " B/cycle off-chip):\n")
    print(format_table(labeled_points(outcome.records)))

    print()
    print(summarize(outcome.records, top=1))

    print()
    engine_demo(spec)

    print()
    batched_demo()

    print()
    analytic_demo()

    print()
    guided_search_demo()


if __name__ == "__main__":
    main()
