#!/usr/bin/env python3
"""Quickstart: the unified Scenario/Pipeline API.

Builds the paper's headline configuration (MemPool-3D-4MiB) as a
Scenario, runs it through the Pipeline to get one typed RunResult
(physical + kernel + derived metrics), cross-checks a small verified
matmul on the cycle-level simulator, and finally ranks all eight paper
points by energy-delay product.

Run:  python examples/quickstart.py
"""

from repro.api import Pipeline, Scenario, paper_scenarios
from repro.kernels.matmul import run_matmul


def main() -> None:
    # 1. Describe the design point: architecture x flow x workload.
    scenario = Scenario(capacity_mib=4, flow="3D", bandwidth=16,
                        workload="matmul", objective="edp")
    config = scenario.to_config()
    print(f"Scenario: {scenario.name}")
    print(f"  cores: {config.arch.num_cores}, tiles: {config.arch.num_tiles}, "
          f"SPM: {scenario.capacity_mib} MiB in {config.arch.num_banks} banks")
    print(f"  workload: {scenario.workload} "
          f"({scenario.matrix_dim}x{scenario.matrix_dim}, "
          f"tile {scenario.tiling().tile_size}) @ "
          f"{scenario.bandwidth:g} B/cycle off-chip")

    # 2. One call: implement the group through the Macro-3D flow and
    #    evaluate the kernel model on the result.
    pipeline = Pipeline()
    result = pipeline.run(scenario)
    print("\nPipeline result (physical):")
    print(f"  footprint:      {result.footprint_um2 / 1e6:8.2f} mm^2")
    print(f"  combined dies:  {result.combined_area_um2 / 1e6:8.2f} mm^2")
    print(f"  frequency:      {result.frequency_mhz:8.0f} MHz")
    print(f"  power:          {result.power_mw:8.0f} mW")
    print(f"  wire length:    {result.physical.wire_length_um / 1e6:8.1f} m")
    print(f"  F2F bumps:      {result.physical.num_f2f_bumps:8d}")
    print("Pipeline result (kernel):")
    print(f"  cycles:         {result.cycles:8.3e}")
    print(f"  runtime:        {result.runtime_s:8.3f} s")
    print(f"  energy:         {result.energy_j:8.3f} J")
    print(f"  EDP:            {result.edp:8.4f} J*s")
    print(f"  objective ({scenario.objective}): {result.objective_value():.4f}")

    # 3. Cross-check: a small verified matmul on the cycle-level
    #    instruction simulator.
    run = run_matmul(config, n=16, num_cores=16)
    print(f"\nSimulated 16x16 matmul on 16 cores: {run.cycles} cycles, "
          f"verified: {run.correct}")

    # 4. Rank the paper's eight configurations under the scenario's
    #    objective — the paper's co-exploration in three lines.
    results = pipeline.run_many(paper_scenarios(bandwidth=16))
    print("\nAll eight paper points, best EDP first:")
    for r in pipeline.rank(results, "edp"):
        print(f"  {r.name:>18}  EDP {r.edp:9.4f} J*s  "
              f"{r.frequency_mhz:5.0f} MHz  {r.power_mw:5.0f} mW")


if __name__ == "__main__":
    main()
