#!/usr/bin/env python3
"""Quickstart: implement a MemPool instance and run a kernel on it.

Implements MemPool-3D-4MiB (the paper's headline configuration) through
the Macro-3D flow, prints its PPA report, simulates a small verified
matmul on the cycle-level cluster model, and projects the paper's
full-size matmul runtime with the phase-level model.

Run:  python examples/quickstart.py
"""

from repro.core.config import MemPoolConfig, config_by_name
from repro.core.metrics import KernelMetrics
from repro.kernels.matmul import run_matmul
from repro.kernels.phases import matmul_cycles
from repro.kernels.tiling import paper_tiling
from repro.physical.flow3d import implement_group
from repro.simulator.memsys import OffChipMemory


def main() -> None:
    # 1. Pick a configuration by its paper-style name.
    config = config_by_name("MemPool-3D-4MiB")
    print(f"Configuration: {config.name}")
    print(f"  cores: {config.arch.num_cores}, tiles: {config.arch.num_tiles}, "
          f"SPM: {config.capacity_mib} MiB in {config.arch.num_banks} banks")

    # 2. Implement the group through the Macro-3D physical flow.
    impl = implement_group(config)
    result = impl.to_group_result()
    print("\nGroup implementation (Macro-3D, M6M6 BEOL):")
    print(f"  footprint:      {result.footprint_um2 / 1e6:8.2f} mm^2")
    print(f"  combined dies:  {result.combined_area_um2 / 1e6:8.2f} mm^2")
    print(f"  frequency:      {result.frequency_mhz:8.0f} MHz")
    print(f"  power:          {result.power_mw:8.0f} mW")
    print(f"  wire length:    {result.wire_length_um / 1e6:8.1f} m")
    print(f"  buffers:        {result.num_buffers:8d}")
    print(f"  F2F bumps:      {result.num_f2f_bumps:8d}")
    print(f"  banks on memory die: {impl.tile.partition.spm_banks_on_memory_die}/16")

    # 3. Simulate a small matmul on the instruction-level cluster model
    #    and verify it against numpy.
    run = run_matmul(config, n=16, num_cores=16)
    print(f"\nSimulated 16x16 matmul on 16 cores: {run.cycles} cycles, "
          f"verified: {run.correct}")

    # 4. Project the paper's full-size kernel with the phase-level model.
    plan = paper_tiling(config.capacity_mib)
    memory = OffChipMemory(bandwidth_bytes_per_cycle=16)
    cycles = matmul_cycles(plan, memory).total
    metrics = KernelMetrics(
        name=config.name,
        cycles=cycles,
        frequency_mhz=result.frequency_mhz,
        power_mw=result.power_mw,
    )
    print(f"\nFull {plan.matrix_dim}x{plan.matrix_dim} matmul @ 16 B/cycle off-chip:")
    print(f"  tile size:  {plan.tile_size} ({plan.total_phases} phases)")
    print(f"  cycles:     {cycles:.3e}")
    print(f"  runtime:    {metrics.runtime_s:.3f} s")
    print(f"  energy:     {metrics.energy_j:.3f} J")
    print(f"  EDP:        {metrics.edp:.4f} J*s")


if __name__ == "__main__":
    main()
