#!/usr/bin/env python3
"""Service demo: the async job API end to end, in one process.

Starts a :class:`repro.service.ReproService` on an ephemeral port (the
same server ``repro serve`` runs), then drives it through the typed
:class:`repro.client.ServiceClient`: submits the paper's 56-point
capacity x flow x bandwidth grid as a sweep job, streams the records
back live over chunked NDJSON, re-submits the grid to show the shared
cache answering without a single re-evaluation, and finishes with a
synchronous single-scenario request and the `/v1/cache` document.

Run:  python examples/service_demo.py
"""

import time

from repro.client import ServiceClient
from repro.service import ReproService
from repro.sweep import SweepSpec

#: 4 capacities x 2 flows x 7 bandwidths = the paper's 56-point grid.
GRID = SweepSpec(bandwidths=(2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))


def main() -> None:
    service = ReproService(port=0)  # memory-only cache; pass cache_dir=
    with service.run_in_thread() as url:  # ...to persist across restarts
        client = ServiceClient(url)
        health = client.health()
        print(f"service {health['version']} at {url}: {health['status']}")

        # 1. Submit the grid and follow the stream as points complete.
        job_id = client.submit_sweep(GRID)
        print(f"\nsubmitted sweep {job_id}: {len(GRID)} design points")
        t0 = time.perf_counter()
        best = None
        for record in client.iter_results(job_id):
            edp = record["metrics"]["edp"]
            if best is None or edp < best[0]:
                best = (edp, record["job"])
        cold_s = time.perf_counter() - t0
        status = client.status(job_id)
        print(f"cold sweep: {status['done']} records in {cold_s:.2f}s "
              f"({status['cached']} cached)")
        job = best[1]
        print(f"best EDP {best[0]:.3e} Js: {job['capacity_mib']} MiB "
              f"{job['flow']} @ {job['bandwidth']:g} B/cycle")

        # 2. The same grid again: every record comes from the shared
        #    tiered cache, nothing is re-evaluated.
        t0 = time.perf_counter()
        warm_id = client.submit_sweep(GRID)
        records = list(client.iter_results(warm_id))
        warm_s = time.perf_counter() - t0
        sources = {record["source"] for record in records}
        print(f"\nwarm sweep: {len(records)} records in {warm_s:.2f}s, "
              f"sources={sorted(sources)}")

        # 3. Ad-hoc synchronous evaluation: one request, records in-band.
        scenario = {"capacity_mib": 4, "flow": "3D", "bandwidth": 16}
        (record,) = client.run([scenario])
        print(f"\nsync run {scenario}: edp={record['metrics']['edp']:.3e} "
              f"Js (source: {record['source']})")

        # 4. The cache document -- same shape as `repro cache stats --json`.
        stats = client.cache_stats()
        print(f"\ncache: {stats['entries']} entries, "
              f"{stats['memory_hits']} memory hits, "
              f"{stats['misses']} misses")


if __name__ == "__main__":
    main()
