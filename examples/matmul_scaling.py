#!/usr/bin/env python3
"""Matmul scaling study: SPM capacity vs off-chip bandwidth (Figure 6).

Sweeps the paper's blocked matmul (M = 326400) across the four SPM
capacities and the 4-64 B/cycle off-chip bandwidth range, printing the
cycle breakdown (memory / compute / synchronization) and the speedup
surface of Figure 6.

Run:  python examples/matmul_scaling.py
"""

from repro.core.config import CAPACITIES_MIB
from repro.kernels.phases import matmul_cycles
from repro.kernels.tiling import paper_tiling
from repro.simulator.memsys import OffChipMemory, PAPER_BANDWIDTH_SWEEP


def main() -> None:
    print("Tiling plans (3 tiles of t x t 32-bit words must fit the SPM):")
    for cap in CAPACITIES_MIB:
        plan = paper_tiling(cap)
        utilization = plan.working_set_bytes / (cap << 20)
        print(
            f"  {cap} MiB: t = {plan.tile_size:4d}, working set "
            f"{plan.working_set_bytes >> 20:5.2f} MiB ({utilization * 100:4.1f}% of SPM), "
            f"each input element loaded {plan.input_reuse_factor}x"
        )

    print("\nCycle breakdown at 16 B/cycle (one DDR channel):")
    memory = OffChipMemory(bandwidth_bytes_per_cycle=16)
    for cap in CAPACITIES_MIB:
        b = matmul_cycles(paper_tiling(cap), memory)
        print(
            f"  {cap} MiB: total {b.total:.3e}  "
            f"memory {b.memory_cycles / b.total * 100:4.1f}%  "
            f"compute {b.compute_cycles / b.total * 100:4.1f}%  "
            f"sync/overhead {b.overhead_cycles / b.total * 100:4.1f}%"
        )

    print("\nSpeedup vs 1 MiB @ 4 B/cycle (Figure 6):")
    baseline = matmul_cycles(paper_tiling(1), OffChipMemory(bandwidth_bytes_per_cycle=4)).total
    print(f"{'BW':>6} " + "".join(f"{c} MiB".rjust(10) for c in CAPACITIES_MIB))
    for bw in PAPER_BANDWIDTH_SWEEP:
        mem = OffChipMemory(bandwidth_bytes_per_cycle=bw)
        cells = []
        for cap in CAPACITIES_MIB:
            total = matmul_cycles(paper_tiling(cap), mem).total
            cells.append(f"{(baseline / total - 1) * 100:9.1f}%")
        print(f"{bw:>6} " + "".join(cells))

    print("\nHeadline (paper): 8 MiB over 1 MiB = 43% @ 4 B/c, 16% @ 16 B/c, 8% @ 64 B/c")


if __name__ == "__main__":
    main()
