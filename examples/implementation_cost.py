#!/usr/bin/env python3
"""Implementation cost, thermal, and cluster-level analysis.

The paper observes that the *combined* die area — not the footprint — is
what matters for cost, and that the cluster level should favor 3D even
more than the group level.  This example quantifies both, and adds the
thermal tax of stacking: cost per good unit (wafer cost, Murphy yield,
wafer-to-wafer bonding yield), junction-temperature estimates, and the
full 256-core cluster outline.

Run:  python examples/implementation_cost.py
"""

from repro.core.config import CAPACITIES_MIB, Flow, MemPoolConfig
from repro.physical.cluster_level import implement_cluster
from repro.physical.cost import analyze_cost, cost_ratio_3d_over_2d
from repro.physical.flow2d import implement_group_2d
from repro.physical.flow3d import implement_group_3d
from repro.physical.thermal import analyze_thermal


def main() -> None:
    print(f"{'cap':>4} {'flow':>4} {'die mm2':>8} {'$/unit':>7} {'yield':>6} "
          f"{'W/cm2':>6} {'Tj C':>6} {'cluster mm2':>12}")
    for cap in CAPACITIES_MIB:
        g2 = implement_group_2d(MemPoolConfig(cap, Flow.FLOW_2D))
        g3 = implement_group_3d(MemPoolConfig(cap, Flow.FLOW_3D))
        for impl in (g2, g3):
            cost = analyze_cost(impl)
            heat = analyze_thermal(impl)
            cluster = implement_cluster(impl)
            flow = "3D" if impl.tile.is_3d else "2D"
            print(f"{cap:>3}M {flow:>4} {cost.die_area_mm2:8.1f} "
                  f"{cost.cost_per_good_unit_usd:7.2f} {cost.unit_yield:6.3f} "
                  f"{heat.power_density_w_per_cm2:6.1f} {heat.junction_c:6.1f} "
                  f"{cluster.footprint_um2 / 1e6:12.1f}")
        ratio = cost_ratio_3d_over_2d(g3, g2)
        print(f"      3D/2D cost ratio: {ratio:.2f} "
              f"(combined-area ratio: {g3.combined_area_um2 / g2.combined_area_um2:.2f})")

    print("\nTakeaways:")
    print("  - 3D silicon costs more per unit (two dies + untested-die bonding),")
    print("    but the overhead tracks the combined-area column of Table II and")
    print("    shrinks as the SPM grows.")
    print("  - The footprint advantage makes 3D power density ~1.5-2x the 2D one;")
    print("    junction temperatures stay manageable at group-level power.")
    print("  - The cluster-level footprint ratio is slightly better than the")
    print("    group-level one, as Section V-A anticipates.")


if __name__ == "__main__":
    main()
