#!/usr/bin/env python3
"""Floorplan and congestion maps (Figures 3-5 of the paper).

Renders ASCII versions of the paper's physical views: the memory-die
macro arrays of Figure 3 (including the 8 MiB design's 5x3 arrangement),
the cell-density and routing-demand maps of Figure 4, and the channel
geometry comparison behind Figure 5.

Run:  python examples/floorplan_maps.py [config-name]
"""

import sys

from repro.core.config import CAPACITIES_MIB, Flow, MemPoolConfig, config_by_name
from repro.physical.flow2d import implement_group_2d
from repro.physical.flow3d import implement_group, memory_die_array
from repro.physical.maps import cell_density_map, routing_demand_map


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "MemPool-3D-4MiB"
    config = config_by_name(name)

    print("Memory-die macro arrays (Figure 3):")
    for cap in CAPACITIES_MIB:
        array = memory_die_array(MemPoolConfig(cap, Flow.FLOW_3D))
        print(
            f"  {cap} MiB: {array.count} macros as {array.rows}x{array.cols}, "
            f"{array.width_um:.0f} x {array.height_um:.0f} um"
        )

    impl = implement_group(config)
    print(f"\n{config.name} group: {impl.placement.width_um:.0f} x "
          f"{impl.placement.height_um:.0f} um, channels "
          f"{impl.placement.channels.outer_width_um:.0f} / "
          f"{impl.placement.channels.center_width_um:.0f} um (outer / center)")

    print("\n" + cell_density_map(impl, bins=24).to_ascii())
    print("\n" + routing_demand_map(impl, bins=24).to_ascii())

    # Figure 5's headline: the 3D channels are ~18 % narrower.
    if config.is_3d:
        config_2d = MemPoolConfig(config.capacity_mib, Flow.FLOW_2D)
        impl_2d = implement_group_2d(config_2d)
        w2 = impl_2d.placement.channels.total_width_um
        w3 = impl.placement.channels.total_width_um
        print(
            f"\nChannel width vs {config_2d.name}: {w3:.0f} vs {w2:.0f} um "
            f"({(1 - w3 / w2) * 100:.0f}% narrower; paper ~18%)"
        )


if __name__ == "__main__":
    main()
