#!/usr/bin/env python3
"""Kernel zoo: DSP workloads on the cycle-level MemPool simulator.

Runs verified instruction-level simulations of the kernel library (matmul,
dot product, AXPY, 2D convolution) on a MemPool cluster, reporting cycles,
simulator-measured IPC, and the SPM traffic locality split (1-cycle local
/ 3-cycle group / 5-cycle cluster accesses).

Run:  python examples/kernel_zoo.py
"""

from repro.arch.cluster import MemPoolCluster
from repro.core.config import Flow, MemPoolConfig
from repro.kernels.matmul import run_matmul
from repro.kernels.workloads import run_axpy, run_conv2d, run_dotp
from repro.simulator.engine import run_cluster
from repro.simulator.program import memcpy_program
from repro.simulator.trace import collect_trace


def main() -> None:
    config = MemPoolConfig(capacity_mib=1, flow=Flow.FLOW_2D)
    cores = 16

    print(f"{'kernel':>12} {'cycles':>8} {'instrs':>8} {'verified':>9}")
    mm = run_matmul(config, n=16, num_cores=cores)
    print(f"{'matmul 16x16':>12} {mm.cycles:8d} {mm.instructions:8d} {str(mm.correct):>9}")
    dp = run_dotp(config, num_elements=256, num_cores=cores)
    print(f"{'dotp 256':>12} {dp.cycles:8d} {dp.instructions:8d} {str(dp.correct):>9}")
    ax = run_axpy(config, num_elements=256, num_cores=cores)
    print(f"{'axpy 256':>12} {ax.cycles:8d} {ax.instructions:8d} {str(ax.correct):>9}")
    cv = run_conv2d(config, width=16, height=16, num_cores=cores)
    print(f"{'conv2d 16x16':>12} {cv.cycles:8d} {cv.instructions:8d} {str(cv.correct):>9}")

    # Traffic locality: run a bulk copy and inspect the fabric counters.
    cluster = MemPoolCluster(config)
    cluster.write_words(0, list(range(1024)))
    cluster.load_program(memcpy_program(1024, cores, 0, 4096 * 4), num_cores=cores)
    result = run_cluster(cluster)
    trace = collect_trace(cluster, result.cycles)
    local, group, remote = trace.locality_fractions
    print(f"\nmemcpy of 1024 words on {cores} cores: {result.cycles} cycles, "
          f"IPC {trace.instructions / trace.cycles:.2f}")
    print(f"  SPM access locality: {local * 100:4.1f}% local (1 cycle), "
          f"{group * 100:4.1f}% group (3 cycles), {remote * 100:4.1f}% cluster (5 cycles)")
    print(f"  bank-conflict rate: {trace.conflict_rate * 100:.2f}%")
    print(f"  I$ hit rate: {trace.icache_hit_rate * 100:.1f}%")


if __name__ == "__main__":
    main()
