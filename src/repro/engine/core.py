"""The execution engine: one batched evaluation path for every consumer.

:class:`Engine` is where batching, caching, and parallelism live.  The
serial :class:`~repro.core.explorer.Explorer`, the ``repro.sweep``
executor, the ``repro.search`` driver, and the experiment harness all
funnel their evaluations through :meth:`Engine.run_many`, which

* normalizes :class:`~repro.api.Scenario` and
  :class:`~repro.sweep.spec.Job` inputs onto content-addressed jobs,
* serves repeats from a two-tier cache (bounded in-memory LRU over the
  on-disk :class:`~repro.sweep.cache.ResultCache`),
* fans the rest out through a pluggable :mod:`execution backend
  <repro.engine.backends>`, and
* streams ``(job, record)`` pairs back as they complete, each job under
  a per-item error trap (the sweep's failure-record semantics).

Cache keys, record shapes, and failure handling are exactly the sweep
engine's, so results are interchangeable across every layer.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Iterator, Optional, Union

from pathlib import Path

from ..api.scenario import Scenario
from ..obs import trace as _trace
from ..sweep.cache import ResultCache
from ..sweep.spec import Job
from ..sweep.store import ResultStore
from .backends import ExecutionBackend, resolve_backend
from .cache import DEFAULT_LRU_SIZE, TieredCache, stage_cache_for

#: Anything run_many accepts as one evaluation request.
RunItem = Union[Scenario, Job]

#: Progress callback: ``(done, total, record)`` per completed item.
ProgressCallback = Callable[[int, int, dict], None]


def evaluate_job(job: Job, stage_root: Optional[str] = None):
    """Evaluate one job (top-level and picklable: safe to ship to workers).

    Runs the job's canonical scenario through the ``repro.api`` pipeline,
    so the engine shares one evaluation path with every other consumer —
    including workloads registered via ``@register_workload``.

    Args:
        job: The design point to evaluate.
        stage_root: Cache directory of the process-wide
            :class:`~repro.engine.cache.StageCache` memoizing the
            physical and workload stages (``None`` disables stage
            memoization).  Passed as a plain string so the engine can
            ship it to pool workers via :func:`functools.partial`; each
            worker then shares one memo per cache directory.
    """
    from ..api.pipeline import Pipeline  # local: keeps worker imports lazy

    cache = stage_cache_for(stage_root) if stage_root is not None else None
    return Pipeline(stage_cache=cache).run(job.scenario()).to_design_point()


#: Marks evaluate functions that accept the engine's ``stage_root``
#: keyword; wrappers (e.g. the sweep shim's) opt in by setting it too.
evaluate_job.supports_stage_root = True  # type: ignore[attr-defined]


@dataclass(frozen=True)
class EngineStats:
    """Bookkeeping of one engine batch."""

    total: int
    cached: int
    evaluated: int
    failed: int
    duration_s: float
    memory_hits: int = 0
    disk_hits: int = 0

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.total} jobs: {self.cached} cached "
            f"({self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.evaluated} evaluated, {self.failed} failed "
            f"in {self.duration_s:.2f}s"
        )


@dataclass
class EngineOutcome:
    """Materialized results of one batch, in (deduplicated) input order."""

    jobs: list[Job]
    records: list[dict]
    stats: EngineStats

    @property
    def ok_records(self) -> list[dict]:
        """Successful records only."""
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def failures(self) -> list[dict]:
        """Failure records only."""
        return [r for r in self.records if r["status"] != "ok"]

    def points(self):
        """Design points of the successful records, in job order."""
        from ..sweep.store import record_to_point

        return [record_to_point(r) for r in self.ok_records]


class Engine:
    """Batched, cached, backend-pluggable scenario evaluator.

    Args:
        backend: Registered backend name (``serial``/``thread``/
            ``process`` built in), an :class:`ExecutionBackend` class or
            instance, or ``None`` (the default) for ``process`` when
            ``workers > 1`` and ``serial`` otherwise — so a plain
            ``Engine(workers=8)`` actually uses its workers.
        workers: Worker count for pool backends (0 = one per core).
        cache: Persistent tier — a :class:`ResultCache`, a ready
            :class:`TieredCache`, or ``None`` for in-memory-only caching.
        lru_size: Bound of the in-memory tier (0 disables it).
        evaluate: Evaluation function (must be a picklable top-level
            callable for process backends).
        store: Optional append-only audit log receiving every record,
            cache hits included.
        on_result: Optional default progress callback, called as
            ``on_result(done, total, record)`` after every completion.
        mp_context: Multiprocessing context for process backends.
        chunksize: Explicit chunk size for chunking backends.
        trace: Arm :mod:`repro.obs.trace` for this process — ``True``
            uses the default sink (or ``REPRO_TRACE_FILE``), a path
            redirects it.  ``None`` (default) leaves the ambient state
            alone, so ``REPRO_TRACE=1`` keeps working and a disarmed
            engine adds a single boolean check per span site.
        stage_cache: Memoize the pipeline's physical and workload stages
            in a :class:`~repro.engine.cache.StageCache` rooted at the
            disk cache's directory (the default).  Only applies to the
            default :func:`evaluate_job` with a persistent cache — a K
            kernels x A archs sweep then implements each architecture
            exactly once.  Pass ``False`` to evaluate both stages per
            job.
    """

    def __init__(
        self,
        backend: Union[str, ExecutionBackend, None] = None,
        workers: int = 0,
        cache: Union[ResultCache, TieredCache, None] = None,
        lru_size: int = DEFAULT_LRU_SIZE,
        evaluate: Callable[[Job], object] = evaluate_job,
        store: Optional[ResultStore] = None,
        on_result: Optional[ProgressCallback] = None,
        mp_context=None,
        chunksize: Optional[int] = None,
        trace: Union[bool, str, Path, None] = None,
        stage_cache: bool = True,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if trace:
            _trace.enable(None if trace is True else trace)
        self.backend = resolve_backend(
            backend, workers=workers, mp_context=mp_context, chunksize=chunksize
        )
        if isinstance(cache, TieredCache):
            self.cache = cache
        else:
            self.cache = TieredCache(disk=cache, lru_size=lru_size)
        self.evaluate = evaluate
        self.stage_root: Optional[str] = None
        if (
            stage_cache
            and getattr(evaluate, "supports_stage_root", False)
            and self.cache.disk is not None
        ):
            # partial() keeps the evaluate picklable: pool workers get
            # the root as a string and build their own process-wide memo.
            self.stage_root = str(self.cache.disk.root)
            self.evaluate = partial(evaluate, stage_root=self.stage_root)
        self.store = store
        self.on_result = on_result

    def stage_counters(self) -> Optional[dict[str, int]]:
        """This process's stage-cache counters, or ``None`` if disabled.

        Pool workers keep their own counters; each evaluation batch
        flushes its deltas into the cache directory's ``stats.json``
        sidecar, which ``repro cache stats`` aggregates.
        """
        if self.stage_root is None:
            return None
        return stage_cache_for(self.stage_root).counters()

    @staticmethod
    def _job_of(item: RunItem) -> Job:
        if isinstance(item, Job):
            return item
        if isinstance(item, Scenario):
            return Job.from_scenario(item)
        raise TypeError(
            f"engine items must be Scenario or Job, got {type(item).__name__}"
        )

    def run_many(
        self,
        items: Iterable[RunItem],
        on_result: Optional[ProgressCallback] = None,
    ) -> Iterator[tuple[Job, dict]]:
        """Stream ``(job, record)`` pairs as evaluations complete.

        Duplicate content addresses are evaluated once.  Cache hits are
        yielded first (in input order, ``source == "cache"``); the rest
        stream back in completion order (``source == "evaluated"``).
        Failures surface as failure records — never exceptions — and
        stay out of the cache, so a re-run retries exactly them.
        """
        jobs: dict[str, Job] = {}
        for item in items:
            job = self._job_of(item)
            jobs.setdefault(job.key, job)

        # Adopt anything other writers (parallel engines, service
        # workers, cache merges) appended to the shared disk tier since
        # we last looked, so their evaluations serve as cache hits here.
        self.cache.refresh()
        callback = on_result if on_result is not None else self.on_result
        total = len(jobs)
        done = 0
        pending: list[Job] = []
        batch_span = _trace.span("engine.run_many", total=total)
        try:
            with batch_span:
                for key, job in jobs.items():
                    cached = self.cache.get(key)
                    if cached is not None and cached.get("status") == "ok":
                        record = {**cached, "source": "cache"}
                        done += 1
                        self._emit(record, done, total, callback)
                        yield job, record
                    else:
                        pending.append(job)
                batch_span.set(cached=done, pending=len(pending))

                backend_span = _trace.span(
                    "engine.backend",
                    backend=getattr(
                        self.backend, "name", type(self.backend).__name__
                    ),
                    jobs=len(pending),
                )
                with backend_span:
                    for raw in self.backend.run(self.evaluate, pending):
                        if raw["status"] == "ok":
                            self.cache.put(raw)
                        record = {**raw, "source": "evaluated"}
                        done += 1
                        self._emit(record, done, total, callback)
                        yield jobs[record["key"]], record
        finally:
            self.cache.flush_stats()
            if self.stage_root is not None:
                stage_cache_for(self.stage_root).flush_stats()
                # Flush analytic-tier deltas without importing the tier
                # on every (non-analytic) run: only a loaded module can
                # have pending counters.
                tier = sys.modules.get("repro.analytic.tier")
                if tier is not None:
                    tier.flush_analytic_stats(self.stage_root)

    def _emit(
        self,
        record: dict,
        done: int,
        total: int,
        callback: Optional[ProgressCallback],
    ) -> None:
        if self.store is not None:
            self.store.append(record)
        if callback is not None:
            callback(done, total, record)

    def run(
        self,
        items: Iterable[RunItem],
        on_result: Optional[ProgressCallback] = None,
    ) -> EngineOutcome:
        """Materialized :meth:`run_many`: records in deduplicated input order."""
        t0 = time.perf_counter()
        memory0, disk0 = self.cache.memory_hits, self.cache.disk_hits
        ordered: list[Job] = []
        seen: set[str] = set()
        for item in items:
            job = self._job_of(item)
            if job.key not in seen:
                seen.add(job.key)
                ordered.append(job)
        by_key = {
            job.key: record
            for job, record in self.run_many(ordered, on_result=on_result)
        }
        records = [by_key[job.key] for job in ordered]
        evaluated = sum(1 for r in records if r["source"] == "evaluated")
        stats = EngineStats(
            total=len(records),
            cached=len(records) - evaluated,
            evaluated=evaluated,
            failed=sum(1 for r in records if r["status"] != "ok"),
            duration_s=time.perf_counter() - t0,
            memory_hits=self.cache.memory_hits - memory0,
            disk_hits=self.cache.disk_hits - disk0,
        )
        return EngineOutcome(jobs=ordered, records=records, stats=stats)
