"""Two-tier result caching: a bounded in-memory LRU over the disk cache.

The engine consults the memory tier first, then the content-addressed
on-disk :class:`~repro.sweep.cache.ResultCache`; disk hits are promoted
into the LRU, so repeated points inside one process — search
generations, experiment reruns, tests — never go back to the disk tier.
Keys already embed :data:`~repro.api.scenario.CODE_MODEL_VERSION`, so a
model-version bump invalidates both tiers at once: old entries simply
stop being addressed.

The module also owns the cache-maintenance helpers behind the
``repro cache`` CLI: a sidecar hit/miss counter (flushed batch-wise by
the engine, never on the per-lookup hot path), ``clear``, and a ``gc``
that prunes entries written under old code-model versions.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from ..sweep.cache import ResultCache
from ..sweep.spec import Job

#: Default bound of the in-memory tier.  Records are small dicts (a few
#: hundred bytes), so the default costs at most a few megabytes.
DEFAULT_LRU_SIZE = 4096

#: Sidecar file (inside the cache directory) accumulating hit counters.
STATS_FILENAME = "stats.json"

_COUNTER_KEYS = ("memory_hits", "disk_hits", "misses", "stores")


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    Args:
        maxsize: Entry bound; ``0`` disables the cache entirely (every
            ``get`` misses, every ``put`` is dropped).
    """

    def __init__(self, maxsize: int = DEFAULT_LRU_SIZE) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self.maxsize = maxsize
        self._data: OrderedDict[str, dict] = OrderedDict()

    def get(self, key: str) -> Optional[dict]:
        """The cached record for ``key`` (refreshing its recency), or None."""
        record = self._data.get(key)
        if record is not None:
            self._data.move_to_end(key)
        return record

    def put(self, key: str, record: dict) -> None:
        """Insert a record, evicting the oldest entry past the bound."""
        if self.maxsize == 0:
            return
        self._data[key] = record
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


class TieredCache:
    """Memory-over-disk result cache with batch-flushed hit counters.

    Args:
        disk: The persistent tier; ``None`` keeps the cache purely
            in-memory (still useful: repeated points in one process).
        lru_size: Bound of the memory tier; ``0`` disables it, making
            this a thin counting wrapper over the disk tier.
    """

    def __init__(
        self,
        disk: Optional[ResultCache] = None,
        lru_size: int = DEFAULT_LRU_SIZE,
    ) -> None:
        self.disk = disk
        self.memory = LRUCache(lru_size)
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self._flushed = dict.fromkeys(_COUNTER_KEYS, 0)

    def get(self, key: str) -> Optional[dict]:
        """Look up a record: memory tier first, disk promoted on hit."""
        record = self.memory.get(key)
        if record is not None:
            self.memory_hits += 1
            return record
        if self.disk is not None:
            record = self.disk.get(key)
            if record is not None:
                self.disk_hits += 1
                self.memory.put(key, record)
                return record
        self.misses += 1
        return None

    def put(self, record: dict) -> None:
        """Store a record in both tiers (must carry a ``key``)."""
        key = record.get("key")
        if not key:
            raise ValueError("cache records must carry a 'key'")
        self.stores += 1
        self.memory.put(key, record)
        if self.disk is not None:
            self.disk.put(record)

    def counters(self) -> dict[str, int]:
        """The current in-process counter values."""
        return {name: getattr(self, name) for name in _COUNTER_KEYS}

    def flush_stats(self) -> None:
        """Merge counter growth since the last flush into the disk sidecar.

        In-process counters stay cumulative (callers diff them across
        batches); only the delta reaches disk.  A no-op without a disk
        tier.  Called by the engine once per batch, so the per-lookup
        hot path never touches the filesystem.
        """
        counters = self.counters()
        delta = {
            name: counters[name] - self._flushed[name] for name in _COUNTER_KEYS
        }
        self._flushed = counters
        if self.disk is None or not any(delta.values()):
            return
        path = self.disk.root / STATS_FILENAME
        merged = {**_load_sidecar(path)}
        for name, value in delta.items():
            merged[name] = merged.get(name, 0) + value
        # Atomic replace: a concurrent reader never sees a torn file
        # (simultaneous writers can still lose each other's delta —
        # acceptable for an advisory counter).
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(merged, sort_keys=True), encoding="utf-8")
        tmp.replace(path)


def _load_sidecar(path: Path) -> dict[str, int]:
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return {}
    return {k: int(v) for k, v in data.items() if isinstance(v, (int, float))}


def _open_existing(root: str | Path) -> Optional[ResultCache]:
    """The cache at ``root``, or ``None`` — without creating anything.

    Maintenance commands are inspection tools: a mistyped ``--cache-dir``
    must never leave a directory (or an empty cache file) behind, so the
    directory-creating :class:`ResultCache` constructor only runs when
    the directory already exists.
    """
    if not Path(root).is_dir():
        return None
    return ResultCache(root)


def cache_stats(root: str | Path) -> dict:
    """Summary of an on-disk cache: entries, bytes, and hit counters.

    The hit rate folds both tiers' hits against misses, as accumulated
    by engine runs into the sidecar counter (absent counters read as 0).
    Read-only: a missing cache reports zero entries and is not created.
    """
    cache = _open_existing(root)
    counters = (
        _load_sidecar(cache.root / STATS_FILENAME) if cache is not None else {}
    )
    hits = counters.get("memory_hits", 0) + counters.get("disk_hits", 0)
    lookups = hits + counters.get("misses", 0)
    versions: dict[str, int] = {}
    if cache is not None:
        for key in cache.keys():
            version = _record_version(cache.get(key))
            versions[version] = versions.get(version, 0) + 1
    return {
        "path": str(Path(root) / ResultCache.FILENAME),
        "entries": len(cache) if cache is not None else 0,
        "bytes": (
            cache.path.stat().st_size
            if cache is not None and cache.path.exists()
            else 0
        ),
        "versions": versions,
        **{name: counters.get(name, 0) for name in _COUNTER_KEYS},
        "hit_rate": (hits / lookups) if lookups else None,
    }


def cache_clear(root: str | Path) -> int:
    """Delete every cache entry (and the sidecar); returns entries removed.

    A missing cache directory is a no-op, never created.
    """
    cache = _open_existing(root)
    if cache is None:
        return 0
    removed = len(cache)
    cache.path.unlink(missing_ok=True)
    (cache.root / STATS_FILENAME).unlink(missing_ok=True)
    return removed


def _record_version(record: Optional[dict]) -> str:
    """The code-model version a cache record was written under.

    Recent records carry it explicitly; legacy records are classified by
    recomputing the key from the stored job parameters — a match means
    the record addresses the *current* version (keys embed the version).
    """
    from ..api.scenario import CODE_MODEL_VERSION

    if not record:
        return "unknown"
    version = record.get("model_version")
    if version:
        return str(version)
    try:
        if Job.from_params(record["job"]).key == record["key"]:
            return CODE_MODEL_VERSION
    except Exception:
        pass
    return "unknown"


def cache_gc(
    root: str | Path, keep_version: Optional[str] = None
) -> tuple[int, int]:
    """Prune cache entries written under other code-model versions.

    Args:
        root: Cache directory.
        keep_version: The version whose entries survive; defaults to the
            current :data:`~repro.api.scenario.CODE_MODEL_VERSION`.

    Returns:
        ``(kept, pruned)`` entry counts.  The cache file is rewritten
        atomically (temp file + rename), deduplicated by key.  A missing
        cache is a no-op — nothing is created.
    """
    from ..api.scenario import CODE_MODEL_VERSION

    keep = keep_version or CODE_MODEL_VERSION
    cache = _open_existing(root)
    if cache is None or not cache.path.exists():
        return 0, 0
    kept, pruned = [], 0
    for key in cache.keys():
        record = cache.get(key)
        if _record_version(record) == keep:
            kept.append(record)
        else:
            pruned += 1
    tmp = cache.path.with_suffix(".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        for record in kept:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    tmp.replace(cache.path)
    return len(kept), pruned
