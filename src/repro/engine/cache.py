"""Result caching tiers: in-memory LRU, disk records, and stage memos.

The engine consults the memory tier first, then the content-addressed
on-disk :class:`~repro.sweep.cache.ResultCache`; disk hits are promoted
into the LRU, so repeated points inside one process — search
generations, experiment reruns, tests — never go back to the disk tier.
Keys already embed :data:`~repro.api.scenario.CODE_MODEL_VERSION`, so a
model-version bump invalidates both tiers at once: old entries simply
stop being addressed.

The third tier is the :class:`StageCache`: ``Pipeline.run`` factors into
two independent stages — the physical ``implement()`` (keyed by
flow/capacity/arch/frequency only) and the workload ``cycles()`` (keyed
by workload/tiling/arch/bandwidth only) — and each stage result is
memoized under its own content address
(:attr:`~repro.api.scenario.Scenario.physical_key` /
:attr:`~repro.api.scenario.Scenario.cycles_key`).  A sweep of K kernels
across A architectures therefore performs A physical implementations
instead of A x K, and cycle counts are shared across flow, frequency,
and objective variants.

The module also owns the cache-maintenance helpers behind the
``repro cache`` CLI: a sidecar hit/miss counter (flushed batch-wise by
the engine, never on the per-lookup hot path), ``clear``, and a ``gc``
that prunes entries written under old code-model versions.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from ..analysis import racecheck as _racecheck
from ..sweep.cache import ResultCache, _FileLock, atomic_append
from ..sweep.spec import Job

#: Default bound of the in-memory tier.  Records are small dicts (a few
#: hundred bytes), so the default costs at most a few megabytes.
DEFAULT_LRU_SIZE = 4096

#: Sidecar file (inside the cache directory) accumulating hit counters.
STATS_FILENAME = "stats.json"

_COUNTER_KEYS = ("memory_hits", "disk_hits", "misses", "stores")

#: Stage-tier counters, merged into the same sidecar.
STAGE_COUNTER_KEYS = (
    "physical_hits", "physical_evals", "cycles_hits", "cycles_evals",
)

#: Batch-level counters (the ``batched`` backend's fleet phase), merged
#: into the same sidecar so ``repro cache stats`` exposes warm-vs-cold
#: batching behaviour next to the per-job stage counters.
BATCH_COUNTER_KEYS = ("batches_formed", "batch_lanes", "batch_fallbacks")

#: Analytic-tier counters (the ``analytic`` engine's tier-0 path),
#: merged into the same sidecar: predictions served from calibrated
#: closed forms, calibrations fitted, and fallbacks to the fast engine
#: (no predictor, calibration failed, or achieved error out of bound).
ANALYTIC_COUNTER_KEYS = (
    "analytic_predictions", "analytic_calibrations", "analytic_fallbacks",
)


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    Args:
        maxsize: Entry bound; ``0`` disables the cache entirely (every
            ``get`` misses, every ``put`` is dropped).
    """

    def __init__(self, maxsize: int = DEFAULT_LRU_SIZE) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self.maxsize = maxsize
        self._data: OrderedDict[str, dict] = OrderedDict()

    def get(self, key: str) -> Optional[dict]:
        """The cached record for ``key`` (refreshing its recency), or None."""
        record = self._data.get(key)
        if record is not None:
            self._data.move_to_end(key)
        return record

    def put(self, key: str, record: dict) -> None:
        """Insert a record, evicting the oldest entry past the bound."""
        if self.maxsize == 0:
            return
        self._data[key] = record
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


class TieredCache:
    """Memory-over-disk result cache with batch-flushed hit counters.

    Args:
        disk: The persistent tier; ``None`` keeps the cache purely
            in-memory (still useful: repeated points in one process).
        lru_size: Bound of the memory tier; ``0`` disables it, making
            this a thin counting wrapper over the disk tier.
        stats_flush_interval_s: Minimum seconds between sidecar merges.
            ``0`` (the default) persists counter growth on every
            :meth:`flush_stats` call.  A service handling thousands of
            small batches per second sets this to coalesce the locked
            read-modify-write of ``stats.json`` (a ~0.3 ms serialised
            disk rename per call otherwise); deltas accumulate
            in-process and ``flush_stats(force=True)`` drains them.
    """

    def __init__(
        self,
        disk: Optional[ResultCache] = None,
        lru_size: int = DEFAULT_LRU_SIZE,
        stats_flush_interval_s: float = 0.0,
    ) -> None:
        self.disk = disk
        self.stats_flush_interval_s = stats_flush_interval_s
        self._last_sidecar_merge = -float("inf")
        self.memory = LRUCache(lru_size)
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self._flushed = dict.fromkeys(_COUNTER_KEYS, 0)
        # One engine per thread is the common case, but the service
        # shares a cache across concurrent request handlers; the LRU's
        # OrderedDict is not safe under concurrent mutation, so tier
        # operations serialize on a short critical section.
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[dict]:
        """Look up a record: memory tier first, disk promoted on hit."""
        with self._lock:
            record = self.memory.get(key)
            if record is not None:
                self.memory_hits += 1
                return record
            if self.disk is not None:
                record = self.disk.get(key)
                if record is not None:
                    self.disk_hits += 1
                    self.memory.put(key, record)
                    return record
            self.misses += 1
            return None

    def put(self, record: dict) -> None:
        """Store a record in both tiers (must carry a ``key``)."""
        key = record.get("key")
        if not key:
            raise ValueError("cache records must carry a 'key'")
        with self._lock:
            self.stores += 1
            self.memory.put(key, record)
        if self.disk is not None:
            self.disk.put(record)

    def refresh(self) -> int:
        """Fold other writers' disk appends into the persistent tier."""
        if self.disk is None:
            return 0
        return self.disk.refresh()

    def counters(self) -> dict[str, int]:
        """The current in-process counter values."""
        return {name: getattr(self, name) for name in _COUNTER_KEYS}

    def flush_stats(self, force: bool = False) -> None:
        """Merge counter growth since the last flush into the disk sidecar.

        In-process counters stay cumulative (callers diff them across
        batches); only the delta reaches disk.  A no-op without a disk
        tier.  Called by the engine once per batch, so the per-lookup
        hot path never touches the filesystem.  With a nonzero
        ``stats_flush_interval_s`` the delta keeps accumulating until
        the interval elapses (or ``force=True`` drains it), so per-batch
        callers never serialise on the sidecar lock.
        """
        if self.disk is None:
            self._flushed = self.counters()
            return
        now = time.monotonic()
        if (
            not force
            and self.stats_flush_interval_s > 0
            and now - self._last_sidecar_merge < self.stats_flush_interval_s
        ):
            return
        counters = self.counters()
        delta = {
            name: counters[name] - self._flushed[name] for name in _COUNTER_KEYS
        }
        self._flushed = counters
        self._last_sidecar_merge = now
        if not any(delta.values()):
            return
        _merge_sidecar(self.disk.root / STATS_FILENAME, delta)


class StageCache:
    """Persistent memo of per-stage pipeline results (the third tier).

    Two stages are memoized: ``physical`` maps
    :attr:`~repro.api.scenario.Scenario.physical_key` to a
    :class:`~repro.core.metrics.GroupResult`, and ``cycles`` maps
    :attr:`~repro.api.scenario.Scenario.cycles_key` to a cycle count.
    Values live in an in-process dict backed by an append-only JSONL
    file (``stages.jsonl``) inside the cache directory, shared with the
    record cache; worker processes each load the file once and append
    their own computations (torn lines are skipped on load, exactly like
    the record cache).

    Args:
        root: Cache directory, or ``None`` for a purely in-memory memo.
    """

    FILENAME = "stages.jsonl"
    LOCKNAME = "stages.lock"

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / self.FILENAME if self.root else None
        self._values: dict[str, object] = {}
        self._stages: dict[str, str] = {}  # key -> stage name (for merges)
        self._physical: dict[str, object] = {}  # materialized GroupResults
        self._offset = 0
        self.physical_hits = 0
        self.physical_evals = 0
        self.cycles_hits = 0
        self.cycles_evals = 0
        self._flushed = dict.fromkeys(STAGE_COUNTER_KEYS, 0)
        self._flush_lock = threading.Lock()
        self._read_tail()

    def __len__(self) -> int:
        return len(self._values)

    def _read_tail(self) -> int:
        """Parse memo lines appended since the last read (see ResultCache).

        Only complete lines advance the offset; a trailing fragment may
        be another writer's append in flight and is retried next call.
        """
        if self.path is None or not self.path.exists():
            return 0
        with self.path.open("rb") as fh:
            fh.seek(self._offset)
            data = fh.read()
        if not data:
            return 0
        end = data.rfind(b"\n")
        if end < 0:
            return 0
        added = 0
        for raw in data[: end + 1].splitlines():
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from an interrupted run
            key = record.get("key")
            if key and "value" in record:
                if key not in self._values:
                    added += 1
                self._values[key] = record["value"]
                self._stages[key] = record.get("stage", "cycles")
        self._offset += end + 1
        return added

    def items(self):
        """Snapshot of ``(key, raw value)`` pairs (counters untouched)."""
        return list(self._values.items())

    def peek(self, key: str):
        """The raw memoized value for ``key`` (counters untouched)."""
        return self._values.get(key)

    def stage_of(self, key: str) -> str:
        """Which stage (``physical``/``cycles``) a memo key belongs to."""
        return self._stages.get(key, "cycles")

    def refresh(self) -> int:
        """Fold memos appended by other writers into the in-process view."""
        with self._flush_lock:
            return self._read_tail()

    def _append(self, stage: str, key: str, value) -> None:
        from ..api.scenario import CODE_MODEL_VERSION

        if self.path is None:
            self._values[key] = value
            self._stages[key] = stage
            return
        record = {
            "stage": stage,
            "key": key,
            "value": value,
            "model_version": CODE_MODEL_VERSION,
        }
        try:
            # Locked read-check-append: the tail another worker wrote is
            # folded in first, so a stage memoized concurrently is not
            # appended twice, and the single O_APPEND write keeps lines
            # whole under concurrency.  A failed append only costs a
            # recomputation later.
            with self._flush_lock, _FileLock(self.root / self.LOCKNAME):
                self._read_tail()
                if self._values.get(key) != value:
                    atomic_append(
                        self.path, json.dumps(record, sort_keys=True) + "\n"
                    )
                    self._read_tail()
        except OSError:
            pass
        self._values[key] = value
        self._stages[key] = stage

    # -- physical stage -------------------------------------------------
    def get_physical(self, key: str):
        """The memoized :class:`GroupResult` for ``key``, or ``None``."""
        result = self._physical.get(key)
        if result is not None:
            self.physical_hits += 1
            return result
        raw = self._values.get(key)
        if raw is None:
            return None
        from ..core.metrics import GroupResult

        result = GroupResult(**raw)
        self._physical[key] = result
        self.physical_hits += 1
        return result

    def put_physical(self, key: str, result) -> None:
        """Memoize a freshly-implemented physical stage result."""
        from dataclasses import asdict

        self.physical_evals += 1
        self._physical[key] = result
        self._append("physical", key, asdict(result))

    # -- cycles stage ---------------------------------------------------
    def get_cycles(self, key: str) -> Optional[float]:
        """The memoized workload cycle count for ``key``, or ``None``."""
        raw = self._values.get(key)
        if raw is None:
            return None
        self.cycles_hits += 1
        return float(raw)  # type: ignore[arg-type]

    def put_cycles(self, key: str, cycles: float) -> None:
        """Memoize a freshly-evaluated workload cycle count."""
        self.cycles_evals += 1
        self._append("cycles", key, float(cycles))

    # -- counters -------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """The current in-process stage counter values."""
        return {name: getattr(self, name) for name in STAGE_COUNTER_KEYS}

    def flush_stats(self) -> None:
        """Merge counter growth since the last flush into the sidecar.

        Same delta contract as :meth:`TieredCache.flush_stats`; both
        tiers share one ``stats.json``, under disjoint counter names.
        The delta snapshot is taken under a lock, so concurrent flushes
        (thread-backend engines sharing one process-wide cache) never
        double-count an increment.
        """
        with self._flush_lock:
            counters = self.counters()
            delta = {
                name: counters[name] - self._flushed[name]
                for name in STAGE_COUNTER_KEYS
            }
            self._flushed = counters
            if self.root is None or not any(delta.values()):
                return
            _merge_sidecar(self.root / STATS_FILENAME, delta)


#: Process-wide stage caches, one per cache directory: serial runs and
#: pool workers alike funnel through :func:`stage_cache_for`, so every
#: evaluation in a process shares one memo per root.
_STAGE_CACHES: dict[str, StageCache] = {}


def stage_cache_for(root: str | Path) -> StageCache:
    """The process-wide :class:`StageCache` for a cache directory.

    Counter flushing is batch-wise, never per evaluation: the engine
    flushes after each batch in its own process, and pool workers flush
    once at process exit, so the per-job hot path never touches the
    sidecar file.  Multiprocessing children skip ``atexit`` (they leave
    via ``os._exit``), so the exit hook is registered with
    ``multiprocessing.util.Finalize`` as well, which their bootstrap
    does run; the delta-based flush makes running both a no-op.
    """
    from multiprocessing import util as mp_util

    key = str(root)
    cache = _STAGE_CACHES.get(key)
    if cache is None:
        cache = StageCache(root)
        _STAGE_CACHES[key] = cache
        atexit.register(cache.flush_stats)
        mp_util.Finalize(None, cache.flush_stats, exitpriority=10)
    return cache


def record_batch_stats(
    root: str | Path, batches: int = 0, lanes: int = 0, fallbacks: int = 0
) -> None:
    """Fold one batched-backend run's fleet counters into the sidecar.

    Called by :class:`~repro.engine.batch.BatchedBackend` after its
    fleet phase (once per engine batch, never per lane), under the same
    locked merge the hit counters use; ``repro cache stats`` and the
    service's ``GET /v1/cache`` surface the totals.  All-zero deltas are
    dropped without touching the filesystem.
    """
    delta = {
        "batches_formed": int(batches),
        "batch_lanes": int(lanes),
        "batch_fallbacks": int(fallbacks),
    }
    if not any(delta.values()) or not Path(root).is_dir():
        return
    _merge_sidecar(Path(root) / STATS_FILENAME, delta)


def record_analytic_stats(
    root: str | Path,
    predictions: int = 0,
    calibrations: int = 0,
    fallbacks: int = 0,
) -> None:
    """Fold one analytic-tier run's counters into the sidecar.

    Called by :func:`repro.analytic.tier.flush_analytic_stats` after an
    engine batch (never per prediction), under the same locked merge as
    every other counter family; ``repro cache stats`` and the service's
    cache endpoint surface the totals.  All-zero deltas are dropped
    without touching the filesystem.
    """
    delta = {
        "analytic_predictions": int(predictions),
        "analytic_calibrations": int(calibrations),
        "analytic_fallbacks": int(fallbacks),
    }
    if not any(delta.values()) or not Path(root).is_dir():
        return
    _merge_sidecar(Path(root) / STATS_FILENAME, delta)


def _merge_sidecar(path: Path, delta: dict[str, int]) -> None:
    """Fold counter deltas into the sidecar via a locked atomic replace.

    The read-modify-write runs under an advisory lockfile, so concurrent
    writers (engines, service workers, cache merges) each land their
    increments instead of overwriting each other's.  The temp file is
    per-process and the final step an atomic rename, so a reader never
    sees a torn file; where locking is unavailable a lost race drops a
    delta, which is acceptable for advisory counters.
    """
    from ..sweep.cache import _FileLock

    with _FileLock(path.with_suffix(".lock")):
        merged = {**_load_sidecar(path)}
        for name, value in delta.items():
            merged[name] = merged.get(name, 0) + value
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            tmp.write_text(
                json.dumps(merged, sort_keys=True), encoding="utf-8"
            )
            _racecheck.note_replace(path)
            tmp.replace(path)
        except OSError:
            tmp.unlink(missing_ok=True)


def merge_cache_dirs(src: str | Path, dst: str | Path) -> dict[str, int]:
    """Fold one cache directory into another (a worker's into the shared root).

    Copies every result record and stage memo ``dst`` does not already
    hold (locked, atomic appends — safe while engines are actively using
    either directory) and adds ``src``'s counter sidecar into ``dst``'s.
    Returns ``{"records": n, "stages": n}`` — how many entries were new.

    Raises:
        FileNotFoundError: If ``src`` is not a directory.
    """
    src, dst = Path(src), Path(dst)
    if not src.is_dir():
        raise FileNotFoundError(f"no cache directory at {src}")
    src_cache = ResultCache(src)
    dst_cache = ResultCache(dst)
    records = 0
    for key in src_cache.keys():
        if key not in dst_cache:
            dst_cache.put(src_cache.get(key))
            records += 1
    stages = 0
    src_stages = StageCache(src)
    if len(src_stages):
        dst_stages = StageCache(dst)
        for key, value in src_stages.items():
            if dst_stages.peek(key) != value:
                dst_stages._append(src_stages.stage_of(key), key, value)
                stages += 1
    counters = _load_sidecar(src / STATS_FILENAME)
    if counters:
        _merge_sidecar(dst / STATS_FILENAME, counters)
    return {"records": records, "stages": stages}


def _load_sidecar(path: Path) -> dict[str, int]:
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return {}
    return {k: int(v) for k, v in data.items() if isinstance(v, (int, float))}


def _open_existing(root: str | Path) -> Optional[ResultCache]:
    """The cache at ``root``, or ``None`` — without creating anything.

    Maintenance commands are inspection tools: a mistyped ``--cache-dir``
    must never leave a directory (or an empty cache file) behind, so the
    directory-creating :class:`ResultCache` constructor only runs when
    the directory already exists.
    """
    if not Path(root).is_dir():
        return None
    return ResultCache(root)


def cache_stats(root: str | Path) -> dict:
    """Summary of an on-disk cache: entries, bytes, and hit counters.

    The hit rate folds both tiers' hits against misses, as accumulated
    by engine runs into the sidecar counter (absent counters read as 0).
    Read-only: a missing cache reports zero entries and is not created.
    """
    cache = _open_existing(root)
    counters = (
        _load_sidecar(cache.root / STATS_FILENAME) if cache is not None else {}
    )
    hits = counters.get("memory_hits", 0) + counters.get("disk_hits", 0)
    lookups = hits + counters.get("misses", 0)
    versions: dict[str, int] = {}
    if cache is not None:
        for key in cache.keys():
            version = _record_version(cache.get(key))
            versions[version] = versions.get(version, 0) + 1
    stage_entries = 0
    stage_path = Path(root) / StageCache.FILENAME
    if cache is not None and stage_path.exists():
        stage_entries = len(StageCache(root))
    calibration_entries = 0
    from ..analytic.store import CalibrationStore

    cal_path = Path(root) / CalibrationStore.FILENAME
    if cache is not None and cal_path.exists():
        calibration_entries = len(CalibrationStore(root))
    batches = counters.get("batches_formed", 0)
    return {
        "path": str(Path(root) / ResultCache.FILENAME),
        "entries": len(cache) if cache is not None else 0,
        "bytes": (
            cache.path.stat().st_size
            if cache is not None and cache.path.exists()
            else 0
        ),
        "versions": versions,
        **{name: counters.get(name, 0) for name in _COUNTER_KEYS},
        "hit_rate": (hits / lookups) if lookups else None,
        "stage_entries": stage_entries,
        **{name: counters.get(name, 0) for name in STAGE_COUNTER_KEYS},
        **{name: counters.get(name, 0) for name in BATCH_COUNTER_KEYS},
        "batch_mean_occupancy": (
            counters.get("batch_lanes", 0) / batches if batches else None
        ),
        **{name: counters.get(name, 0) for name in ANALYTIC_COUNTER_KEYS},
        "calibration_entries": calibration_entries,
    }


def cache_clear(root: str | Path) -> int:
    """Delete every cache entry (and the sidecar); returns entries removed.

    A missing cache directory is a no-op, never created.
    """
    cache = _open_existing(root)
    if cache is None:
        return 0
    removed = len(cache)
    # Each unlink runs under the file's own lock sidecar: a concurrent
    # appender holding the lock finishes (or waits) instead of writing
    # into an unlinked inode and silently losing its record.
    with _FileLock(cache.root / ResultCache.LOCKNAME):
        cache.path.unlink(missing_ok=True)
    with _FileLock((cache.root / STATS_FILENAME).with_suffix(".lock")):
        (cache.root / STATS_FILENAME).unlink(missing_ok=True)
    with _FileLock(cache.root / StageCache.LOCKNAME):
        (cache.root / StageCache.FILENAME).unlink(missing_ok=True)
    from ..analytic.store import CalibrationStore

    with _FileLock(cache.root / CalibrationStore.LOCKNAME):
        (cache.root / CalibrationStore.FILENAME).unlink(missing_ok=True)
    return removed


def _record_version(record: Optional[dict]) -> str:
    """The code-model version a cache record was written under.

    Recent records carry it explicitly; legacy records are classified by
    recomputing the key from the stored job parameters — a match means
    the record addresses the *current* version (keys embed the version).
    """
    from ..api.scenario import CODE_MODEL_VERSION

    if not record:
        return "unknown"
    version = record.get("model_version")
    if version:
        return str(version)
    try:
        if Job.from_params(record["job"]).key == record["key"]:
            return CODE_MODEL_VERSION
    except Exception:
        pass
    return "unknown"


def cache_gc(
    root: str | Path, keep_version: Optional[str] = None
) -> tuple[int, int]:
    """Prune cache entries written under other code-model versions.

    Args:
        root: Cache directory.
        keep_version: The version whose entries survive; defaults to the
            current :data:`~repro.api.scenario.CODE_MODEL_VERSION`.

    Returns:
        ``(kept, pruned)`` entry counts.  The cache file is rewritten
        atomically (temp file + rename), deduplicated by key.  A missing
        cache is a no-op — nothing is created.
    """
    from ..api.scenario import CODE_MODEL_VERSION

    keep = keep_version or CODE_MODEL_VERSION
    cache = _open_existing(root)
    if cache is None or not cache.path.exists():
        return 0, 0
    # The whole read-filter-rewrite must hold the append lock: an append
    # landing between our snapshot and the rename would be erased by the
    # replace.  refresh() under the lock adopts any record a concurrent
    # writer got in before we won it.
    with _FileLock(cache.root / ResultCache.LOCKNAME):
        cache.refresh()
        kept, pruned = [], 0
        for key in cache.keys():
            record = cache.get(key)
            if _record_version(record) == keep:
                kept.append(record)
            else:
                pruned += 1
        tmp = cache.path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for record in kept:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        tmp.replace(cache.path)
    _gc_stage_file(cache.root / StageCache.FILENAME, keep)
    return len(kept), pruned


def _gc_stage_file(path: Path, keep: str) -> None:
    """Rewrite a stage memo file keeping only ``keep``-version entries.

    Runs under the stage append lock for the same reason ``cache_gc``
    does: an append between read and rename would otherwise be lost.
    """
    if not path.exists():
        return
    with _FileLock(path.parent / StageCache.LOCKNAME):
        kept_lines = []
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if record.get("model_version") == keep:
                    kept_lines.append(json.dumps(record, sort_keys=True))
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            "".join(line + "\n" for line in kept_lines), encoding="utf-8"
        )
        tmp.replace(path)
