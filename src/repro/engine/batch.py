"""Cross-scenario batched execution: the ``batched`` backend.

:class:`BatchedBackend` exploits the fact that most of a sweep's wall
clock is spent inside per-scenario cycle simulations that are mutually
independent: it groups the cache-miss jobs it receives into
*compatibility classes*, steps each class through one
:class:`~repro.simulator.fleet.FleetEngine` (a structure-of-arrays over
scenario lanes, bit-identical to :class:`~repro.simulator.fast.FastEngine`
per lane), and then replays the ordinary serial record pass with the
precomputed cycle counts installed via
:func:`~repro.api.pipeline.batched_cycles`.  Everything downstream of the
cycles number — physical stage, records, stage-cache memos, failure
handling — runs through exactly the same code as the ``serial`` backend,
so batched records are byte-identical to serial ones.

Jobs that cannot ride in a fleet fall back transparently: workloads
without a fleet preparer (e.g. the analytic ``matmul`` model), clusters
:meth:`~repro.simulator.fleet.FleetEngine.supports` rejects, lanes that
fault or time out mid-fleet, and groups too small to amortize fleet
setup all simply get no cycles override, which means the serial pass
evaluates them exactly as it always has — including reproducing the
exact failure record a faulting scenario produces under ``serial``.

The compatibility key deliberately derives **only** from
:meth:`~repro.api.scenario.Scenario.cycles_dict` fields (REP008): any
field outside the cycles-stage cache key (flow, frequency target,
objective) must not influence grouping, because two scenarios that share
a ``cycles_key`` must land in the same class to share one simulation.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, Optional

from ..obs import metrics, trace
from ..sweep.spec import Job
from .backends import run_one

__all__ = ["BatchedBackend", "batch_compatibility_key"]

#: Fleet batches formed (each batch is one FleetEngine run).
BATCHES_TOTAL = metrics.counter(
    "repro_engine_batches_total",
    "fleet batches formed by the batched backend",
)

#: Scenario lanes stepped inside fleet batches (sums occupancy).
BATCH_LANES_TOTAL = metrics.counter(
    "repro_engine_batch_lanes_total",
    "scenario lanes simulated inside fleet batches",
)

#: Jobs the batched backend evaluated serially instead (unsupported
#: workload/cluster, faulted lane, or undersized group).
BATCH_FALLBACKS_TOTAL = metrics.counter(
    "repro_engine_batch_fallbacks_total",
    "jobs that fell back from the batched path to serial evaluation",
)

#: Lane-occupancy distribution of formed batches.
BATCH_OCCUPANCY = metrics.histogram(
    "repro_engine_batch_occupancy",
    "lane occupancy per formed fleet batch",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
)

#: Smallest group worth a fleet: a single lane would pay SoA setup for
#: zero amortization, so it stays on the (bit-identical) serial path.
MIN_FLEET_LANES = 2

#: The grouping fields — a subset of ``Scenario.cycles_dict()``.  Flow
#: and frequency target are absent from that dict by contract (they
#: cannot affect cycle counts), so scenarios differing only there batch
#: together and share one simulation per distinct ``cycles_key``.
_KEY_FIELDS = ("workload", "capacity_mib", "num_cores", "word_bytes", "arch")


def batch_compatibility_key(scenario) -> str:
    """The compatibility class a scenario's simulation belongs to.

    Derives only from :meth:`~repro.api.scenario.Scenario.cycles_dict`
    fields (the cycles-stage cache-key contract): same workload, SPM
    capacity, core count, word size, and architecture overrides mean the
    prepared clusters share topology and program family, which is what
    lets their lanes step through one fleet.
    """
    fields = scenario.cycles_dict()
    return json.dumps(
        {name: fields.get(name) for name in _KEY_FIELDS}, sort_keys=True
    )


def _stage_cache_of(evaluate) -> Optional[object]:
    """The stage cache the engine wired into ``evaluate``, if any.

    The engine passes stage caching to workers as a ``stage_root``
    keyword baked into a :func:`functools.partial`; reading it back here
    lets the batched backend skip simulating scenarios whose cycle
    counts are already memoized (the serial pass gets them for free).
    """
    keywords = getattr(evaluate, "keywords", None) or {}
    root = keywords.get("stage_root")
    if root is None:
        return None
    from .cache import stage_cache_for

    return stage_cache_for(root)


class BatchedBackend:
    """Fleet-batched in-process backend: group, simulate, then record.

    Args:
        workers: Ignored (uniform constructor surface; the fleet *is*
            the parallelism).
        mp_context: Ignored (in-process).
        chunksize: Optional cap on lanes per fleet batch; oversized
            compatibility classes are split into chunks of this size.
    """

    name = "batched"

    def __init__(self, workers: int = 0, mp_context=None, chunksize=None):
        del workers, mp_context  # uniform constructor surface
        if chunksize is not None and chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.workers = 1
        self.max_lanes = chunksize

    def run(
        self, evaluate: Callable[[Job], object], jobs: list[Job]
    ) -> Iterator[dict]:
        from ..api.pipeline import batched_cycles

        jobs = list(jobs)
        overrides = self._simulate(evaluate, jobs) if jobs else {}
        for job in jobs:
            # The override is installed only around the evaluation and
            # reset before yielding, so a suspended generator never
            # leaks precomputed cycles into the consumer's context.
            with batched_cycles(overrides):
                record = run_one(evaluate, job)
            yield record

    # ------------------------------------------------------------------
    def _simulate(self, evaluate, jobs: list[Job]) -> dict[str, float]:
        """Fleet phase: returns ``cycles_key -> cycles`` for every lane
        that completed and verified; everything else falls back."""
        from ..kernels.workloads import FLEET_PREPARERS
        from ..simulator.fleet import FleetEngine

        stage_cache = _stage_cache_of(evaluate)
        groups: dict[str, list] = {}
        seen: set[str] = set()
        fallbacks = 0
        for job in jobs:
            try:
                scenario = job.scenario()
                preparer = FLEET_PREPARERS.get(scenario.workload)
                if preparer is None:
                    fallbacks += 1
                    continue
                cycles_key = scenario.cycles_key
                if cycles_key in seen:
                    continue  # another lane already simulates this key
                if (
                    stage_cache is not None
                    and stage_cache.peek(cycles_key) is not None
                ):
                    continue  # memoized: the serial pass hits the memo
                cluster, finish = preparer(scenario)
                if not FleetEngine.supports(cluster):
                    fallbacks += 1
                    continue
            except Exception:
                # Whatever failed here fails identically (and gets its
                # failure record) on the serial pass.
                fallbacks += 1
                continue
            seen.add(cycles_key)
            groups.setdefault(batch_compatibility_key(scenario), []).append(
                (cycles_key, cluster, finish)
            )

        overrides: dict[str, float] = {}
        batches = lanes_total = 0
        for members in groups.values():
            for lanes in self._chunked(members):
                if len(lanes) < MIN_FLEET_LANES:
                    fallbacks += len(lanes)
                    continue
                fallbacks += self._run_fleet(FleetEngine, lanes, overrides)
                batches += 1
                lanes_total += len(lanes)
                BATCH_OCCUPANCY.observe(len(lanes))
        if batches:
            BATCHES_TOTAL.inc(batches)
            BATCH_LANES_TOTAL.inc(lanes_total)
        if fallbacks:
            BATCH_FALLBACKS_TOTAL.inc(fallbacks)
        if stage_cache is not None and stage_cache.root is not None:
            from .cache import record_batch_stats

            record_batch_stats(
                stage_cache.root,
                batches=batches,
                lanes=lanes_total,
                fallbacks=fallbacks,
            )
        return overrides

    def _chunked(self, members: list) -> Iterator[list]:
        size = self.max_lanes
        if size is None or size >= len(members):
            yield members
            return
        for start in range(0, len(members), size):
            yield members[start : start + size]

    @staticmethod
    def _run_fleet(FleetEngine, lanes: list, overrides: dict) -> int:
        """Step one compatibility chunk; returns how many lanes fell back."""
        fallbacks = 0
        span = trace.span("engine.batch", lanes=len(lanes))
        with span:
            try:
                outcomes = FleetEngine(
                    [cluster for _key, cluster, _fin in lanes]
                ).run()
            except Exception:
                # A fleet-level failure costs only the batching: every
                # lane re-simulates serially, bit-for-bit.
                span.set(ok=0, failed=len(lanes))
                return len(lanes)
            ok = 0
            for (cycles_key, _cluster, finish), outcome in zip(
                lanes, outcomes
            ):
                if outcome.error is not None:
                    fallbacks += 1
                    continue
                try:
                    cycles = float(finish(outcome.result))
                except Exception:
                    fallbacks += 1
                    continue
                if cycles > 0:
                    overrides[cycles_key] = cycles
                    ok += 1
                else:
                    fallbacks += 1
            span.set(ok=ok, failed=fallbacks)
        return fallbacks
