"""One pluggable execution layer under explorer, sweep, and search.

Every consumer that evaluates design points in bulk — the serial
:class:`~repro.core.explorer.Explorer`, the ``repro.sweep`` executor,
the ``repro.search`` driver, and the experiment harness — runs through
one :class:`Engine`, so batching, caching, and parallelism are
implemented exactly once:

* :mod:`~repro.engine.backends` — the :class:`ExecutionBackend` plugin
  registry (``@register_backend``; the fifth registry) seeded with
  ``serial``, ``thread``, and ``process`` backends;
* :mod:`~repro.engine.cache` — the caching tiers: a bounded in-memory
  :class:`LRUCache` layered over the content-addressed on-disk
  :class:`~repro.sweep.cache.ResultCache`, plus the :class:`StageCache`
  memoizing the pipeline's physical and workload stages independently,
  with sidecar hit counters and the ``repro cache`` maintenance helpers;
* :mod:`~repro.engine.core` — :class:`Engine` itself, whose
  :meth:`~Engine.run_many` streams ``(job, record)`` pairs as they
  complete, each evaluation under a per-item error trap.

Layer stack::

    arch / physical / kernels        the models
      -> repro.api                   Scenario + Pipeline + registries
        -> repro.engine              batched, cached, parallel execution
          -> explorer / sweep / search / experiments / CLI

Quick start::

    from repro.engine import Engine
    from repro.sweep import ResultCache, SweepSpec

    engine = Engine(backend="thread", workers=8,
                    cache=ResultCache(".sweep-cache"))
    for job, record in engine.run_many(SweepSpec().jobs()):
        print(job.label, record["status"], record["source"])
"""

from .backends import (
    BACKENDS,
    CHUNKS_PER_WORKER,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    run_one,
)
from .batch import BatchedBackend, batch_compatibility_key
from .cache import (
    DEFAULT_LRU_SIZE,
    LRUCache,
    StageCache,
    TieredCache,
    cache_clear,
    cache_gc,
    cache_stats,
    merge_cache_dirs,
    record_batch_stats,
    stage_cache_for,
)
from .core import Engine, EngineOutcome, EngineStats, evaluate_job

__all__ = [
    "BACKENDS",
    "BatchedBackend",
    "CHUNKS_PER_WORKER",
    "DEFAULT_LRU_SIZE",
    "Engine",
    "EngineOutcome",
    "EngineStats",
    "ExecutionBackend",
    "LRUCache",
    "ProcessBackend",
    "SerialBackend",
    "StageCache",
    "ThreadBackend",
    "TieredCache",
    "available_backends",
    "batch_compatibility_key",
    "cache_clear",
    "cache_gc",
    "cache_stats",
    "evaluate_job",
    "get_backend",
    "merge_cache_dirs",
    "record_batch_stats",
    "register_backend",
    "resolve_backend",
    "run_one",
    "stage_cache_for",
]
