"""Pluggable execution backends: where the engine's parallelism lives.

An :class:`ExecutionBackend` turns a list of jobs into a stream of result
records, evaluating each job under a per-job error trap so one diverging
configuration becomes a failure record instead of killing the batch.
Backends are plugins — the fifth registry, alongside flows, workloads,
objectives, and strategies::

    from repro.engine import register_backend

    @register_backend("my-cluster")
    class ClusterBackend:
        def __init__(self, workers=0, mp_context=None, chunksize=None): ...
        def run(self, evaluate, jobs): ...

Four backends ship built in:

* ``serial`` — in-process loop, deterministic order, zero overhead;
* ``thread`` — ``ThreadPoolExecutor`` fan-out sharing the process (and
  its plugin registries and in-memory cache tier) with the caller;
* ``process`` — ``ProcessPoolExecutor`` fan-out in deterministic chunks,
  with the worker initializer mirroring the parent's runtime plugin
  registrations so ``spawn``-started workers see them too (this absorbs
  the pool wiring that used to live in ``repro.sweep.executor``);
* ``batched`` — in-process fleet batching: compatible simulator-backed
  jobs step through one :class:`~repro.simulator.fleet.FleetEngine`
  (bit-identical per lane), everything else falls back to the serial
  path (see :mod:`repro.engine.batch`).

A fifth, ``remote``, ships with the serving layer and fans jobs out to
worker processes over the wire protocol.
"""

from __future__ import annotations

import inspect
import math
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Iterator, Optional, Protocol, runtime_checkable

from ..api.registry import FLOWS, WORKLOADS, Registry
from ..obs import metrics, trace
from ..sweep.spec import Job
from ..sweep.store import failure_record, point_to_record

#: Wall-clock distribution of real (non-cache) job evaluations.
JOB_SECONDS = metrics.histogram(
    "repro_engine_job_seconds",
    "per-job evaluation latency (cache hits excluded)",
)

#: Chunks handed to each worker per scheduling round; keeping several
#: chunks per worker balances stragglers against IPC overhead.
CHUNKS_PER_WORKER = 4

#: Cap on auto-sized worker pools (``workers=0``).
MAX_AUTO_WORKERS = 32


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the engine needs from a backend: stream records for jobs.

    ``run`` yields one record per job, in any order, as evaluations
    complete.  Every record must come from :func:`run_one` (or preserve
    its contract): a ``point_to_record`` dict on success, a
    ``failure_record`` dict on error — exceptions never escape.
    """

    def run(
        self, evaluate: Callable[[Job], object], jobs: list[Job]
    ) -> Iterator[dict]:
        ...


def run_one(
    evaluate: Callable[[Job], object],
    job: Job,
    trace_ctx: Optional[dict] = None,
) -> dict:
    """Evaluate one job, trapping any exception into a failure record.

    ``trace_ctx`` re-parents this job's span when the evaluation runs
    on a thread the submitter's trace context cannot reach (pool
    threads); serial callers leave it ``None`` and inherit ambiently.
    """
    t0 = time.perf_counter()
    with trace.activate(trace_ctx):
        job_span = trace.span("engine.job", key=job.key)
        with job_span:
            try:
                record = point_to_record(job, evaluate(job))
            except Exception as exc:  # captured per job; the batch continues
                record = failure_record(job, exc)
            job_span.set(status=record["status"])
    JOB_SECONDS.observe(time.perf_counter() - t0)
    return record


def _run_chunk(
    args: tuple[Callable, list[Job], Optional[dict]]
) -> list[dict]:
    """Process-pool work item: evaluate one chunk of jobs (picklable).

    The third element is a :func:`repro.obs.trace.envelope` (or
    ``None``): workers adopt it so their spans re-parent to the
    submitting backend span and append to the submitter's sink.
    """
    evaluate, chunk, envelope = args
    with trace.adopt(envelope):
        return [run_one(evaluate, job) for job in chunk]


def _picklable_items(registry: Registry) -> list[tuple[str, object]]:
    """(name, plugin) pairs of a registry that survive pickling.

    Module-level plugin callables pickle by reference; lambdas and
    closures do not — those are silently dropped (a job needing one in a
    worker fails per-job with an "unknown workload" failure record).
    """
    items = []
    for name in registry.names():
        obj = registry.get(name)
        try:
            pickle.dumps(obj)
        except Exception:
            continue
        items.append((name, obj))
    return items


def _init_worker(
    flow_items: list[tuple[str, object]],
    workload_items: list[tuple[str, object]],
) -> None:
    """Worker initializer: mirror the parent's plugin registrations.

    Under the ``fork`` start method workers inherit the parent's
    registries and this is a no-op; under ``spawn``/``forkserver`` only
    the built-in (import-seeded) plugins would exist, so anything the
    parent registered at runtime is re-registered here.
    """
    for name, obj in flow_items:
        if name not in FLOWS:  # membership check also seeds the builtins
            FLOWS.register(name, obj)  # repro: ignore[REP005] worker-side hydration
    for name, obj in workload_items:
        if name not in WORKLOADS:
            WORKLOADS.register(name, obj)  # repro: ignore[REP005] worker-side hydration


def _auto_workers(workers: int) -> int:
    """Resolve a worker count: 0 means "one per core", bounded."""
    if workers < 0:
        raise ValueError("workers must be non-negative")
    if workers == 0:
        return min(MAX_AUTO_WORKERS, os.cpu_count() or 1)
    return workers


#: Backend registry: name -> backend class.  The fifth plugin registry.
BACKENDS = Registry("backend")


def register_backend(name: str):
    """Decorator registering an :class:`ExecutionBackend` class."""
    return BACKENDS.decorator(name)


def get_backend(name: str) -> type:
    """The registered backend class for ``name``."""
    return BACKENDS.get(name)  # type: ignore[return-value]


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend."""
    return BACKENDS.names()


@register_backend("serial")
class SerialBackend:
    """In-process loop: deterministic order, no pool, no overhead."""

    name = "serial"

    def __init__(self, workers: int = 0, mp_context=None, chunksize=None):
        del workers, mp_context, chunksize  # uniform constructor surface
        self.workers = 1

    def run(self, evaluate, jobs):
        for job in jobs:
            yield run_one(evaluate, job)


@register_backend("thread")
class ThreadBackend:
    """``ThreadPoolExecutor`` fan-out inside the calling process.

    Threads share the caller's plugin registries and in-memory cache
    tier, need no pickling, and start in microseconds — the right choice
    for the analytic models, whose per-point cost is far below process
    IPC overhead.  Results stream in completion order.
    """

    name = "thread"

    def __init__(self, workers: int = 0, mp_context=None, chunksize=None):
        del mp_context, chunksize
        self.workers = _auto_workers(workers)

    def run(self, evaluate, jobs):
        if not jobs:
            return
        workers = min(self.workers, len(jobs))
        # Thread-locals don't follow work into the pool: capture the
        # submitting span context once and re-parent each job to it.
        ctx = trace.current_context()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(run_one, evaluate, job, ctx) for job in jobs
            }
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()


@register_backend("process")
class ProcessBackend:
    """``ProcessPoolExecutor`` fan-out in deterministic chunks.

    Jobs ship to workers in chunks (``chunksize`` or an even split with
    :data:`CHUNKS_PER_WORKER` chunks per worker); the initializer
    re-registers the parent's picklable runtime plugins so ``spawn``- and
    ``forkserver``-started workers match ``fork``-started ones.  Records
    stream back chunk by chunk as chunks complete.
    """

    name = "process"

    def __init__(self, workers: int = 0, mp_context=None, chunksize=None):
        if chunksize is not None and chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.workers = _auto_workers(workers)
        self.mp_context = mp_context
        self.chunksize = chunksize

    def run(self, evaluate, jobs):
        if not jobs:
            return
        workers = min(self.workers, len(jobs))
        chunksize = self.chunksize or max(
            1, math.ceil(len(jobs) / (workers * CHUNKS_PER_WORKER))
        )
        chunks = [
            jobs[i : i + chunksize] for i in range(0, len(jobs), chunksize)
        ]
        # Ships the span context (and sink path) inside the work item —
        # None when tracing is disarmed, so the common case pickles a
        # single None.
        envelope = trace.envelope()
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self.mp_context,
            initializer=_init_worker,
            initargs=(_picklable_items(FLOWS), _picklable_items(WORKLOADS)),
        ) as pool:
            futures = {
                pool.submit(_run_chunk, (evaluate, chunk, envelope))
                for chunk in chunks
            }
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    yield from future.result()


# The remaining built-in backends live in their own modules (``batched``
# needs the fleet simulator, ``remote`` the wire protocol); importing
# them here registers the names so they resolve everywhere backends do.
# No cycle: both modules import this one only lazily or for run_one.
from ..service.pool import RemoteBackend  # noqa: E402
from .batch import BatchedBackend  # noqa: E402

BACKENDS.register("remote", RemoteBackend)
BACKENDS.register("batched", BatchedBackend)


def resolve_backend(
    backend, workers: int = 0, mp_context=None, chunksize=None
) -> ExecutionBackend:
    """An :class:`ExecutionBackend` instance from a name, class, or instance.

    Args:
        backend: Registered backend name, an :class:`ExecutionBackend`
            class (instantiated with the standard keyword surface), a
            ready-made instance (returned as-is), or ``None`` for the
            historical default — ``process`` when ``workers > 1``,
            ``serial`` otherwise.
        workers: Worker count forwarded to the backend constructor.
        mp_context: Multiprocessing context for process-based backends.
        chunksize: Explicit chunk size for chunking backends.
    """
    if backend is None:
        backend = "process" if workers > 1 else "serial"
    if isinstance(backend, str):
        backend = BACKENDS.get(backend)
    if inspect.isclass(backend):
        # A class (named or passed directly): build it.  Checked before
        # the protocol isinstance, which a class itself would satisfy —
        # returning it unbuilt would explode much later inside run().
        backend = backend(
            workers=workers, mp_context=mp_context, chunksize=chunksize
        )
    if not isinstance(backend, ExecutionBackend):
        raise TypeError(
            f"backend must be a registered name, an ExecutionBackend class, "
            f"or an instance; got {type(backend).__name__}"
        )
    return backend
