"""MemPool-3D reproduction library.

Reproduces "MemPool-3D: Boosting Performance and Efficiency of Shared-L1
Memory Many-Core Clusters with 3D Integration" (DATE 2022): the MemPool
architecture and cycle-level simulator, a 28 nm physical-implementation
model with 2D and Macro-3D flows, the blocked-matmul kernel study, and the
experiment harness regenerating every table and figure of the paper.
"""

from .core.config import (
    CAPACITIES_MIB,
    ArchParams,
    Flow,
    MemPoolConfig,
    config_by_name,
    paper_configurations,
)
from .core.metrics import GroupResult, KernelMetrics, NormalizedGroupResult, normalize

__version__ = "1.0.0"

__all__ = [
    "ArchParams",
    "CAPACITIES_MIB",
    "Flow",
    "GroupResult",
    "KernelMetrics",
    "MemPoolConfig",
    "NormalizedGroupResult",
    "config_by_name",
    "normalize",
    "paper_configurations",
    "__version__",
]
