"""MemPool-3D reproduction library.

Reproduces "MemPool-3D: Boosting Performance and Efficiency of Shared-L1
Memory Many-Core Clusters with 3D Integration" (DATE 2022): the MemPool
architecture and cycle-level simulator, a 28 nm physical-implementation
model with 2D and Macro-3D flows, the blocked-matmul kernel study, and the
experiment harness regenerating every table and figure of the paper.

The unified programmatic entry point is the ``repro.api`` façade::

    import repro

    result = repro.run(repro.Scenario(capacity_mib=4, flow="3D"))
    print(result.frequency_mhz, result.edp)

``Scenario``, ``Pipeline``, ``RunResult``, ``run``, and the plugin
registry helpers (``register_flow``/``register_workload``/
``register_objective`` and their lookups) resolve lazily so that
``import repro`` stays light.
"""

from .core.config import (
    CAPACITIES_MIB,
    ArchParams,
    Flow,
    MemPoolConfig,
    config_by_name,
    paper_configurations,
)
from .core.metrics import GroupResult, KernelMetrics, NormalizedGroupResult, normalize

__version__ = "2.8.0"

#: Names re-exported lazily from the ``repro.api`` façade.
_API_EXPORTS = (
    "Pipeline",
    "RunResult",
    "Scenario",
    "available_flows",
    "available_objectives",
    "available_predictors",
    "available_workloads",
    "get_flow",
    "get_objective",
    "get_predictor",
    "get_workload",
    "paper_scenarios",
    "register_flow",
    "register_objective",
    "register_predictor",
    "register_workload",
    "run",
)

#: Names re-exported lazily from the ``repro.engine`` execution layer.
_ENGINE_EXPORTS = (
    "Engine",
    "EngineOutcome",
    "EngineStats",
    "ExecutionBackend",
    "LRUCache",
    "TieredCache",
    "available_backends",
    "get_backend",
    "register_backend",
)

#: Names re-exported lazily from the ``repro.service`` serving layer.
_SERVICE_EXPORTS = (
    "RemoteBackend",
    "ReproService",
)

#: Names re-exported lazily from the ``repro.client`` SDK.
_CLIENT_EXPORTS = (
    "ServiceClient",
    "ServiceError",
)

#: Names re-exported lazily from the ``repro.analytic`` tier-0 layer.
_ANALYTIC_EXPORTS = (
    "CalibrationRecord",
    "analytic_engine",
    "calibrate",
    "ensure_calibrated",
    "predict_cycles",
)

#: Names re-exported lazily from the ``repro.analysis`` lint layer.
_ANALYSIS_EXPORTS = (
    "Finding",
    "analyze_paths",
    "available_lints",
    "register_lint",
)

#: Names re-exported lazily from the ``repro.obs`` observability layer.
_OBS_EXPORTS = (
    "StageProfiler",
    "append_trajectory",
    "check_trajectory",
    "load_bench",
    "render_html",
    "stamp_bench",
    "write_html",
)

#: Names re-exported lazily from the ``repro.search`` optimizer.
_SEARCH_EXPORTS = (
    "Choice",
    "FloatRange",
    "IntRange",
    "ParetoArchive",
    "SearchSpace",
    "Searcher",
    "Strategy",
    "available_strategies",
    "get_strategy",
    "paper_space",
    "register_strategy",
)

__all__ = [
    "ArchParams",
    "CAPACITIES_MIB",
    "Flow",
    "GroupResult",
    "KernelMetrics",
    "MemPoolConfig",
    "NormalizedGroupResult",
    "config_by_name",
    "normalize",
    "paper_configurations",
    "__version__",
    *_API_EXPORTS,
    *_ANALYTIC_EXPORTS,
    *_ANALYSIS_EXPORTS,
    *_ENGINE_EXPORTS,
    *_OBS_EXPORTS,
    *_SEARCH_EXPORTS,
    *_SERVICE_EXPORTS,
    *_CLIENT_EXPORTS,
]


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from . import api as module
    elif name in _ANALYTIC_EXPORTS:
        from . import analytic as module
    elif name in _ANALYSIS_EXPORTS:
        from . import analysis as module
    elif name in _ENGINE_EXPORTS:
        from . import engine as module
    elif name in _OBS_EXPORTS:
        from . import obs as module
    elif name in _SEARCH_EXPORTS:
        from . import search as module
    elif name in _SERVICE_EXPORTS:
        from . import service as module
    elif name in _CLIENT_EXPORTS:
        from . import client as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(
        set(globals())
        | set(_API_EXPORTS)
        | set(_ANALYTIC_EXPORTS)
        | set(_ANALYSIS_EXPORTS)
        | set(_ENGINE_EXPORTS)
        | set(_OBS_EXPORTS)
        | set(_SEARCH_EXPORTS)
        | set(_SERVICE_EXPORTS)
        | set(_CLIENT_EXPORTS)
    )
