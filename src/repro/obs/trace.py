"""Lightweight distributed tracing for the evaluation stack.

One API — ``with trace.span("engine.backend", jobs=56):`` — produces a
JSONL sink whose records reconstruct the full engine → backend → worker
→ stage tree of a sweep.  The design constraints, in order:

* **Disarmed is free.**  Tracing is off unless armed via the
  ``REPRO_TRACE=1`` environment variable, ``Engine(trace=...)``, or
  :func:`enable`.  A disarmed :func:`span` call is one module-global
  boolean check returning a shared no-op singleton (the racecheck
  idiom), so the hot paths stay hot.
* **Context crosses process pools.**  Thread-locals do not survive
  pickling, so the process backend ships a :func:`envelope` (trace id,
  parent span id, sink path) inside each chunk's work item and workers
  :func:`adopt` it — their spans re-parent to the submitting span and
  append to the same sink file (the multi-writer append discipline the
  caches already rely on: one ``O_APPEND`` write per record).
* **Context crosses HTTP.**  The client SDK serializes the current
  context into the ``X-Repro-Trace`` header (:func:`to_header`); the
  service parses it back (:func:`from_header`) and activates it around
  job execution, so a span opened in the client process is the parent
  of spans recorded by the server.

Span records are plain JSON objects::

    {"trace": "6f..", "span": "b1..", "parent": "9a..", "name": "...",
     "start_unix": ..., "duration_s": ..., "pid": ..., "attrs": {...}}
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Iterator, Optional, Union

__all__ = [
    "HEADER",
    "adopt",
    "activate",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "envelope",
    "from_header",
    "read_spans",
    "sink_path",
    "span",
    "to_header",
]

#: Arms tracing at import when set to anything but ""/"0".
ENV_FLAG = "REPRO_TRACE"
#: Overrides the default sink path.
ENV_SINK = "REPRO_TRACE_FILE"
#: Where span records land unless a sink is given explicitly.
DEFAULT_SINK = "repro-trace.jsonl"
#: HTTP header carrying ``<trace_id>-<span_id>`` across the service.
HEADER = "X-Repro-Trace"

_lock = threading.Lock()
_armed: bool = os.environ.get(ENV_FLAG, "") not in ("", "0")
_sink: Path = Path(os.environ.get(ENV_SINK, "") or DEFAULT_SINK)
_local = threading.local()


def _new_id() -> str:
    """A fresh 64-bit hex id (ids are opaque; only equality matters)."""
    return os.urandom(8).hex()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def enabled() -> bool:
    """Whether spans are being recorded."""
    return _armed


def sink_path() -> Path:
    """Where span records are (or would be) appended."""
    return _sink


def enable(sink: Union[str, Path, None] = None) -> None:
    """Arm tracing, optionally redirecting the JSONL sink."""
    global _armed, _sink
    with _lock:
        if sink is not None:
            _sink = Path(sink)
        _armed = True


def disable() -> None:
    """Disarm tracing; already-written records stay on disk."""
    global _armed
    with _lock:
        _armed = False


def _write(record: dict) -> None:
    """Append one span record: a single ``O_APPEND`` write, like the
    caches, so concurrent writers (pool workers, service threads)
    interleave whole lines rather than bytes."""
    data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(str(_sink), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


class _NullSpan:
    """The disarmed span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """One armed span; a context manager that records itself on exit."""

    __slots__ = (
        "name", "attrs", "trace_id", "span_id", "parent_id",
        "_start_unix", "_t0",
    )

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.trace_id: Optional[str] = None
        self.span_id: str = _new_id()
        self.parent_id: Optional[str] = None

    def set(self, **attrs) -> None:
        """Attach attributes after the fact (e.g. a late status)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = _stack()
        if stack:
            self.trace_id, self.parent_id = stack[-1]
        else:
            self.trace_id = _new_id()
        stack.append((self.trace_id, self.span_id))
        self._start_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] == (self.trace_id, self.span_id):
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if _armed:  # disarmed mid-span: drop the record, keep the pop
            _write({
                "trace": self.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "name": self.name,
                "start_unix": self._start_unix,
                "duration_s": duration,
                "pid": os.getpid(),
                "attrs": self.attrs,
            })


def span(name: str, **attrs):
    """A span context manager, or the shared no-op when disarmed.

    The disarmed path is one boolean check — safe on hot paths.
    """
    if not _armed:
        return _NULL_SPAN
    return _Span(name, attrs)


def current_context() -> Optional[dict]:
    """``{"trace": ..., "span": ...}`` of the active span, else None."""
    if not _armed:
        return None
    stack = getattr(_local, "stack", None)
    if not stack:
        return None
    trace_id, span_id = stack[-1]
    return {"trace": trace_id, "span": span_id}


class _Activation:
    """Pushes a foreign span context onto this thread's stack."""

    __slots__ = ("_ctx", "_pushed")

    def __init__(self, ctx: Optional[dict]):
        self._ctx = ctx
        self._pushed = False

    def __enter__(self) -> "_Activation":
        if _armed and self._ctx is not None:
            _stack().append((self._ctx["trace"], self._ctx["span"]))
            self._pushed = True
        return self

    def __exit__(self, *exc) -> None:
        if self._pushed:
            stack = _stack()
            if stack:
                stack.pop()


def activate(ctx: Optional[dict]):
    """Make ``ctx`` the ambient parent for spans on this thread.

    ``ctx`` is a :func:`current_context` dict (or None for a no-op) —
    the hand-off used when work hops threads (``ThreadPoolExecutor``,
    ``asyncio.to_thread``) and thread-locals do not follow.
    """
    return _Activation(ctx)


def envelope() -> Optional[dict]:
    """The current context plus sink path, for process-pool work items.

    ``None`` when disarmed (the common case) so the disarmed envelope
    costs one boolean check and pickles as ``None``.
    """
    ctx = current_context()
    if ctx is None:
        return None
    return {**ctx, "sink": str(_sink)}


class _Adoption:
    """Arms a worker process with a shipped :func:`envelope`."""

    __slots__ = ("_env", "_restore", "_activation")

    def __init__(self, env: Optional[dict]):
        self._env = env
        self._restore = None
        self._activation = None

    def __enter__(self) -> "_Adoption":
        if self._env is None:
            return self
        global _armed, _sink
        with _lock:
            self._restore = (_armed, _sink)
            _sink = Path(self._env["sink"])
            _armed = True
        self._activation = activate(
            {"trace": self._env["trace"], "span": self._env["span"]}
        )
        self._activation.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        if self._env is None:
            return
        global _armed, _sink
        self._activation.__exit__(*exc)
        with _lock:
            _armed, _sink = self._restore


def adopt(env: Optional[dict]):
    """Adopt a shipped envelope: arm this process and re-parent to it.

    Used by process-pool workers around each chunk; a ``None`` envelope
    (tracing disarmed at submission) is a no-op.  Restores the previous
    armed state on exit so in-process callers can nest it safely.
    """
    return _Adoption(env)


def to_header(ctx: Optional[dict] = None) -> Optional[str]:
    """Serialize a context for the ``X-Repro-Trace`` header."""
    if ctx is None:
        ctx = current_context()
    if ctx is None:
        return None
    return f"{ctx['trace']}-{ctx['span']}"


def from_header(value: Optional[str]) -> Optional[dict]:
    """Parse an ``X-Repro-Trace`` header back into a context dict."""
    if not value:
        return None
    trace_id, sep, span_id = value.strip().partition("-")
    if not sep or not trace_id or not span_id:
        return None
    return {"trace": trace_id, "span": span_id}


def read_spans(path: Union[str, Path, None] = None) -> list:
    """Load span records from a sink file (malformed lines skipped)."""
    source = Path(path) if path is not None else _sink
    spans = []
    if not source.is_file():
        return spans
    with open(source, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a crashed writer
            if isinstance(record, dict) and "span" in record:
                spans.append(record)
    return spans


def span_tree(spans: list) -> dict:
    """``parent span id -> [child records]`` (roots under ``None``)."""
    children: dict = {}
    ids = {record["span"] for record in spans}
    for record in sorted(spans, key=lambda r: r.get("start_unix", 0.0)):
        parent = record.get("parent")
        if parent not in ids:
            parent = None  # orphan (parent span still open): treat as root
        children.setdefault(parent, []).append(record)
    return children


def walk_tree(spans: list) -> Iterator[tuple]:
    """Yield ``(depth, record)`` depth-first over :func:`span_tree`."""
    children = span_tree(spans)

    def _walk(parent, depth) -> Iterator[tuple]:
        for record in children.get(parent, []):
            yield depth, record
            yield from _walk(record["span"], depth + 1)

    yield from _walk(None, 0)
