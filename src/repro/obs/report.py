"""Benchmark artifact loading, the BENCH trajectory, and HTML reports.

Three related jobs live here:

* **Stamped artifacts** — :func:`stamp_bench` adds ``schema_version``
  plus host metadata (python version, cpu count, platform) to the
  ``BENCH_sim.json`` / ``BENCH_service.json`` emitters, and
  :func:`load_bench` validates either shape while tolerating the old
  unstamped files, so trajectory comparisons across PRs stay
  apples-to-apples.
* **The trajectory** — :func:`append_trajectory` folds one run of both
  emitters into the tracked ``BENCH_trajectory.json``;
  :func:`check_trajectory` is the CI gate: *structural* regressions
  (warm re-evaluations, duplicate evaluations, a cache hit-rate drop)
  fail, raw timing deltas never do — shared runners make wall-clock
  noise, but a warm sweep that re-evaluates is broken on any machine.
* **HTML reports** — :func:`render_html` emits one self-contained
  page (inline CSS + SVG, zero network fetches): Pareto front, sweep
  heatmap, per-stage profile breakdown, and the speedup trajectory.
"""

from __future__ import annotations

import html
import json
import math
import os
import platform
import time
from pathlib import Path
from typing import Optional, Sequence, Union

__all__ = [
    "SCHEMA_VERSION",
    "append_trajectory",
    "check_trajectory",
    "host_metadata",
    "load_bench",
    "load_trajectory",
    "render_html",
    "stamp_bench",
    "write_html",
]

#: Version stamped onto BENCH artifacts and trajectory entries.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# stamped benchmark artifacts
# ----------------------------------------------------------------------
def host_metadata() -> dict:
    """The reproducibility context a benchmark number is meaningless without."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
    }


def stamp_bench(payload: dict) -> dict:
    """Add ``schema_version`` + host metadata to a BENCH payload."""
    return {**payload, "schema_version": SCHEMA_VERSION, "host": host_metadata()}


def load_bench(path: Union[str, Path]) -> dict:
    """Load and validate a BENCH artifact, tolerating unstamped files.

    Returns the document with ``schema_version`` (0 for pre-stamp
    files) and ``host`` (``None`` when absent) always present.

    Raises:
        ValueError: If the file is not a recognisable BENCH artifact.
    """
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: BENCH artifact must be a JSON object")
    if "workloads" not in data and "results" not in data:
        raise ValueError(
            f"{path}: neither a simulator ('workloads') nor a service "
            f"('results') BENCH artifact"
        )
    version = data.get("schema_version", 0)
    if not isinstance(version, int) or version < 0:
        raise ValueError(f"{path}: bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version} is newer than this loader "
            f"({SCHEMA_VERSION})"
        )
    return {**data, "schema_version": version, "host": data.get("host")}


# ----------------------------------------------------------------------
# the BENCH trajectory
# ----------------------------------------------------------------------
def load_trajectory(path: Union[str, Path]) -> dict:
    """The trajectory document (empty but well-formed when missing)."""
    path = Path(path)
    if not path.is_file():
        return {"schema_version": SCHEMA_VERSION, "entries": []}
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, list):  # tolerate a bare entry list
        data = {"schema_version": 0, "entries": data}
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise ValueError(f"{path}: not a trajectory document")
    return data


def _geomean(values: Sequence[float]) -> Optional[float]:
    positive = [v for v in values if v > 0]
    if not positive:
        return None
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def _sim_summary(sim: dict) -> dict:
    speedups = {
        name: float(row["speedup"])
        for name, row in sorted(sim.get("workloads", {}).items())
        if isinstance(row, dict) and "speedup" in row
    }
    return {"speedups": speedups, "geomean_speedup": _geomean(list(speedups.values()))}


def _service_summary(service: dict) -> dict:
    results = service.get("results", {})
    streamed = results.get("warm_streamed_sweep", {})
    sync = results.get("warm_sync_runs", {})
    records = int(streamed.get("records", 0))
    re_evaluations = int(streamed.get("re_evaluations", 0))
    warm_hit_rate = (
        (records - re_evaluations) / records if records > 0 else None
    )
    return {
        "records_per_s": streamed.get("records_per_s"),
        "re_evaluations": re_evaluations,
        "requests_per_s": sync.get("requests_per_s"),
        "duplicate_evaluations": int(sync.get("duplicate_evaluations", 0)),
        "warm_hit_rate": warm_hit_rate,
    }


def _analytic_summary(analytic: dict) -> dict:
    workloads = analytic.get("workloads", {})
    errors = {
        name: float(row["achieved_error"])
        for name, row in sorted(workloads.items())
        if isinstance(row, dict) and "achieved_error" in row
    }
    within = all(
        bool(row.get("within_bound", True))
        for row in workloads.values()
        if isinstance(row, dict)
    )
    throughput = analytic.get("throughput", {})
    return {
        "achieved_errors": errors,
        "max_achieved_error": max(errors.values()) if errors else None,
        "all_within_bound": within,
        "analytic_points_per_s": throughput.get("analytic_points_per_s"),
        "speedup_vs_fast": throughput.get("speedup_vs_fast"),
    }


def _fleet_summary(fleet: dict) -> dict:
    results = fleet.get("results", {})
    speedups = {
        name: float(row["speedup"])
        for name, row in sorted(results.items())
        if isinstance(row, dict) and "speedup" in row
    }
    identical = all(
        bool(row.get("identical", True))
        for row in results.values()
        if isinstance(row, dict)
    )
    return {
        "speedups": speedups,
        "geomean_speedup": _geomean(list(speedups.values())),
        "lanes_identical": identical,
    }


def append_trajectory(
    path: Union[str, Path],
    sim: Union[str, Path, dict, None] = None,
    service: Union[str, Path, dict, None] = None,
    fleet: Union[str, Path, dict, None] = None,
    analytic: Union[str, Path, dict, None] = None,
    label: Optional[str] = None,
    recorded_unix: Optional[int] = None,
) -> dict:
    """Fold one run of the BENCH emitters into the trajectory file.

    ``sim``/``service``/``fleet``/``analytic`` are artifact paths or
    already-loaded documents; any may be absent (the entry records what
    ran).  Returns the appended entry.
    """
    if sim is not None and not isinstance(sim, dict):
        sim = load_bench(sim)
    if service is not None and not isinstance(service, dict):
        service = load_bench(service)
    if fleet is not None and not isinstance(fleet, dict):
        fleet = load_bench(fleet)
    if analytic is not None and not isinstance(analytic, dict):
        analytic = load_bench(analytic)
    if sim is None and service is None and fleet is None and analytic is None:
        raise ValueError("append_trajectory needs at least one artifact")
    entry: dict = {
        "schema_version": SCHEMA_VERSION,
        "recorded_unix": int(recorded_unix if recorded_unix is not None
                             else time.time()),
        "label": label,
        "host": host_metadata(),
    }
    if sim is not None:
        entry["sim"] = _sim_summary(sim)
    if service is not None:
        entry["service"] = _service_summary(service)
    if fleet is not None:
        entry["fleet"] = _fleet_summary(fleet)
    if analytic is not None:
        entry["analytic"] = _analytic_summary(analytic)

    path = Path(path)
    trajectory = load_trajectory(path)
    trajectory["schema_version"] = SCHEMA_VERSION
    trajectory["entries"].append(entry)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)
    return entry


def check_trajectory(trajectory: Union[str, Path, dict]) -> list:
    """Structural regressions in the latest trajectory entry.

    Returns a list of problem strings (empty = gate passes).  Checked:

    * warm streamed sweep re-evaluated points (``re_evaluations > 0``),
    * concurrent warm sync runs evaluated duplicates
      (``duplicate_evaluations > 0``),
    * warm cache hit rate dropped against the previous entry,
    * a fleet benchmark whose batched lanes diverged from the serial
      fast engine (``lanes_identical`` false — a correctness bug, not a
      timing one),
    * an analytic benchmark whose calibration error escaped a declared
      bound (``all_within_bound`` false — the tier-0 accuracy contract,
      not a timing figure).

    Timing figures (speedups, req/s, points/s) are deliberately *not*
    checked — they are noise on shared runners; the trajectory chart
    makes drift visible without blocking merges on it.
    """
    if not isinstance(trajectory, dict):
        trajectory = load_trajectory(trajectory)
    all_entries = trajectory.get("entries", [])
    fleet_entries = [e for e in all_entries if "fleet" in e]
    fleet_problems = []
    if fleet_entries and fleet_entries[-1]["fleet"].get(
        "lanes_identical"
    ) is False:
        fleet_problems.append(
            "fleet benchmark reported non-identical lanes; the batched "
            "engine must match the fast engine bit-for-bit"
        )
    analytic_entries = [e for e in all_entries if "analytic" in e]
    if analytic_entries and analytic_entries[-1]["analytic"].get(
        "all_within_bound"
    ) is False:
        fleet_problems.append(
            "analytic benchmark reported a calibration outside its "
            "declared error bound; tier-0 predictions must honour the "
            "per-predictor accuracy contract"
        )
    entries = [e for e in all_entries if "service" in e]
    if not entries:
        return fleet_problems
    problems = fleet_problems
    latest = entries[-1]["service"]
    re_evaluations = latest.get("re_evaluations") or 0
    if re_evaluations > 0:
        problems.append(
            f"warm streamed sweep re-evaluated {re_evaluations} point(s); "
            f"a warm resubmission must be pure cache"
        )
    duplicates = latest.get("duplicate_evaluations") or 0
    if duplicates > 0:
        problems.append(
            f"concurrent warm sync runs performed {duplicates} duplicate "
            f"evaluation(s); the shared cache must deduplicate them"
        )
    hit_rate = latest.get("warm_hit_rate")
    if hit_rate is not None and len(entries) >= 2:
        previous = entries[-2]["service"].get("warm_hit_rate")
        if previous is not None and hit_rate < previous - 1e-9:
            problems.append(
                f"warm cache hit rate dropped: {hit_rate:.1%} after "
                f"{previous:.1%} in the previous entry"
            )
    return problems


# ----------------------------------------------------------------------
# SVG primitives (everything below is rendering, no I/O)
# ----------------------------------------------------------------------
#: Categorical palette (validated order; first three are all-pairs safe).
_SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948")
_SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767")
#: Sequential blue ramp, light -> dark (shared by both modes).
_RAMP = ("#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
         "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
         "#0d366b")

_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px 32px 64px;
  background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page: #0d0d0d; --surface: #1a1a19;
  --ink: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
  --grid: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
  --series-7: #9085e9; --series-8: #e66767;
}
h1 { font-size: 22px; font-weight: 650; margin: 0 0 4px; }
h2 { font-size: 16px; font-weight: 650; margin: 36px 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 12px 0;
  overflow-x: auto;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 12px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 18px; min-width: 110px;
}
.tile .v { font-size: 24px; font-weight: 650; }
.tile .k { color: var(--ink-2); font-size: 12px; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
           fill: var(--ink-muted); }
svg .lbl { fill: var(--ink-2); }
svg .val { fill: var(--ink); font-variant-numeric: tabular-nums; }
svg .cell-dark { fill: #ffffff; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px;
          margin: 6px 0 0; color: var(--ink-2); font-size: 12px; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
                  border-radius: 2px; margin-right: 5px; }
table { border-collapse: collapse; margin: 8px 0; font-size: 13px; }
th, td { text-align: right; padding: 4px 12px;
         border-bottom: 1px solid var(--grid);
         font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
.ok { color: #0ca30c; } .bad { color: #d03b3b; }
details summary { cursor: pointer; color: var(--ink-2); margin-top: 8px; }
"""


def _esc(text) -> str:
    return html.escape(str(text), quote=True)


def _fmt_num(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.2e}"
    if magnitude >= 100:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def _log_ticks(lo: float, hi: float) -> list:
    """Decade tick positions covering a positive [lo, hi] range."""
    start = math.floor(math.log10(lo))
    stop = math.ceil(math.log10(hi))
    return [10.0 ** d for d in range(start, stop + 1)]


def _ramp_color(fraction: float) -> str:
    fraction = min(1.0, max(0.0, fraction))
    return _RAMP[round(fraction * (len(_RAMP) - 1))]


def _legend(entries: Sequence[tuple]) -> str:
    items = "".join(
        f'<span><span class="swatch" style="background:{color}"></span>'
        f"{_esc(name)}</span>"
        for name, color in entries
    )
    return f'<div class="legend">{items}</div>'


# ----------------------------------------------------------------------
# chart builders
# ----------------------------------------------------------------------
def _ok_records(records: Sequence[dict]) -> list:
    return [
        r for r in records
        if r.get("status") == "ok" and "metrics" in r
    ]


def _pareto_front(points: Sequence[dict]) -> list:
    """Maximal (performance, energy_efficiency) subset, perf-sorted."""
    ordered = sorted(
        points,
        key=lambda r: (-r["metrics"]["performance"],
                       -r["metrics"]["energy_efficiency"]),
    )
    front = []
    best_eff = -math.inf
    for record in ordered:
        eff = record["metrics"]["energy_efficiency"]
        if eff > best_eff:
            front.append(record)
            best_eff = eff
    return front


def _record_label(record: dict) -> str:
    job = record.get("job", {})
    flow = job.get("flow", "?")
    capacity = job.get("capacity_mib", "?")
    bandwidth = job.get("bandwidth", "?")
    return f"{flow} {capacity}MiB @ {bandwidth:g}B/c" if isinstance(
        bandwidth, (int, float)) else f"{flow} {capacity}MiB"


def _pareto_svg(records: Sequence[dict]) -> str:
    points = _ok_records(records)
    if len(points) < 2:
        return "<p>not enough successful records for a Pareto view.</p>"
    front = _pareto_front(points)
    front_keys = {r["key"] for r in front}
    xs = [r["metrics"]["performance"] for r in points]
    ys = [r["metrics"]["energy_efficiency"] for r in points]
    if min(xs) <= 0 or min(ys) <= 0:
        return "<p>non-positive metrics; skipping Pareto view.</p>"

    width, height = 640, 380
    left, right, top, bottom = 64, 16, 12, 46
    plot_w, plot_h = width - left - right, height - top - bottom
    lx0, lx1 = math.log10(min(xs)) - 0.05, math.log10(max(xs)) + 0.05
    ly0, ly1 = math.log10(min(ys)) - 0.05, math.log10(max(ys)) + 0.05

    def sx(v: float) -> float:
        return left + (math.log10(v) - lx0) / (lx1 - lx0) * plot_w

    def sy(v: float) -> float:
        return top + plot_h - (math.log10(v) - ly0) / (ly1 - ly0) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="Pareto front: performance vs energy efficiency">'
    ]
    for tick in _log_ticks(min(xs), max(xs)):
        if not (10 ** lx0 <= tick <= 10 ** lx1):
            continue
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
            f'y2="{top + plot_h}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{x:.1f}" y="{height - 26}" '
            f'text-anchor="middle">{_fmt_num(tick)}</text>'
        )
    for tick in _log_ticks(min(ys), max(ys)):
        if not (10 ** ly0 <= tick <= 10 ** ly1):
            continue
        y = sy(tick)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{left - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt_num(tick)}</text>'
        )
    parts.append(
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="var(--baseline)" stroke-width="1"/>'
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 8}" '
        f'text-anchor="middle" class="lbl">performance '
        f'(executions/s, log)</text>'
        f'<text x="14" y="{top + plot_h / 2:.0f}" text-anchor="middle" '
        f'class="lbl" transform="rotate(-90 14 {top + plot_h / 2:.0f})">'
        f'energy efficiency (executions/J, log)</text>'
    )
    # Dominated points recede; the front carries the story.
    for record in points:
        if record["key"] in front_keys:
            continue
        m = record["metrics"]
        parts.append(
            f'<circle cx="{sx(m["performance"]):.1f}" '
            f'cy="{sy(m["energy_efficiency"]):.1f}" r="4" '
            f'fill="var(--ink-muted)" fill-opacity="0.45">'
            f"<title>{_esc(_record_label(record))}\n"
            f"performance {_fmt_num(m['performance'])}/s, "
            f"efficiency {_fmt_num(m['energy_efficiency'])}/J, "
            f"EDP {_fmt_num(m['edp'])}</title></circle>"
        )
    steps = sorted(front, key=lambda r: r["metrics"]["performance"])
    path = " ".join(
        f"{'M' if i == 0 else 'L'}{sx(r['metrics']['performance']):.1f},"
        f"{sy(r['metrics']['energy_efficiency']):.1f}"
        for i, r in enumerate(steps)
    )
    parts.append(
        f'<path d="{path}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-opacity="0.7"/>'
    )
    for record in steps:
        m = record["metrics"]
        parts.append(
            f'<circle cx="{sx(m["performance"]):.1f}" '
            f'cy="{sy(m["energy_efficiency"]):.1f}" r="5" '
            f'fill="var(--series-1)" stroke="var(--surface)" '
            f'stroke-width="2">'
            f"<title>{_esc(_record_label(record))}  (on front)\n"
            f"performance {_fmt_num(m['performance'])}/s, "
            f"efficiency {_fmt_num(m['energy_efficiency'])}/J, "
            f"EDP {_fmt_num(m['edp'])}</title></circle>"
        )
    best = min(front, key=lambda r: r["metrics"]["edp"])
    bm = best["metrics"]
    parts.append(
        f'<text x="{sx(bm["performance"]) + 8:.1f}" '
        f'y="{sy(bm["energy_efficiency"]) - 8:.1f}" class="lbl">'
        f"best EDP: {_esc(_record_label(best))}</text>"
    )
    parts.append("</svg>")
    table = _front_table(steps)
    return "".join(parts) + _legend(
        [("Pareto front", "var(--series-1)"), ("dominated", "var(--ink-muted)")]
    ) + table


def _front_table(front: Sequence[dict]) -> str:
    rows = "".join(
        f"<tr><td>{_esc(_record_label(r))}</td>"
        f"<td>{_fmt_num(r['metrics']['performance'])}</td>"
        f"<td>{_fmt_num(r['metrics']['energy_efficiency'])}</td>"
        f"<td>{_fmt_num(r['metrics']['edp'])}</td>"
        f"<td>{_fmt_num(r['metrics']['frequency_mhz'])}</td></tr>"
        for r in front
    )
    return (
        "<details><summary>Pareto front as a table</summary><table>"
        "<tr><th>point</th><th>perf (/s)</th><th>eff (/J)</th>"
        "<th>EDP (J·s)</th><th>freq (MHz)</th></tr>"
        f"{rows}</table></details>"
    )


def _heatmap_axes(points: Sequence[dict]) -> Optional[tuple]:
    rows = sorted(
        {(p["job"].get("capacity_mib"), p["job"].get("flow"))
         for p in points if "job" in p},
        key=lambda rf: (str(rf[1]), rf[0] if rf[0] is not None else 0),
    )
    cols = sorted(
        {p["job"].get("bandwidth") for p in points if "job" in p},
        key=lambda b: b if isinstance(b, (int, float)) else 0,
    )
    if len(rows) < 2 or len(cols) < 2:
        return None
    return rows, cols


def _heatmap_svg(records: Sequence[dict]) -> str:
    points = _ok_records(records)
    axes = _heatmap_axes(points)
    if axes is None:
        return "<p>not enough axis variation for a sweep heatmap.</p>"
    rows, cols = axes
    cells: dict = {}
    for p in points:
        job = p["job"]
        key = ((job.get("capacity_mib"), job.get("flow")), job.get("bandwidth"))
        edp = p["metrics"]["edp"]
        if key not in cells or edp < cells[key]:
            cells[key] = edp
    values = [v for v in cells.values() if v > 0]
    if not values:
        return "<p>no positive EDP values; skipping heatmap.</p>"
    lo, hi = math.log10(min(values)), math.log10(max(values))
    span = (hi - lo) or 1.0

    cell_w, cell_h, left, top = 72, 34, 120, 28
    width = left + cell_w * len(cols) + 16
    height = top + cell_h * len(rows) + 40
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="EDP heatmap over capacity/flow and bandwidth">'
    ]
    for j, bandwidth in enumerate(cols):
        x = left + j * cell_w + cell_w / 2
        parts.append(
            f'<text x="{x:.0f}" y="{top - 10}" '
            f'text-anchor="middle">{bandwidth:g}</text>'
        )
    for i, (capacity, flow) in enumerate(rows):
        y = top + i * cell_h + cell_h / 2 + 4
        parts.append(
            f'<text x="{left - 8}" y="{y:.0f}" text-anchor="end" '
            f'class="lbl">{_esc(flow)} {_esc(capacity)}MiB</text>'
        )
        for j, bandwidth in enumerate(cols):
            edp = cells.get(((capacity, flow), bandwidth))
            x = left + j * cell_w
            cy = top + i * cell_h
            if edp is None:
                parts.append(
                    f'<rect x="{x + 1}" y="{cy + 1}" width="{cell_w - 2}" '
                    f'height="{cell_h - 2}" rx="3" fill="var(--grid)"/>'
                )
                continue
            fraction = (math.log10(edp) - lo) / span
            color = _ramp_color(fraction)
            text_class = "cell-dark" if fraction > 0.45 else "val"
            parts.append(
                f'<rect x="{x + 1}" y="{cy + 1}" width="{cell_w - 2}" '
                f'height="{cell_h - 2}" rx="3" fill="{color}">'
                f"<title>{_esc(flow)} {_esc(capacity)}MiB @ "
                f"{bandwidth:g}B/c\nEDP {_fmt_num(edp)} J·s</title></rect>"
                f'<text x="{x + cell_w / 2:.0f}" y="{cy + cell_h / 2 + 4:.0f}" '
                f'text-anchor="middle" class="{text_class}">'
                f"{_fmt_num(edp)}</text>"
            )
    parts.append(
        f'<text x="{left + cell_w * len(cols) / 2:.0f}" y="{height - 10}" '
        f'text-anchor="middle" class="lbl">bandwidth (B/cycle) — cell: '
        f"min EDP (J·s), lighter is better</text></svg>"
    )
    return "".join(parts)


def _stage_svg(breakdown: dict) -> str:
    if not breakdown:
        return "<p>no stage observations recorded.</p>"
    stages = sorted(
        breakdown.items(), key=lambda item: item[1]["total_s"], reverse=True
    )
    bar_h, gap, left, top = 26, 10, 150, 8
    width = 640
    plot_w = width - left - 170
    height = top + len(stages) * (bar_h + gap) + 30
    longest = max(s["total_s"] for _, s in stages) or 1.0
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="per-stage time">'
    ]
    for i, (name, stats) in enumerate(stages):
        y = top + i * (bar_h + gap)
        bar_w = max(2.0, stats["total_s"] / longest * plot_w)
        parts.append(
            f'<text x="{left - 8}" y="{y + bar_h / 2 + 4}" '
            f'text-anchor="end" class="lbl">{_esc(name)}</text>'
            f'<rect x="{left}" y="{y}" width="{bar_w:.1f}" '
            f'height="{bar_h}" rx="4" fill="var(--series-1)">'
            f"<title>{_esc(name)}: {stats['total_s']:.3f}s across "
            f"{stats['count']} calls (mean "
            f"{stats['mean_s'] * 1e3:.3f}ms)</title></rect>"
            f'<text x="{left + bar_w + 8:.1f}" y="{y + bar_h / 2 + 4}" '
            f'class="val">{stats["total_s"]:.3f}s · {stats["share"]:.1%} · '
            f"{stats['count']}×</text>"
        )
    parts.append(
        f'<line x1="{left}" y1="{top}" x2="{left}" '
        f'y2="{height - 26}" stroke="var(--baseline)" stroke-width="1"/>'
        "</svg>"
    )
    return "".join(parts)


def _line_chart(
    series: Sequence[tuple],
    labels: Sequence[str],
    y_label: str,
    aria: str,
) -> str:
    """One-axis multi-series line chart; series = [(name, [values...])]."""
    series = [(n, v) for n, v in series if any(x is not None for x in v)]
    if not series or len(labels) < 2:
        return "<p>not enough entries to draw a trajectory yet.</p>"
    flat = [v for _, values in series for v in values if v is not None]
    lo, hi = min(flat), max(flat)
    if lo == hi:
        lo, hi = lo - 0.5, hi + 0.5
    pad = (hi - lo) * 0.08
    lo, hi = lo - pad, hi + pad

    width, height = 640, 320
    left, right, top, bottom = 58, 16, 12, 42
    plot_w, plot_h = width - left - right, height - top - bottom

    def sx(i: int) -> float:
        return left + i / (len(labels) - 1) * plot_w

    def sy(v: float) -> float:
        return top + plot_h - (v - lo) / (hi - lo) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{_esc(aria)}">'
    ]
    for k in range(5):
        value = lo + (hi - lo) * k / 4
        y = sy(value)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{left - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt_num(value)}</text>'
        )
    for i, label in enumerate(labels):
        parts.append(
            f'<text x="{sx(i):.1f}" y="{height - 22}" '
            f'text-anchor="middle">{_esc(label)}</text>'
        )
    parts.append(
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="var(--baseline)" stroke-width="1"/>'
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 6}" '
        f'text-anchor="middle" class="lbl">{_esc(y_label)}</text>'
    )
    legend = []
    for index, (name, values) in enumerate(series):
        color = f"var(--series-{index % 8 + 1})"
        legend.append((name, color))
        segments = []
        for i, value in enumerate(values):
            if value is None:
                continue
            command = "L" if segments else "M"
            segments.append(f"{command}{sx(i):.1f},{sy(value):.1f}")
        parts.append(
            f'<path d="{" ".join(segments)}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for i, value in enumerate(values):
            if value is None:
                continue
            parts.append(
                f'<circle cx="{sx(i):.1f}" cy="{sy(value):.1f}" r="3.5" '
                f'fill="{color}" stroke="var(--surface)" stroke-width="1.5">'
                f"<title>{_esc(name)} @ {_esc(labels[i])}: "
                f"{_fmt_num(value)}</title></circle>"
            )
    parts.append("</svg>")
    return "".join(parts) + _legend(legend)


def _trajectory_section(trajectory: dict) -> str:
    entries = trajectory.get("entries", [])
    if not entries:
        return "<p>trajectory file has no entries yet.</p>"
    labels = [
        e.get("label") or time.strftime(
            "%m-%d", time.gmtime(e.get("recorded_unix", 0))
        )
        for e in entries
    ]
    parts = []
    workloads = sorted({
        name for e in entries for name in e.get("sim", {}).get("speedups", {})
    })
    if workloads and len(entries) >= 2:
        series = [
            (name,
             [e.get("sim", {}).get("speedups", {}).get(name) for e in entries])
            for name in workloads
        ]
        parts.append(_line_chart(
            series, labels, "fast-vs-reference simulator speedup (×)",
            "simulator speedup trajectory",
        ))
    throughput = [
        ("sync req/s",
         [e.get("service", {}).get("requests_per_s") for e in entries]),
        ("streamed records/s",
         [e.get("service", {}).get("records_per_s") for e in entries]),
    ]
    if len(entries) >= 2 and any(
        v is not None for _, vs in throughput for v in vs
    ):
        parts.append(_line_chart(
            throughput, labels, "warm-cache service throughput (per second)",
            "service throughput trajectory",
        ))
    rows = []
    for label, entry in zip(labels, entries):
        service = entry.get("service", {})
        sim = entry.get("sim", {})
        geomean = sim.get("geomean_speedup")
        hit_rate = service.get("warm_hit_rate")
        re_evals = service.get("re_evaluations")
        duplicates = service.get("duplicate_evaluations")
        structural_ok = (re_evals in (0, None)) and (duplicates in (0, None))
        rows.append(
            f"<tr><td>{_esc(label)}</td>"
            f"<td>{'—' if geomean is None else f'{geomean:.2f}×'}</td>"
            f"<td>{'—' if hit_rate is None else f'{hit_rate:.1%}'}</td>"
            f"<td>{'—' if re_evals is None else re_evals}</td>"
            f"<td>{'—' if duplicates is None else duplicates}</td>"
            f"<td class=\"{'ok' if structural_ok else 'bad'}\">"
            f"{'pass' if structural_ok else 'FAIL'}</td></tr>"
        )
    parts.append(
        "<table><tr><th>entry</th><th>sim geomean</th>"
        "<th>warm hit rate</th><th>re-evals</th><th>dup evals</th>"
        "<th>structural</th></tr>" + "".join(rows) + "</table>"
    )
    return "".join(parts)


# ----------------------------------------------------------------------
# page assembly
# ----------------------------------------------------------------------
def _tiles(records: Sequence[dict]) -> str:
    points = _ok_records(records)
    failed = len(records) - len(points)
    tiles = [("records", str(len(records))), ("ok", str(len(points))),
             ("failed", str(failed))]
    if points:
        front = _pareto_front(points)
        best = min(points, key=lambda r: r["metrics"]["edp"])
        tiles.append(("on Pareto front", str(len(front))))
        tiles.append(("best EDP (J·s)", _fmt_num(best["metrics"]["edp"])))
    body = "".join(
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(name)}</div></div>'
        for name, value in tiles
    )
    return f'<div class="tiles">{body}</div>'


def render_html(
    records: Optional[Sequence[dict]] = None,
    trajectory: Optional[dict] = None,
    stage_profile: Optional[dict] = None,
    title: str = "repro report",
) -> str:
    """One self-contained HTML report (inline CSS + SVG, no fetches).

    Every section is optional: pass sweep ``records`` for the Pareto
    front and heatmap, a ``trajectory`` document for the BENCH charts,
    and a :meth:`StageProfiler.breakdown` dict for the stage view.
    """
    sections = []
    if records:
        sections.append(_tiles(records))
        sections.append("<h2>Pareto front</h2><p class=\"sub\">performance "
                        "vs energy efficiency; blue points are maximal.</p>"
                        f'<div class="card">{_pareto_svg(records)}</div>')
        sections.append("<h2>Sweep heatmap</h2><p class=\"sub\">min EDP per "
                        "configuration cell.</p>"
                        f'<div class="card">{_heatmap_svg(records)}</div>')
    if stage_profile:
        sections.append("<h2>Per-stage profile</h2><p class=\"sub\">where "
                        "evaluation wall-clock goes.</p>"
                        f'<div class="card">{_stage_svg(stage_profile)}</div>')
    if trajectory:
        sections.append("<h2>BENCH trajectory</h2><p class=\"sub\">speedups "
                        "and throughput across PRs; structural gates "
                        "below.</p>"
                        f'<div class="card">{_trajectory_section(trajectory)}'
                        "</div>")
    if not sections:
        sections.append("<p>nothing to report: no records, trajectory, or "
                        "profile supplied.</p>")
    generated = time.strftime("%Y-%m-%d %H:%M UTC", time.gmtime())
    host = host_metadata()
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        '<body class="viz-root">\n'
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="sub">generated {generated} · python {host["python"]} · '
        f'{host["cpu_count"]} cpus</p>\n'
        + "\n".join(sections)
        + "\n</body></html>\n"
    )


def write_html(
    path: Union[str, Path],
    records: Optional[Sequence[dict]] = None,
    trajectory: Optional[dict] = None,
    stage_profile: Optional[dict] = None,
    title: str = "repro report",
) -> Path:
    """Render and write a report; returns the path."""
    path = Path(path)
    path.write_text(
        render_html(records=records, trajectory=trajectory,
                    stage_profile=stage_profile, title=title),
        encoding="utf-8",
    )
    return path
