"""Process-wide metrics: counters, gauges, histograms, one registry.

The stack already counts things ad hoc — cache tiers track hits and
misses, the job table counts states, the service counts nothing.  This
module gives those numbers one registry and two export formats (a JSON
document and the Prometheus text exposition format), served by
``GET /v1/metrics`` and the ``repro metrics`` CLI.

Three instrument kinds, deliberately minimal:

* :class:`Counter` — monotonically increasing float (``inc``).
* :class:`Gauge` — a settable value *or* a callback read at collection
  time (``set_function``), which is how the existing cache/job-table
  counters are exported without adding a single instruction to their
  hot paths.
* :class:`Histogram` — cumulative fixed buckets plus sum and count
  (Prometheus semantics), for per-job latency distributions.

Instruments are get-or-create by **literal** name (REP007 enforces the
literal part statically); re-requesting a name returns the existing
instrument, and requesting it as a different kind raises — a collision
would silently merge unrelated series.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]

#: Default latency buckets (seconds): microseconds to tens of seconds.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A point-in-time value: set directly or backed by a callback."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: Union[int, float]) -> None:
        self._fn = None
        self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read ``fn()`` at collection time (zero hot-path cost)."""
        self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return float("nan")  # a dead callback must not kill /v1/metrics
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # last bucket is +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, observed = self._sum, self._count
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = running + counts[-1]
        return {
            "kind": self.kind,
            "help": self.help,
            "count": observed,
            "sum": total,
            "buckets": cumulative,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, get-or-create, with two export formats."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def names(self) -> tuple:
        with self._lock:
            return tuple(sorted(self._instruments))

    def collect(self) -> dict:
        """``{name: snapshot}`` for every instrument, sorted by name."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: instruments[name].snapshot() for name in sorted(instruments)
        }

    def prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for name, snap in self.collect().items():
            if snap["help"]:
                lines.append(f"# HELP {name} {snap['help']}")
            lines.append(f"# TYPE {name} {snap['kind']}")
            if snap["kind"] == "histogram":
                for le, count in snap["buckets"].items():
                    lines.append(f'{name}_bucket{{le="{le}"}} {count}')
                lines.append(f"{name}_sum {_fmt(snap['sum'])}")
                lines.append(f"{name}_count {snap['count']}")
            else:
                lines.append(f"{name} {_fmt(snap['value'])}")
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        """Drop every instrument (test isolation only)."""
        with self._lock:
            self._instruments.clear()


def _fmt(value: float) -> str:
    """Prometheus float formatting (NaN spelled out, ints unpadded)."""
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: The process-wide default registry every layer shares.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "") -> Counter:
    """Get-or-create a counter in the default registry."""
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return REGISTRY.gauge(name, help)


def histogram(
    name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
) -> Histogram:
    """Get-or-create a histogram in the default registry."""
    return REGISTRY.histogram(name, help, buckets=buckets)
