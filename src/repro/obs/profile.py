"""Per-stage profiling hooks over the evaluation pipeline.

``Pipeline.run_profiled`` has always timed its two stages for one
caller (``repro run --profile``).  This module generalizes that: the
pipeline now notifies process-wide hooks with every ``(stage,
seconds)`` observation, and a :class:`StageProfiler` aggregates those
observations into the per-sweep stage breakdown the HTML report renders.

The disarmed path is one truthiness check on the hook list — the same
discipline as :mod:`repro.obs.trace`.

    from repro.obs.profile import StageProfiler

    profiler = StageProfiler()
    with profiler.attached():
        engine.run(scenarios)          # serial/thread backends
    print(profiler.summary())

Process-pool workers do not share the parent's hook list; for those,
arm tracing and build the same breakdown from the ``stage.*`` spans in
the trace sink (:meth:`StageProfiler.from_trace`).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Dict, List, Union

__all__ = ["StageProfiler", "add_hook", "notify", "remove_hook"]

Hook = Callable[[str, float], None]

_hooks: List[Hook] = []
_hooks_lock = threading.Lock()


def add_hook(hook: Hook) -> Hook:
    """Register a ``(stage, seconds)`` observer; returns it for removal."""
    with _hooks_lock:
        _hooks.append(hook)
    return hook


def remove_hook(hook: Hook) -> None:
    """Unregister a hook (missing hooks are ignored)."""
    with _hooks_lock:
        try:
            _hooks.remove(hook)
        except ValueError:
            pass


def notify(stage: str, seconds: float) -> None:
    """Fan one stage observation out to every hook.

    With no hooks attached this is a single truthiness check, so the
    pipeline can call it unconditionally.
    """
    if not _hooks:
        return
    with _hooks_lock:
        hooks = list(_hooks)
    for hook in hooks:
        hook(stage, seconds)


class StageProfiler:
    """Aggregates ``(stage, seconds)`` observations into a breakdown."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # stage -> [count, total, min, max]
        self._stages: Dict[str, list] = {}

    def __call__(self, stage: str, seconds: float) -> None:
        self.observe(stage, seconds)

    def observe(self, stage: str, seconds: float) -> None:
        seconds = float(seconds)
        with self._lock:
            entry = self._stages.get(stage)
            if entry is None:
                self._stages[stage] = [1, seconds, seconds, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds
                entry[2] = min(entry[2], seconds)
                entry[3] = max(entry[3], seconds)

    def attached(self) -> "_Attachment":
        """Context manager hooking this profiler into the process."""
        return _Attachment(self)

    def breakdown(self) -> dict:
        """``{stage: {count, total_s, mean_s, min_s, max_s, share}}``."""
        with self._lock:
            stages = {name: list(entry) for name, entry in self._stages.items()}
        grand_total = sum(entry[1] for entry in stages.values())
        result = {}
        for name in sorted(stages):
            count, total, lo, hi = stages[name]
            result[name] = {
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
                "min_s": lo,
                "max_s": hi,
                "share": total / grand_total if grand_total > 0 else 0.0,
            }
        return result

    def summary(self) -> str:
        """Human-readable breakdown table, largest share first."""
        rows = sorted(
            self.breakdown().items(),
            key=lambda item: item[1]["total_s"],
            reverse=True,
        )
        if not rows:
            return "no stage observations"
        width = max(len(name) for name, _ in rows)
        lines = []
        for name, stats in rows:
            lines.append(
                f"{name:<{width}}  {stats['total_s']:8.3f}s total  "
                f"{stats['share']:6.1%}  {stats['count']:5d} calls  "
                f"mean {stats['mean_s'] * 1e3:8.3f}ms"
            )
        return "\n".join(lines)

    @classmethod
    def from_trace(
        cls, path: Union[str, Path], prefix: str = "stage."
    ) -> "StageProfiler":
        """Rebuild a breakdown from ``stage.*`` spans in a trace sink.

        This is how process-pool sweeps get a stage breakdown: the
        workers' spans land in the shared sink, and the report folds
        them back together here.
        """
        from . import trace

        profiler = cls()
        for record in trace.read_spans(path):
            name = record.get("name", "")
            if name.startswith(prefix):
                profiler.observe(
                    name[len(prefix):], float(record.get("duration_s", 0.0))
                )
        return profiler


class _Attachment:
    """RAII hook registration for :meth:`StageProfiler.attached`."""

    __slots__ = ("_profiler",)

    def __init__(self, profiler: StageProfiler):
        self._profiler = profiler

    def __enter__(self) -> StageProfiler:
        add_hook(self._profiler)
        return self._profiler

    def __exit__(self, *exc) -> None:
        remove_hook(self._profiler)
