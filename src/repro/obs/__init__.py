"""repro.obs — the observability layer: tracing, metrics, profiling, reports.

Four small modules, one discipline (disarmed costs one boolean check):

* :mod:`repro.obs.trace` — spans with parent linkage and a JSONL sink,
  propagated across process pools and the service HTTP boundary.
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms,
  exported as JSON and Prometheus text (``GET /v1/metrics``).
* :mod:`repro.obs.profile` — per-stage profiling hooks over the
  pipeline, aggregated into per-sweep breakdowns.
* :mod:`repro.obs.report` — stamped BENCH artifacts, the tracked
  trajectory + its structural CI gate, and self-contained HTML reports.
"""

from . import metrics, profile, trace
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from .profile import StageProfiler
from .report import (
    append_trajectory,
    check_trajectory,
    load_bench,
    load_trajectory,
    render_html,
    stamp_bench,
    write_html,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StageProfiler",
    "append_trajectory",
    "check_trajectory",
    "load_bench",
    "load_trajectory",
    "metrics",
    "profile",
    "render_html",
    "stamp_bench",
    "trace",
    "write_html",
]
