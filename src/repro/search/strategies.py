"""Search strategy plugins: propose candidates, observe results.

A *strategy* is the fourth plugin kind of the repro stack (alongside
flows, workloads, and objectives): a class that proposes batches of
``{axis name: value}`` assignments over a
:class:`~repro.search.space.SearchSpace` and observes the evaluated
candidates fed back by the :class:`~repro.search.driver.Searcher`.  New
strategies register with :func:`register_strategy` — no edits to this
package required::

    from repro.search import Strategy, register_strategy

    @register_strategy("my-annealer")
    class Annealer(Strategy):
        def propose(self, n):
            ...

Built-ins:

* ``random`` — uniform rejection sampling, never re-proposing a point;
* ``latin-hypercube`` — one stratified slab per generation, so every
  axis is covered evenly at any budget;
* ``evolutionary`` — NSGA-II-style multi-objective search:
  non-dominated sorting plus crowding distance over the evaluated
  population, binary-tournament parents, uniform crossover, per-axis
  mutation;
* ``successive-halving`` — screens an ``eta``-times larger candidate
  pool with the cheap analytic-matmul proxy model and promotes only the
  Pareto-best fraction to real (budgeted, possibly simulator-backed)
  evaluation.

All strategies draw from a seeded private ``random.Random``, so a search
trajectory replays deterministically — that, plus the content-addressed
sweep cache, is what makes ``repro search --resume`` free.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..api.registry import Registry
from .pareto import crowding_distances, non_dominated_sort
from .space import SearchSpace

#: Strategy registry: name -> Strategy subclass.
STRATEGIES = Registry("strategy")


def register_strategy(name: str):
    """Decorator registering a :class:`Strategy` subclass under ``name``."""
    return STRATEGIES.decorator(name)


def get_strategy(name: str) -> type:
    """The registered strategy class for ``name``."""
    return STRATEGIES.get(name)  # type: ignore[return-value]


def available_strategies() -> tuple[str, ...]:
    """Names of every registered strategy."""
    return STRATEGIES.names()


def lhs_units(rng: random.Random, n: int, names: Sequence[str]) -> list[dict]:
    """``n`` Latin-hypercube unit-coordinate dicts over ``names``.

    Each axis's unit interval is cut into ``n`` strata; every stratum is
    used exactly once per axis, with independently shuffled pairings.
    """
    if n <= 0:
        return []
    strata = {name: rng.sample(range(n), n) for name in names}
    return [
        {
            name: (strata[name][i] + rng.random()) / n
            for name in names
        }
        for i in range(n)
    ]


class Strategy:
    """Base strategy: dedupe bookkeeping plus rejection sampling.

    Args:
        space: The search space proposals are drawn from.
        objectives: ``(name, key_fn, higher_is_better)`` triples the
            search optimizes (most strategies only consume the
            pre-folded ``costs`` on observed candidates; the
            successive-halving screen applies the key functions to its
            proxy results directly).
        seed: Seed of the strategy's private RNG — fixes the trajectory.
        **options: Strategy-specific keyword options.

    Subclasses implement :meth:`propose`; :meth:`observe` is optional.
    A proposal batch may come back shorter than requested — an empty
    batch tells the driver the space is exhausted.
    """

    #: Rejection-sampling attempts per requested candidate before a
    #: batch is returned short.
    MAX_TRIES_PER_CANDIDATE = 200

    def __init__(
        self,
        space: SearchSpace,
        objectives: Sequence[tuple] = (),
        seed: int = 0,
        **options,
    ) -> None:
        self.space = space
        self.objectives = tuple(objectives)
        self.rng = random.Random(seed)
        self.options = dict(options)
        self._proposed: set[tuple] = set()

    # -- bookkeeping -------------------------------------------------------
    def values_key(self, values: dict) -> tuple:
        """Hashable identity of a value assignment (axis order)."""
        return tuple(values[name] for name in self.space.names)

    def claim(self, values: dict) -> bool:
        """Reserve an assignment; False if proposed before or invalid.

        Invalid assignments are also recorded, so rejection sampling
        never spins on the same impossible point twice.
        """
        key = self.values_key(values)
        if key in self._proposed:
            return False
        self._proposed.add(key)
        return self.space.try_scenario(values) is not None

    def random_batch(self, n: int) -> list[dict]:
        """Up to ``n`` fresh valid assignments by rejection sampling."""
        batch: list[dict] = []
        tries = n * self.MAX_TRIES_PER_CANDIDATE
        while len(batch) < n and tries > 0:
            tries -= 1
            values = self.space.sample_values(self.rng)
            if self.claim(values):
                batch.append(values)
        return batch

    def lhs_batch(self, n: int) -> list[dict]:
        """Up to ``n`` fresh assignments from one Latin-hypercube slab."""
        batch = []
        for units in lhs_units(self.rng, n, self.space.names):
            values = self.space.from_unit(units)
            if self.claim(values):
                batch.append(values)
        if len(batch) < n:
            batch.extend(self.random_batch(n - len(batch)))
        return batch

    # -- the strategy interface --------------------------------------------
    def propose(self, n: int) -> list[dict]:
        """Up to ``n`` fresh candidate assignments (empty = exhausted)."""
        raise NotImplementedError

    def observe(self, candidates) -> None:
        """Feed back evaluated candidates (both ok and failed)."""


@register_strategy("random")
class RandomStrategy(Strategy):
    """Uniform random sampling without replacement."""

    def propose(self, n: int) -> list[dict]:
        return self.random_batch(n)


@register_strategy("latin-hypercube")
class LatinHypercubeStrategy(Strategy):
    """Stratified sampling: one Latin-hypercube slab per generation."""

    def propose(self, n: int) -> list[dict]:
        return self.lhs_batch(n)


@register_strategy("evolutionary")
class EvolutionaryStrategy(Strategy):
    """NSGA-II-style multi-objective evolutionary search.

    Options:
        population: Survivor count after each truncation (default 8 —
            small populations keep selection pressure high at the tight
            budgets guided search exists for).
        crossover_rate: Probability a child mixes two parents (0.9).
        mutation_scale: Unit-space step of range-axis mutations (0.25).
    """

    def __init__(self, space, objectives=(), seed=0, **options) -> None:
        super().__init__(space, objectives, seed, **options)
        self.population_size = int(self.options.pop("population", 8))
        self.crossover_rate = float(self.options.pop("crossover_rate", 0.9))
        self.mutation_scale = float(self.options.pop("mutation_scale", 0.25))
        if self.population_size <= 1:
            raise ValueError("population must be at least 2")
        # Survivors as (candidate, rank, crowding) for tournament picks.
        self._population: list[tuple] = []

    def observe(self, candidates) -> None:
        pool = [entry[0] for entry in self._population]
        pool.extend(c for c in candidates if c.costs)
        if not pool:
            return
        costs = [c.costs for c in pool]
        survivors: list[tuple] = []
        for rank, front in enumerate(non_dominated_sort(costs)):
            crowding = crowding_distances([costs[i] for i in front])
            for i, distance in sorted(zip(front, crowding), key=lambda ic: -ic[1]):
                if len(survivors) == self.population_size:
                    break
                survivors.append((pool[i], rank, distance))
            if len(survivors) == self.population_size:
                break
        self._population = survivors

    def _tournament(self) -> dict:
        a, b = self.rng.choice(self._population), self.rng.choice(self._population)
        winner = min((a, b), key=lambda e: (e[1], -e[2]))
        return winner[0].values

    def _child(self) -> dict:
        mother = self._tournament()
        if self.rng.random() < self.crossover_rate:
            father = self._tournament()
            child = {
                name: (mother if self.rng.random() < 0.5 else father)[name]
                for name in self.space.names
            }
        else:
            child = dict(mother)
        # Mutate each axis with probability 1/num_axes (at least one
        # guaranteed overall on average), keeping children near parents.
        rate = 1.0 / len(self.space.axes)
        for axis in self.space.axes:
            if self.rng.random() < rate:
                child[axis.name] = axis.mutate(
                    child[axis.name], self.rng, scale=self.mutation_scale
                )
        return child

    def propose(self, n: int) -> list[dict]:
        if not self._population:
            return self.lhs_batch(n)  # stratified initial generation
        batch: list[dict] = []
        tries = n * self.MAX_TRIES_PER_CANDIDATE
        while len(batch) < n and tries > 0:
            tries -= 1
            child = self._child()
            if self.claim(child):
                batch.append(child)
        if len(batch) < n:
            batch.extend(self.random_batch(n - len(batch)))
        return batch


@register_strategy("successive-halving")
class SuccessiveHalvingStrategy(Strategy):
    """Tier-0 screen first, real evaluation for the survivors.

    Each generation draws an ``eta``-times larger pool, scores every
    member with the calibrated analytic tier (``engine="analytic"``,
    in-process; no budget spent), and promotes only the Pareto-best
    ``1/eta`` fraction to the driver's real — cached, budgeted,
    simulator-backed — evaluation.  Every workload with a registered
    predictor screens through its *own* calibrated closed form;
    workloads without one screen through the analytic-matmul phase
    model, the pre-tier-0 proxy.

    The screen memo is keyed by the predictor registry's generation:
    registering (or unregistering) a predictor mid-process invalidates
    every screened ranking instead of silently serving scores from the
    old proxy.

    Options:
        eta: Pool-to-survivor ratio (default 4).
    """

    def __init__(self, space, objectives=(), seed=0, **options) -> None:
        super().__init__(space, objectives, seed, **options)
        self.eta = int(self.options.pop("eta", 4))
        if self.eta < 2:
            raise ValueError("eta must be at least 2")
        self._proxy_memo: dict[tuple, Optional[tuple]] = {}
        self._proxy_generation: Optional[int] = None

    def _proxy_costs(self, values: dict) -> Optional[tuple]:
        """Tier-0 cost vector of an assignment (None = invalid)."""
        from ..api.pipeline import Pipeline  # local: keeps import light
        from ..api.registry import PREDICTORS

        if PREDICTORS.generation != self._proxy_generation:
            self._proxy_memo.clear()
            self._proxy_generation = PREDICTORS.generation
        key = self.values_key(values)
        if key in self._proxy_memo:
            return self._proxy_memo[key]

        costs: Optional[tuple] = None
        scenario = self.space.try_scenario(values)
        if scenario is not None:
            if scenario.workload not in PREDICTORS:
                scenario = scenario.replace(workload="matmul")
            try:
                result = Pipeline(engine="analytic").run(scenario)
                costs = tuple(
                    key_fn(result) * (-1.0 if higher else 1.0)
                    for _, key_fn, higher in self.objectives
                )
            except (ValueError, RuntimeError):
                costs = None
        self._proxy_memo[key] = costs
        return costs

    def propose(self, n: int) -> list[dict]:
        # Draw the screening pool without claiming: losers stay eligible
        # for later generations, only promoted candidates spend budget.
        pool: list[dict] = []
        seen = set(self._proposed)
        tries = self.eta * n * self.MAX_TRIES_PER_CANDIDATE
        while len(pool) < self.eta * n and tries > 0:
            tries -= 1
            values = self.space.sample_values(self.rng)
            key = self.values_key(values)
            if key in seen:
                continue
            seen.add(key)
            if self._proxy_costs(values) is not None:
                pool.append(values)
        if not pool:
            return self.random_batch(n)
        costs = [self._proxy_costs(values) for values in pool]
        promoted: list[dict] = []
        for front in non_dominated_sort(costs):
            crowding = crowding_distances([costs[i] for i in front])
            for i, _ in sorted(zip(front, crowding), key=lambda ic: -ic[1]):
                if len(promoted) == n:
                    break
                if self.claim(pool[i]):
                    promoted.append(pool[i])
            if len(promoted) == n:
                break
        if len(promoted) < n:
            promoted.extend(self.random_batch(n - len(promoted)))
        return promoted
