"""Budgeted multi-objective design-space search.

Where :mod:`repro.sweep` *enumerates* a grid, this package *optimizes*:
a :class:`SearchSpace` declares axes over any
:class:`~repro.api.Scenario` field, a registered strategy proposes
candidate generations, and the :class:`Searcher` evaluates them through
the shared :class:`~repro.engine.Engine` — pluggable backends plus the
two-tier content-addressed cache, so searches are parallel and resumable
after a kill for free — while a persistent :class:`ParetoArchive`
accumulates the non-dominated front.

Layer stack::

    arch / physical / kernels        the models
      -> repro.api                   Scenario + Pipeline + registries
        -> repro.engine              backends + two-tier cached execution
          -> repro.search            guided multi-objective optimization

Quick start::

    from repro.search import Searcher, paper_space
    from repro.sweep import ResultCache

    searcher = Searcher(
        paper_space(),
        objectives=("edp", "energy_efficiency"),
        strategy="evolutionary",
        budget=28,
        cache=ResultCache(".sweep-cache"),
    )
    outcome = searcher.run()
    print(outcome.report())

Strategies are plugins (the fourth registry, alongside flows, workloads,
and objectives)::

    from repro.search import Strategy, register_strategy

    @register_strategy("my-strategy")
    class MyStrategy(Strategy):
        def propose(self, n):
            return self.random_batch(n)
"""

from .archive import ParetoArchive
from .driver import (
    DEFAULT_OBJECTIVES,
    Candidate,
    Searcher,
    SearchOutcome,
    SearchStats,
    resolve_objectives,
)
from .pareto import (
    crowding_distances,
    dominates,
    non_dominated,
    non_dominated_sort,
)
from .space import (
    Axis,
    Choice,
    FloatRange,
    IntRange,
    SearchSpace,
    axis_from_dict,
    paper_space,
)
from .strategies import (
    STRATEGIES,
    Strategy,
    available_strategies,
    get_strategy,
    register_strategy,
)

__all__ = [
    "Axis",
    "Candidate",
    "Choice",
    "DEFAULT_OBJECTIVES",
    "FloatRange",
    "IntRange",
    "ParetoArchive",
    "STRATEGIES",
    "SearchOutcome",
    "SearchSpace",
    "SearchStats",
    "Searcher",
    "Strategy",
    "available_strategies",
    "axis_from_dict",
    "crowding_distances",
    "dominates",
    "get_strategy",
    "non_dominated",
    "non_dominated_sort",
    "paper_space",
    "register_strategy",
    "resolve_objectives",
]
