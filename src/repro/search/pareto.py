"""Multi-objective primitives over minimization cost vectors.

Every candidate in :mod:`repro.search` carries a *cost vector*: its
objective values folded into pure-minimization form (higher-is-better
objectives negated), one entry per search objective.  This module holds
the vector arithmetic the strategies and the archive share — Pareto
domination, non-dominated filtering/sorting, and crowding distance (the
NSGA-II diversity measure).
"""

from __future__ import annotations

from typing import Sequence


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if cost vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one (costs: lower is better).

    Raises:
        ValueError: On mismatched vector lengths.
    """
    if len(a) != len(b):
        raise ValueError(f"cost vectors differ in length: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def non_dominated(costs: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated vectors, input order preserved."""
    return [
        i
        for i, c in enumerate(costs)
        if not any(dominates(other, c) for j, other in enumerate(costs) if j != i)
    ]


def non_dominated_sort(costs: Sequence[Sequence[float]]) -> list[list[int]]:
    """Indices layered into Pareto fronts (front 0 = non-dominated).

    The classic fast non-dominated sort: every index appears in exactly
    one front; each front is non-dominated once all earlier fronts are
    removed.
    """
    n = len(costs)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(costs[i], costs[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(costs[j], costs[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: list[list[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        upcoming = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    upcoming.append(j)
        current = sorted(upcoming)
    return fronts


def crowding_distances(costs: Sequence[Sequence[float]]) -> list[float]:
    """NSGA-II crowding distance of each vector within its own set.

    Boundary points per objective get infinite distance; interior points
    sum their normalized neighbor gaps.  Larger = lonelier = preferred
    when truncating a front.
    """
    n = len(costs)
    if n == 0:
        return []
    distances = [0.0] * n
    num_objectives = len(costs[0])
    for m in range(num_objectives):
        order = sorted(range(n), key=lambda i, m=m: costs[i][m])
        lo, hi = costs[order[0]][m], costs[order[-1]][m]
        distances[order[0]] = distances[order[-1]] = float("inf")
        span = hi - lo
        if span <= 0:
            continue
        for rank in range(1, n - 1):
            i = order[rank]
            gap = costs[order[rank + 1]][m] - costs[order[rank - 1]][m]
            distances[i] += gap / span
    return distances
