"""Persistent Pareto archive of evaluated search candidates.

The archive is the search's durable artifact: every candidate a
:class:`~repro.search.driver.Searcher` evaluates is appended — via the
same :class:`~repro.sweep.store.ResultStore` JSONL serialization sweep
results use — as its sweep record plus a ``"search"`` sub-record (axis
values, generation, objective values, folded cost vector).  Because
entries are keyed by the job's content address, reloading after a crash
or across resumed runs deduplicates for free, and the non-dominated
front is recomputable from disk at any time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from ..sweep.store import ResultStore
from .pareto import non_dominated


class ParetoArchive:
    """Append-only, key-deduplicated log of search candidates.

    Args:
        path: JSONL file backing the archive; ``None`` keeps it
            in-memory only.  An existing file is loaded (last record per
            key wins), which is how a resumed search inherits history.
    """

    def __init__(self, path: Optional[str | Path] = None) -> None:
        self._store = ResultStore(path) if path is not None else None
        self._entries: dict[str, dict] = {}
        if self._store is not None:
            for record in self._store.load():
                key = record.get("key")
                if key and "search" in record:
                    self._entries[key] = record

    @property
    def path(self) -> Optional[Path]:
        """Backing file, or ``None`` for an in-memory archive."""
        return self._store.path if self._store is not None else None

    def add(self, candidate) -> None:
        """Record one evaluated :class:`~repro.search.driver.Candidate`."""
        entry = candidate.to_record()
        self._entries[entry["key"]] = entry
        if self._store is not None:
            self._store.append(entry)

    def extend(self, candidates: Iterable) -> None:
        """Record a batch of candidates in order."""
        for candidate in candidates:
            self.add(candidate)

    def entries(self) -> list[dict]:
        """Every archived entry, first-seen order, deduplicated by key."""
        return list(self._entries.values())

    def ok_entries(self) -> list[dict]:
        """Successfully evaluated entries only."""
        return [e for e in self._entries.values() if e.get("status") == "ok"]

    def front(self, objectives: Optional[Iterable[str]] = None) -> list[dict]:
        """The non-dominated entries under one objective set.

        Cost vectors are only comparable within a single objective
        tuple, so entries recorded under a *different* set (e.g. an
        earlier search over other objectives sharing the archive file)
        are excluded rather than mis-compared.

        Args:
            objectives: Objective names selecting which entries compete;
                defaults to the most recently added entry's set.
        """
        entries = [e for e in self.ok_entries() if e["search"].get("costs")]
        if not entries:
            return []
        target = tuple(
            objectives
            if objectives is not None
            else entries[-1]["search"]["objectives"]
        )
        entries = [
            e
            for e in entries
            if tuple(e["search"]["objectives"]) == target
        ]
        costs = [tuple(e["search"]["costs"]) for e in entries]
        return [entries[i] for i in non_dominated(costs)]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries
