"""The budgeted multi-objective search driver.

A :class:`Searcher` closes the loop between a strategy plugin and the
shared execution layer: each generation it asks the strategy for fresh
candidates, turns them into content-addressed sweep jobs, evaluates them
through the :class:`~repro.engine.Engine` (pluggable backend fan-out,
per-job error capture, and the two-tier LRU + on-disk result cache —
which is what makes a killed search resumable with zero re-evaluation),
folds the results into per-objective cost vectors, feeds them back to
the strategy, and appends them to a
:class:`~repro.search.archive.ParetoArchive`.  The budget is counted in
*evaluations requested* (cache hits included), so a resumed search
replays the identical trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from ..api.registry import OBJECTIVES
from ..engine.core import Engine
from ..sweep.cache import ResultCache
from ..sweep.spec import Job
from ..sweep.store import ResultStore, record_to_point
from .archive import ParetoArchive
from .pareto import non_dominated
from .space import SearchSpace
from .strategies import STRATEGIES, Strategy

#: Default candidates per generation when the caller does not pick one.
#: Small generations mean more selection rounds per budget, which is
#: what lets the evolutionary strategy converge within tight budgets.
DEFAULT_GENERATION_SIZE = 6

#: Default search objectives: the paper's energy-delay and efficiency lens.
DEFAULT_OBJECTIVES = ("edp", "energy_efficiency")


def resolve_objectives(names: Sequence[str]) -> tuple[tuple, ...]:
    """``(name, key_fn, higher_is_better)`` triples for objective names.

    Raises:
        ValueError: On an empty list or an unregistered objective.
    """
    names = tuple(names)
    if not names:
        raise ValueError("need at least one objective")
    resolved = []
    for name in names:
        key_fn, higher = OBJECTIVES.get(name)
        resolved.append((name, key_fn, bool(higher)))
    return tuple(resolved)


@dataclass(frozen=True)
class Candidate:
    """One evaluated search candidate.

    Attributes:
        values: The axis assignment the strategy proposed.
        key: Content address of the underlying sweep job.
        generation: 0-based generation the candidate was evaluated in.
        status: ``"ok"`` or ``"error"``.
        source: ``"evaluated"`` (fresh) or ``"cache"`` (served from disk).
        record: The full sweep record (job parameters, metrics/error).
        objectives: Raw objective values by name (empty when failed).
        costs: Minimization-folded objective vector (empty when failed).
    """

    values: dict
    key: str
    generation: int
    status: str
    source: str
    record: dict
    objectives: dict = field(default_factory=dict)
    costs: tuple = ()

    @property
    def label(self) -> str:
        """Human-readable point label (the sweep job's)."""
        return Job.from_params(self.record["job"]).label

    def to_record(self) -> dict:
        """Archive form: the sweep record plus search metadata."""
        return {
            **self.record,
            "search": {
                "values": dict(self.values),
                "generation": self.generation,
                "objectives": dict(self.objectives),
                "costs": list(self.costs),
            },
        }


@dataclass(frozen=True)
class SearchStats:
    """Bookkeeping of one search run."""

    budget: int
    proposed: int
    evaluated: int
    cached: int
    failed: int
    generations: int
    duration_s: float

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.proposed}/{self.budget} budget used over "
            f"{self.generations} generations: {self.evaluated} evaluated, "
            f"{self.cached} cached, {self.failed} failed "
            f"in {self.duration_s:.2f}s"
        )


@dataclass
class SearchOutcome:
    """Results of one search run, in evaluation order."""

    objectives: tuple[str, ...]
    candidates: list[Candidate]
    front: list[Candidate]
    stats: SearchStats

    @property
    def ok_candidates(self) -> list[Candidate]:
        """Successfully evaluated candidates only."""
        return [c for c in self.candidates if c.status == "ok"]

    def ranked(self, objective: str) -> list[Candidate]:
        """Successful candidates ordered best-first under ``objective``.

        Raises:
            ValueError: If the objective was not part of the search.
        """
        if objective not in self.objectives:
            raise ValueError(
                f"objective {objective!r} was not searched; "
                f"pick from {self.objectives}"
            )
        index = self.objectives.index(objective)
        return sorted(self.ok_candidates, key=lambda c: c.costs[index])

    def best(self, objective: Optional[str] = None) -> Candidate:
        """The best candidate under one objective (default: the first).

        Raises:
            ValueError: If no candidate succeeded.
        """
        ranked = self.ranked(objective or self.objectives[0])
        if not ranked:
            raise ValueError("no successful candidates")
        return ranked[0]

    def report(self, top: int = 3) -> str:
        """Ranked winners per objective plus the Pareto front."""
        lines = [self.stats.summary()]
        if not self.ok_candidates:
            lines.append("(no successful candidates)")
            return "\n".join(lines)
        for objective in self.objectives:
            lines.append(f"best {objective}:")
            for candidate in self.ranked(objective)[:top]:
                lines.append(
                    f"  {candidate.label:>28}  "
                    f"{candidate.objectives[objective]:.4e}"
                )
        lines.append(
            f"Pareto front ({', '.join(self.objectives)}; "
            f"{len(self.front)} of {len(self.ok_candidates)} evaluated):"
        )
        for candidate in self.front:
            scores = "  ".join(
                f"{name}={candidate.objectives[name]:.4e}"
                for name in self.objectives
            )
            lines.append(f"  {candidate.label:>28}  {scores}")
        failures = [c for c in self.candidates if c.status != "ok"]
        if failures:
            lines.append(f"failures ({len(failures)}):")
            for candidate in failures:
                lines.append(
                    f"  {candidate.label:>28}  "
                    f"{candidate.record.get('error', '?')}"
                )
        return "\n".join(lines)


class Searcher:
    """Budgeted multi-objective optimizer over a search space.

    Args:
        space: The :class:`~repro.search.space.SearchSpace` to explore.
        objectives: Registered objective names to optimize jointly.
        strategy: Registered strategy name, or a ready-made
            :class:`~repro.search.strategies.Strategy` instance.
        budget: Maximum evaluations requested (cache hits count, so a
            resumed search replays the same trajectory for free).
        generation_size: Candidates proposed per generation.
        seed: Strategy RNG seed — fixes the search trajectory.
        cache: Sweep :class:`~repro.sweep.cache.ResultCache` (shared
            with ``repro sweep``); ``None`` keeps caching in-memory only
            (the engine's LRU tier still dedups within the process).
        workers: Workers per generation (0 = serial unless ``backend``
            says otherwise).
        store: Optional append-only :class:`~repro.sweep.store.ResultStore`
            audit log of every record.
        archive: :class:`~repro.search.archive.ParetoArchive` receiving
            every candidate; defaults to a fresh in-memory archive.
        strategy_options: Extra keyword options for the strategy
            (ignored when ``strategy`` is already an instance).
        backend: Execution-backend name or instance for the engine;
            ``None`` keeps the historical behavior (``process`` when
            ``workers > 1``, ``serial`` otherwise).
        on_result: Optional progress callback, called as
            ``on_result(done, budget, record)`` after every evaluation
            across the whole search.
    """

    def __init__(
        self,
        space: SearchSpace,
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
        strategy: Union[str, Strategy] = "evolutionary",
        budget: int = 32,
        generation_size: Optional[int] = None,
        seed: int = 0,
        cache: Optional[ResultCache] = None,
        workers: int = 0,
        store: Optional[ResultStore] = None,
        archive: Optional[ParetoArchive] = None,
        strategy_options: Optional[dict] = None,
        backend: Union[str, object, None] = None,
        on_result: Optional[Callable[[int, int, dict], None]] = None,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        if generation_size is not None and generation_size <= 0:
            raise ValueError("generation_size must be positive")
        self.space = space
        self.objectives = resolve_objectives(objectives)
        self.objective_names = tuple(name for name, _, _ in self.objectives)
        self.budget = int(budget)
        self.generation_size = generation_size or min(
            self.budget, DEFAULT_GENERATION_SIZE
        )
        self.seed = int(seed)
        self.archive = archive if archive is not None else ParetoArchive()
        self.on_result = on_result
        # All parallelism and caching live in the shared engine; the
        # searcher only proposes, scores, and archives.
        self.engine = Engine(
            backend=backend, workers=workers, cache=cache, store=store
        )
        if isinstance(strategy, Strategy):
            self.strategy = strategy
        else:
            strategy_cls = STRATEGIES.get(strategy)
            self.strategy = strategy_cls(
                space,
                objectives=self.objectives,
                seed=self.seed,
                **(strategy_options or {}),
            )

    def _progress_callback(self, offset: int):
        """Adapt the engine's per-batch progress to search-wide counts."""

        def progress(done: int, total: int, record: dict) -> None:
            del total  # the search-wide denominator is the budget
            self.on_result(offset + done, self.budget, record)

        return progress

    def _candidate(
        self, values: dict, record: dict, generation: int
    ) -> Candidate:
        objectives: dict = {}
        costs: tuple = ()
        if record["status"] == "ok":
            point = record_to_point(record)
            objectives = {
                name: key_fn(point) for name, key_fn, _ in self.objectives
            }
            costs = tuple(
                value if not higher else -value
                for (_, _, higher), value in zip(
                    self.objectives, objectives.values()
                )
            )
        return Candidate(
            values=dict(values),
            key=record["key"],
            generation=generation,
            status=record["status"],
            source=record.get("source", "evaluated"),
            record=record,
            objectives=objectives,
            costs=costs,
        )

    def run(self) -> SearchOutcome:
        """Drive the strategy until the budget is spent or the space dries up."""
        t0 = time.perf_counter()
        candidates: list[Candidate] = []
        seen_keys: set[str] = set()
        evaluated = cached = failed = generations = 0

        filtered_streak = 0
        while len(candidates) < self.budget:
            want = min(self.generation_size, self.budget - len(candidates))
            proposals = self.strategy.propose(want)
            if not proposals:
                break  # the strategy exhausted the space
            batch: list[tuple[dict, Job]] = []
            for values in proposals:
                scenario = self.space.try_scenario(values)
                if scenario is None:
                    continue
                job = Job.from_scenario(scenario)
                # Distinct axis assignments can canonicalize to the same
                # scenario (e.g. an explicit tile equal to the derived
                # one); evaluate each content address once per search.
                if job.key in seen_keys:
                    continue
                seen_keys.add(job.key)
                batch.append((values, job))
            if not batch:
                # Everything proposed folded onto already-evaluated
                # scenarios.  Strategies never re-propose the same
                # assignment, so ask again — but bound the retries in
                # case every remaining assignment aliases a seen key.
                filtered_streak += 1
                if filtered_streak >= 3:
                    break
                continue
            filtered_streak = 0
            progress = None
            if self.on_result is not None:
                progress = self._progress_callback(offset=len(candidates))
            outcome = self.engine.run(
                [job for _, job in batch], on_result=progress
            )
            generation = generations
            generations += 1
            evaluated += outcome.stats.evaluated
            cached += outcome.stats.cached
            failed += outcome.stats.failed
            fresh = [
                self._candidate(values, record, generation)
                for (values, _), record in zip(batch, outcome.records)
            ]
            candidates.extend(fresh)
            self.strategy.observe(fresh)
            self.archive.extend(fresh)

        ok = [c for c in candidates if c.costs]
        front = [ok[i] for i in non_dominated([c.costs for c in ok])]
        stats = SearchStats(
            budget=self.budget,
            proposed=len(candidates),
            evaluated=evaluated,
            cached=cached,
            failed=failed,
            generations=generations,
            duration_s=time.perf_counter() - t0,
        )
        return SearchOutcome(
            objectives=self.objective_names,
            candidates=candidates,
            front=front,
            stats=stats,
        )
