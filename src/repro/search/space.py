"""Declarative search spaces over :class:`~repro.api.Scenario` fields.

A :class:`SearchSpace` names the *axes* of a guided design-space search —
each axis is a :class:`Choice` (categorical/discrete), an
:class:`IntRange`, or a :class:`FloatRange` over one scenario field (or a
dotted ``arch.<param>`` architecture override) — plus a set of fixed
base fields shared by every candidate.  It samples, perturbs, and
validates full :class:`~repro.api.Scenario` records, so every strategy in
:mod:`repro.search.strategies` speaks plain ``{axis name: value}`` dicts
and the driver turns them into cacheable sweep jobs.

Axes share a unit-hypercube interface (:meth:`Axis.from_unit` /
:meth:`Axis.to_unit`): a value maps to a position in ``[0, 1)`` and back,
which gives Latin-hypercube stratification and mutation steps one common
coordinate system across categorical, linear, and logarithmic axes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Iterator, Optional

from ..api.scenario import Scenario
from ..core.config import ArchParams, CAPACITIES_MIB
from ..simulator.memsys import DDR_CHANNEL_BYTES_PER_CYCLE

#: Scenario fields an axis may target.  ``objective`` only ranks results
#: (it never changes the evaluation) and ``arch`` is reached through
#: dotted ``arch.<param>`` names, so neither is a direct axis target.
SEARCHABLE_FIELDS = tuple(
    f.name for f in fields(Scenario) if f.name not in ("objective", "arch")
)

_ARCH_PREFIX = "arch."
_ARCH_FIELDS = frozenset(f.name for f in fields(ArchParams))


def _check_arch_param(param: str) -> None:
    if param not in _ARCH_FIELDS:
        raise ValueError(
            f"unknown arch parameter {param!r}; pick from "
            f"{sorted(_ARCH_FIELDS)}"
        )


def _check_axis_name(name: str) -> None:
    if not isinstance(name, str) or not name:
        raise ValueError("axis name must be a non-empty string")
    if name.startswith(_ARCH_PREFIX):
        _check_arch_param(name[len(_ARCH_PREFIX):])
        return
    if name not in SEARCHABLE_FIELDS:
        raise ValueError(
            f"axis {name!r} is not a searchable scenario field; pick from "
            f"{SEARCHABLE_FIELDS} or an 'arch.<param>' override"
        )


class Axis:
    """One searchable dimension (see the concrete subclasses)."""

    name: str

    def sample(self, rng) -> object:
        """A uniform random value of this axis."""
        return self.from_unit(rng.random())

    def from_unit(self, u: float) -> object:
        """The axis value at unit-interval position ``u`` in ``[0, 1)``."""
        raise NotImplementedError

    def to_unit(self, value) -> float:
        """The unit-interval position of ``value`` (inverse of from_unit)."""
        raise NotImplementedError

    def mutate(self, value, rng, scale: float = 0.25) -> object:
        """A perturbed value: a Gaussian step of ``scale`` in unit space."""
        u = min(max(self.to_unit(value) + rng.gauss(0.0, scale), 0.0), 1.0 - 1e-9)
        return self.from_unit(u)

    @property
    def cardinality(self) -> Optional[int]:
        """Distinct values, or ``None`` when the axis is continuous."""
        return None

    def grid(self) -> tuple:
        """Every value of a discrete axis.

        Raises:
            ValueError: If the axis is continuous.
        """
        raise ValueError(f"axis {self.name!r} is continuous; it has no grid")

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :func:`axis_from_dict`)."""
        data = {"kind": type(self).__name__.lower()}
        data.update(
            {f.name: getattr(self, f.name) for f in fields(self)}  # type: ignore[arg-type]
        )
        if "values" in data:
            data["values"] = list(data["values"])
        return data


@dataclass(frozen=True)
class Choice(Axis):
    """A categorical or explicitly-enumerated discrete axis."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.name!r} has duplicate values")

    def from_unit(self, u: float) -> object:
        index = min(int(u * len(self.values)), len(self.values) - 1)
        return self.values[max(index, 0)]

    def to_unit(self, value) -> float:
        return (self.values.index(value) + 0.5) / len(self.values)

    def mutate(self, value, rng, scale: float = 0.25) -> object:
        if len(self.values) == 1:
            return value
        if all(isinstance(v, (int, float)) for v in self.values):
            # Ordered numeric choices (capacities, bandwidths) mutate to
            # a value-order neighbor, so selection can hill-climb the
            # axis instead of teleporting across it.
            ordered = sorted(self.values)
            index = ordered.index(value)
            step = 1 if rng.random() < 0.5 else -1
            return ordered[min(max(index + step, 0), len(ordered) - 1)]
        # True categoricals draw any *other* value uniformly.
        others = [v for v in self.values if v != value]
        return others[rng.randrange(len(others))]

    @property
    def cardinality(self) -> Optional[int]:
        return len(self.values)

    def grid(self) -> tuple:
        return self.values


@dataclass(frozen=True)
class IntRange(Axis):
    """An inclusive integer range, linearly or log2-interpolated."""

    name: str
    lo: int
    hi: int
    log2: bool = False

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        object.__setattr__(self, "lo", int(self.lo))
        object.__setattr__(self, "hi", int(self.hi))
        if self.lo > self.hi:
            raise ValueError(f"axis {self.name!r}: lo must be <= hi")
        if self.log2 and self.lo <= 0:
            raise ValueError(f"axis {self.name!r}: log2 needs lo > 0")

    def from_unit(self, u: float) -> int:
        u = min(max(u, 0.0), 1.0)
        if self.log2:
            value = 2.0 ** (
                math.log2(self.lo) + u * (math.log2(self.hi) - math.log2(self.lo))
            )
        else:
            value = self.lo + u * (self.hi - self.lo)
        return min(max(round(value), self.lo), self.hi)

    def to_unit(self, value) -> float:
        if self.hi == self.lo:
            return 0.5
        if self.log2:
            span = math.log2(self.hi) - math.log2(self.lo)
            return (math.log2(value) - math.log2(self.lo)) / span
        return (value - self.lo) / (self.hi - self.lo)

    @property
    def cardinality(self) -> Optional[int]:
        return self.hi - self.lo + 1

    def grid(self) -> tuple:
        return tuple(range(self.lo, self.hi + 1))


@dataclass(frozen=True)
class FloatRange(Axis):
    """A continuous float range, linearly or log-interpolated."""

    name: str
    lo: float
    hi: float
    log: bool = False

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        object.__setattr__(self, "lo", float(self.lo))
        object.__setattr__(self, "hi", float(self.hi))
        if self.lo > self.hi:
            raise ValueError(f"axis {self.name!r}: lo must be <= hi")
        if self.log and self.lo <= 0:
            raise ValueError(f"axis {self.name!r}: log needs lo > 0")

    def from_unit(self, u: float) -> float:
        u = min(max(u, 0.0), 1.0)
        if self.log:
            return math.exp(
                math.log(self.lo) + u * (math.log(self.hi) - math.log(self.lo))
            )
        return self.lo + u * (self.hi - self.lo)

    def to_unit(self, value) -> float:
        if self.hi == self.lo:
            return 0.5
        if self.log:
            span = math.log(self.hi) - math.log(self.lo)
            return (math.log(value) - math.log(self.lo)) / span
        return (value - self.lo) / (self.hi - self.lo)


_AXIS_KINDS = {"choice": Choice, "intrange": IntRange, "floatrange": FloatRange}


def axis_from_dict(data: dict) -> Axis:
    """Rebuild an axis from :meth:`Axis.to_dict` output."""
    data = dict(data)
    kind = data.pop("kind", None)
    if kind not in _AXIS_KINDS:
        raise ValueError(
            f"unknown axis kind {kind!r}; pick from {sorted(_AXIS_KINDS)}"
        )
    cls = _AXIS_KINDS[kind]
    if kind == "choice" and "values" in data:
        data["values"] = tuple(data["values"])
    return cls(**data)


class SearchSpace:
    """Axes plus fixed base fields, sampling valid scenarios.

    Args:
        axes: The searchable dimensions (unique names).
        **base: Fixed :class:`~repro.api.Scenario` fields shared by every
            candidate (e.g. ``workload="matmul"``).  ``arch`` accepts a
            plain override dict; dotted ``arch.<param>`` keys (passed via
            ``**{"arch.core_kge": 80.0}``) pin single parameters.

    A value assignment is a plain ``{axis name: value}`` dict;
    :meth:`scenario` merges it over the base fields (routing dotted
    ``arch.<param>`` axes into the scenario's ``arch`` override dict) and
    builds the strictly-validated scenario.  Combinations the scenario
    rejects (e.g. a tile that does not divide the matrix) surface as
    ``ValueError`` — strategies use :meth:`try_scenario` to
    rejection-sample around them.
    """

    def __init__(self, axes, **base) -> None:
        self.axes: tuple[Axis, ...] = tuple(axes)
        if not self.axes:
            raise ValueError("a search space needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names: {sorted(names)}")
        # Split the base into plain scenario fields and arch overrides
        # (from an `arch` dict and/or dotted keys), so every field name
        # — including every arch parameter — is validated right here,
        # not mid-search inside a strategy.
        self.base: dict = {}
        self._arch_base: dict = {}
        for key, value in base.items():
            if key == "arch":
                if value is None:
                    continue
                if not isinstance(value, dict):
                    raise ValueError("base 'arch' must be a dict of overrides")
                for param in value:
                    _check_arch_param(param)
                self._arch_base.update(value)
                continue
            _check_axis_name(key)
            if key in names:
                raise ValueError(f"{key!r} is both an axis and a base field")
            if key.startswith(_ARCH_PREFIX):
                self._arch_base[key[len(_ARCH_PREFIX):]] = value
            else:
                self.base[key] = value
        for axis_name in names:
            if (
                axis_name.startswith(_ARCH_PREFIX)
                and axis_name[len(_ARCH_PREFIX):] in self._arch_base
            ):
                raise ValueError(
                    f"{axis_name!r} is both an axis and a base arch override"
                )
        self._by_name = {axis.name: axis for axis in self.axes}

    def axis(self, name: str) -> Axis:
        """The axis registered under ``name``.

        Raises:
            ValueError: On an unknown axis name.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(
                f"unknown axis {name!r}; pick from {sorted(self._by_name)}"
            ) from None

    @property
    def names(self) -> tuple[str, ...]:
        """Axis names, declaration order preserved."""
        return tuple(axis.name for axis in self.axes)

    @property
    def cardinality(self) -> Optional[int]:
        """Grid size when every axis is discrete, else ``None``."""
        total = 1
        for axis in self.axes:
            if axis.cardinality is None:
                return None
            total *= axis.cardinality
        return total

    # -- sampling ----------------------------------------------------------
    def sample_values(self, rng) -> dict:
        """One uniform random value assignment (not validity-checked)."""
        return {axis.name: axis.sample(rng) for axis in self.axes}

    def from_unit(self, units: dict) -> dict:
        """The value assignment at unit-hypercube position ``units``."""
        return {
            axis.name: axis.from_unit(units[axis.name]) for axis in self.axes
        }

    def grid(self) -> Iterator[dict]:
        """Every value assignment of a fully-discrete space.

        Raises:
            ValueError: If any axis is continuous.
        """
        def product(index: int, partial: dict) -> Iterator[dict]:
            if index == len(self.axes):
                yield dict(partial)
                return
            axis = self.axes[index]
            for value in axis.grid():
                partial[axis.name] = value
                yield from product(index + 1, partial)

        return product(0, {})

    # -- scenario construction ---------------------------------------------
    def scenario_kwargs(self, values: dict) -> dict:
        """The :class:`Scenario` keyword dict for one value assignment.

        Raises:
            ValueError: On values for axes this space does not declare.
        """
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise ValueError(f"values for unknown axes: {sorted(unknown)}")
        kwargs = dict(self.base)
        arch = dict(self._arch_base)
        for name, value in values.items():
            if name.startswith(_ARCH_PREFIX):
                arch[name[len(_ARCH_PREFIX):]] = value
            else:
                kwargs[name] = value
        if arch:
            kwargs["arch"] = arch
        return kwargs

    def scenario(self, values: dict) -> Scenario:
        """The validated scenario of one value assignment.

        Raises:
            ValueError: If the assignment is invalid (scenario validation).
        """
        return Scenario(**self.scenario_kwargs(values))

    def try_scenario(self, values: dict) -> Optional[Scenario]:
        """Like :meth:`scenario`, but ``None`` on invalid assignments."""
        try:
            return self.scenario(values)
        except ValueError:
            return None

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        base = dict(self.base)
        if self._arch_base:
            base["arch"] = dict(self._arch_base)
        return {
            "axes": [axis.to_dict() for axis in self.axes],
            "base": base,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        """Rebuild a space from :meth:`to_dict` output."""
        axes = [axis_from_dict(entry) for entry in data.get("axes", ())]
        return cls(axes, **data.get("base", {}))


def paper_space(**base) -> SearchSpace:
    """The paper's 56-point design space as a search space.

    Capacity (1/2/4/8 MiB) x flow (2D/Macro-3D) x off-chip bandwidth
    (2..128 B/cycle, the fig. 7-9 sweep).  Extra keyword arguments become
    fixed base fields of every candidate.
    """
    bandwidths = tuple(
        DDR_CHANNEL_BYTES_PER_CYCLE * (2.0 ** e) for e in range(-3, 4)
    )
    return SearchSpace(
        (
            Choice("capacity_mib", CAPACITIES_MIB),
            Choice("flow", ("2D", "3D")),
            Choice("bandwidth", bandwidths),
        ),
        **base,
    )
