"""Content-addressed, on-disk result cache.

Results are keyed by :attr:`repro.sweep.spec.Job.key` — a sha256 over the
job's parameters and the code-model version — and appended to a JSONL
file, one record per line.  Appending keeps writes crash-safe (a torn
final line is skipped on load, everything before it survives) and makes
repeated or resumed sweeps near-free: any job whose key is already
present is served from disk instead of re-evaluated.

Only successful records are cached; failures are recorded in the sweep
outcome (and optionally the :class:`~repro.sweep.store.ResultStore`) but
stay out of the cache so a later run retries them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator


class ResultCache:
    """Append-only JSONL cache of evaluated sweep results.

    Args:
        root: Directory holding the cache (created if missing).

    The cache is loaded eagerly; lookups are in-memory dict hits.  For a
    duplicated key the last record wins, so re-caching after a model-
    version bump simply shadows the stale line.
    """

    FILENAME = "results.jsonl"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / self.FILENAME
        self._records: dict[str, dict] = {}
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write from an interrupted run
                    key = record.get("key")
                    if key:
                        self._records[key] = record

    def get(self, key: str) -> dict | None:
        """The cached record for ``key``, or None."""
        return self._records.get(key)

    def put(self, record: dict) -> None:
        """Persist a record (must carry a ``key``) and index it.

        Raises:
            ValueError: If the record has no key.
        """
        key = record.get("key")
        if not key:
            raise ValueError("cache records must carry a 'key'")
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._records[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)
