"""Content-addressed, on-disk result cache (multi-writer safe).

Results are keyed by :attr:`repro.sweep.spec.Job.key` — a sha256 over the
job's parameters and the code-model version — and appended to a JSONL
file, one record per line.  Appending keeps writes crash-safe (a torn
final line is skipped on load, everything before it survives) and makes
repeated or resumed sweeps near-free: any job whose key is already
present is served from disk instead of re-evaluated.

The cache is safe for **concurrent writers** — several engines, worker
processes, or service instances sharing one cache directory:

* every record reaches the file as a single ``os.write`` on an
  ``O_APPEND`` descriptor, so concurrent appends never interleave
  mid-line;
* appends take an advisory ``flock`` on the JSONL file (where the
  platform provides one) and re-read the tail written by other
  processes first, so a key another writer just cached is not appended
  again — no duplicate records;
* :meth:`refresh` incrementally folds other writers' appends into the
  in-memory index at any time (readers track their byte offset and only
  parse new, complete lines).

Only successful records are cached; failures are recorded in the sweep
outcome (and optionally the :class:`~repro.sweep.store.ResultStore`) but
stay out of the cache so a later run retries them.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterator

try:  # advisory file locks: POSIX only; the cache degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

# Cooperative hooks for the runtime race detector (REPRO_RACE_CHECK=1).
# When disabled each note_* call is a single boolean check; racecheck is
# stdlib-only, so this import keeps the cache path dependency-free.
from ..analysis import racecheck as _racecheck


class _FileLock:
    """Advisory exclusive lock on a path (no-op where flock is missing).

    Used as a context manager around read-modify-write critical sections
    (record appends, counter-sidecar merges).  The lock file is separate
    from the data file so lockers never truncate or touch data, and a
    crashed holder never leaves a stale lock (flock dies with the fd).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fd: int | None = None

    def __enter__(self) -> "_FileLock":
        _racecheck.note_acquire(self.path)
        if fcntl is not None:
            try:
                self._fd = os.open(
                    self.path, os.O_CREAT | os.O_WRONLY, 0o644
                )
                fcntl.flock(self._fd, fcntl.LOCK_EX)
            except OSError:
                if self._fd is not None:
                    os.close(self._fd)
                self._fd = None
        return self

    def __exit__(self, *exc) -> None:
        _racecheck.note_release(self.path)
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
            self._fd = None


def atomic_append(path: Path, line: str) -> None:
    """Append one text line to ``path`` as a single ``O_APPEND`` write.

    POSIX guarantees the kernel serializes ``O_APPEND`` writes, so two
    processes appending concurrently can interleave *lines* but never
    bytes within a line — a reader sees every record whole or not at
    all.
    """
    _racecheck.note_append(path)
    data = line.encode("utf-8")
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


class ResultCache:
    """Append-only JSONL cache of evaluated sweep results.

    Args:
        root: Directory holding the cache (created if missing).

    Lookups are in-memory dict hits against an index loaded once and
    grown incrementally by :meth:`refresh`.  For a duplicated key the
    last record wins, so re-caching after a model-version bump simply
    shadows the stale line.
    """

    FILENAME = "results.jsonl"
    LOCKNAME = "results.lock"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / self.FILENAME
        self._records: dict[str, dict] = {}
        self._offset = 0
        self._mutex = threading.Lock()  # in-process: service threads
        self.refresh()

    def _read_tail(self) -> int:
        """Parse lines appended since the last read; returns new records.

        Only complete (newline-terminated) lines advance the offset: a
        trailing fragment may be another process's append in flight (or
        a torn write from a crash) and is re-examined on the next call.
        """
        if not self.path.exists():
            return 0
        with self.path.open("rb") as fh:
            fh.seek(self._offset)
            data = fh.read()
        if not data:
            return 0
        end = data.rfind(b"\n")
        if end < 0:
            return 0
        added = 0
        for raw in data[: end + 1].splitlines():
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from an interrupted run
            key = record.get("key")
            if key:
                if key not in self._records:
                    added += 1
                self._records[key] = record
        self._offset += end + 1
        return added

    def refresh(self) -> int:
        """Fold records appended by other writers into the index.

        Returns the number of keys that were new to this reader.  Cheap
        when nothing changed (one ``seek`` + empty read), so concurrent
        consumers can call it opportunistically.
        """
        with self._mutex:
            return self._read_tail()

    def get(self, key: str) -> dict | None:
        """The cached record for ``key``, or None."""
        return self._records.get(key)

    def put(self, record: dict) -> None:
        """Persist a record (must carry a ``key``) and index it.

        The append is atomic (single ``O_APPEND`` write) and guarded by
        an advisory lock: the tail is re-read first, so a record another
        process cached in the meantime is simply adopted instead of
        duplicated.  Re-putting a *different* record under an existing
        key still appends (last record wins on load).

        Raises:
            ValueError: If the record has no key.
        """
        key = record.get("key")
        if not key:
            raise ValueError("cache records must carry a 'key'")
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._mutex, _FileLock(self.root / self.LOCKNAME):
            self._read_tail()
            if self._records.get(key) == record:
                return  # another writer (or we) already cached it
            atomic_append(self.path, line)
            self._read_tail()  # consume our own line (and any racer's)
            self._records[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)
