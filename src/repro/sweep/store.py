"""Result records and the append-only sweep result store.

A *record* is the JSON-serializable form of one evaluated (or failed)
job: the job parameters, a status, and — on success — the raw metrics
needed to rebuild a :class:`~repro.core.explorer.DesignPoint`.  Derived
quantities (performance, efficiency, EDP) are stored for inspection but
always recomputed from the raw fields when a point is rebuilt, so the
dataclass properties stay the single source of truth.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..api import scenario as _scenario
from ..core.explorer import DesignPoint
from ..core.metrics import KernelMetrics
from .spec import Job


def point_to_record(job: Job, point: DesignPoint) -> dict:
    """Serialize one successful evaluation."""
    return {
        "key": job.key,
        "job": job.params(),
        # Read at call time (not import time) so the stamped version
        # always matches the CODE_MODEL_VERSION the key was hashed with.
        "model_version": _scenario.CODE_MODEL_VERSION,
        "status": "ok",
        "metrics": {
            "footprint_um2": point.footprint_um2,
            "combined_area_um2": point.combined_area_um2,
            "frequency_mhz": point.frequency_mhz,
            "power_mw": point.power_mw,
            "cycles": point.kernel.cycles,
            "performance": point.performance,
            "energy_efficiency": point.energy_efficiency,
            "edp": point.edp,
        },
    }


def failure_record(job: Job, exc: BaseException) -> dict:
    """Serialize one failed evaluation (error captured, sweep continues)."""
    return {
        "key": job.key,
        "job": job.params(),
        "model_version": _scenario.CODE_MODEL_VERSION,
        "status": "error",
        "error": f"{type(exc).__name__}: {exc}",
    }


def record_to_point(record: dict) -> DesignPoint:
    """Rebuild the design point of a successful record.

    Raises:
        ValueError: If the record is not a successful evaluation.
    """
    if record.get("status") != "ok":
        raise ValueError(f"cannot rebuild a point from status {record.get('status')!r}")
    job = Job.from_params(record["job"])
    config = job.to_config()
    m = record["metrics"]
    kernel = KernelMetrics(
        name=config.name,
        cycles=m["cycles"],
        frequency_mhz=m["frequency_mhz"],
        power_mw=m["power_mw"],
    )
    return DesignPoint(
        config=config,
        footprint_um2=m["footprint_um2"],
        combined_area_um2=m["combined_area_um2"],
        frequency_mhz=m["frequency_mhz"],
        power_mw=m["power_mw"],
        kernel=kernel,
    )


class ResultStore:
    """Append-only JSONL log of sweep results (the sweep's output artifact).

    Unlike the cache — which holds only successful evaluations and exists
    for resumability — the store logs *every* record of every run,
    failures included, so a sweep's full history is auditable.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: dict) -> None:
        """Append one record."""
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    def load(self) -> list[dict]:
        """All records, in append order (empty if the file is missing)."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    def latest(self) -> dict[str, dict]:
        """Deduplicated view: key -> most recent record."""
        return {r["key"]: r for r in self.load() if r.get("key")}
