"""Sharded parallel sweep execution with caching and resumability.

The executor takes a :class:`~repro.sweep.spec.SweepSpec` (or an explicit
job list), skips every job already in the cache, and fans the rest out
over a ``ProcessPoolExecutor`` in deterministic chunks.  Every job is
evaluated under a per-job error trap, so one diverging configuration
cannot kill a thousand-point sweep: it becomes a failure record, stays
out of the cache, and is retried on the next invocation — which is all
"resume" means here.  With ``workers <= 1`` the same code path runs
serially in-process, which is bit-identical to the parallel path (same
:func:`repro.core.explorer.evaluate_point` arithmetic, no accumulation
reordering).
"""

from __future__ import annotations

import math
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..api.registry import FLOWS, WORKLOADS, Registry
from ..core.explorer import DesignPoint
from .cache import ResultCache
from .spec import Job, SweepSpec
from .store import ResultStore, failure_record, point_to_record, record_to_point

#: Chunks handed to each worker per scheduling round; keeping several
#: chunks per worker balances stragglers against IPC overhead.
CHUNKS_PER_WORKER = 4


def evaluate_job(job: Job) -> DesignPoint:
    """Evaluate one job (top-level and picklable: safe to ship to workers).

    Runs the job's canonical scenario through the ``repro.api`` pipeline,
    so the sweep engine shares one evaluation path with every other
    consumer — including workloads registered via ``@register_workload``.
    """
    from ..api.pipeline import Pipeline  # local: keeps worker imports lazy

    return Pipeline().run(job.scenario()).to_design_point()


def _run_one(args: tuple[Callable[[Job], DesignPoint], Job]) -> dict:
    """Worker body: evaluate one job, trapping any exception into a record."""
    evaluate, job = args
    try:
        return point_to_record(job, evaluate(job))
    except Exception as exc:  # captured per job; the sweep continues
        return failure_record(job, exc)


def _picklable_items(registry: Registry) -> list[tuple[str, object]]:
    """(name, plugin) pairs of a registry that survive pickling.

    Module-level plugin callables pickle by reference; lambdas and
    closures do not — those are silently dropped (a job needing one in a
    worker fails per-job with an "unknown workload" failure record).
    """
    items = []
    for name in registry.names():
        obj = registry.get(name)
        try:
            pickle.dumps(obj)
        except Exception:
            continue
        items.append((name, obj))
    return items


def _init_worker(
    flow_items: list[tuple[str, object]],
    workload_items: list[tuple[str, object]],
) -> None:
    """Worker initializer: mirror the parent's plugin registrations.

    Under the ``fork`` start method workers inherit the parent's
    registries and this is a no-op; under ``spawn``/``forkserver`` only
    the built-in (import-seeded) plugins would exist, so anything the
    parent registered at runtime is re-registered here.
    """
    for name, obj in flow_items:
        if name not in FLOWS:  # membership check also seeds the builtins
            FLOWS.register(name, obj)
    for name, obj in workload_items:
        if name not in WORKLOADS:
            WORKLOADS.register(name, obj)


@dataclass(frozen=True)
class SweepStats:
    """Bookkeeping of one executor run."""

    total: int
    cached: int
    evaluated: int
    failed: int
    duration_s: float

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.total} jobs: {self.cached} cached, "
            f"{self.evaluated} evaluated, {self.failed} failed "
            f"in {self.duration_s:.2f}s"
        )


@dataclass
class SweepOutcome:
    """Results of one executor run, in job order."""

    records: list[dict]
    stats: SweepStats
    jobs: list[Job] = field(default_factory=list)

    @property
    def ok_records(self) -> list[dict]:
        """Successful records only."""
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def failures(self) -> list[dict]:
        """Failure records only."""
        return [r for r in self.records if r["status"] != "ok"]

    def points(self) -> list[DesignPoint]:
        """Design points of the successful records, in job order."""
        return [record_to_point(r) for r in self.ok_records]


class SweepExecutor:
    """Cached, sharded, resumable runner of sweep jobs.

    Args:
        cache: Result cache; ``None`` disables caching (everything
            re-evaluates each run).
        workers: Worker processes. ``0`` or ``1`` runs serially
            in-process.
        chunksize: Jobs per worker chunk; defaults to an even split with
            :data:`CHUNKS_PER_WORKER` chunks per worker.
        evaluate: Evaluation function (must be a picklable top-level
            callable when ``workers > 1``).  Injectable for testing and
            for alternative evaluation models.
        store: Optional append-only log receiving every record of every
            run, cache hits included.
        mp_context: Optional multiprocessing context for the worker pool
            (e.g. ``multiprocessing.get_context("spawn")``); defaults to
            the platform default.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: int = 0,
        chunksize: Optional[int] = None,
        evaluate: Callable[[Job], DesignPoint] = evaluate_job,
        store: Optional[ResultStore] = None,
        mp_context=None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if chunksize is not None and chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.cache = cache
        self.workers = workers
        self.chunksize = chunksize
        self.evaluate = evaluate
        self.store = store
        self.mp_context = mp_context

    def run(self, spec: SweepSpec | Iterable[Job]) -> SweepOutcome:
        """Execute a sweep: serve cache hits, evaluate the rest.

        Failed jobs are reported but not cached, so re-running the same
        spec retries exactly the failures (plus any genuinely new jobs).
        """
        jobs = list(spec.jobs() if isinstance(spec, SweepSpec) else spec)
        t0 = time.perf_counter()

        by_key: dict[str, dict] = {}
        pending: list[Job] = []
        pending_keys: set[str] = set()
        for job in jobs:
            cached = self.cache.get(job.key) if self.cache is not None else None
            if cached is not None and cached.get("status") == "ok":
                by_key[job.key] = {**cached, "source": "cache"}
            elif job.key not in pending_keys:
                pending.append(job)
                pending_keys.add(job.key)

        for record in self._evaluate(pending):
            if record["status"] == "ok" and self.cache is not None:
                self.cache.put(record)
            by_key[record["key"]] = {**record, "source": "evaluated"}

        records = [by_key[job.key] for job in jobs]
        if self.store is not None:
            for record in records:
                self.store.append(record)

        evaluated = sum(1 for r in records if r["source"] == "evaluated")
        failed = sum(1 for r in records if r["status"] != "ok")
        stats = SweepStats(
            total=len(jobs),
            cached=len(jobs) - evaluated,
            evaluated=evaluated,
            failed=failed,
            duration_s=time.perf_counter() - t0,
        )
        return SweepOutcome(records=records, stats=stats, jobs=jobs)

    def _evaluate(self, jobs: list[Job]) -> list[dict]:
        """Evaluate jobs serially or across the process pool."""
        if not jobs:
            return []
        work = [(self.evaluate, job) for job in jobs]
        if self.workers <= 1:
            return [_run_one(item) for item in work]
        workers = min(self.workers, len(jobs))
        chunksize = self.chunksize or max(
            1, math.ceil(len(jobs) / (workers * CHUNKS_PER_WORKER))
        )
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self.mp_context,
            initializer=_init_worker,
            initargs=(_picklable_items(FLOWS), _picklable_items(WORKLOADS)),
        ) as pool:
            return list(pool.map(_run_one, work, chunksize=chunksize))
