"""Sweep execution: a compatibility shim over :mod:`repro.engine`.

Historically this module owned its own ``ProcessPoolExecutor``, worker
initializer, and cache wiring.  That machinery now lives in the shared
:class:`~repro.engine.Engine` (pluggable backends, two-tier cache,
streamed results), and :class:`SweepExecutor` is a thin adapter kept for
its stable surface: same constructor, same :class:`SweepOutcome` with
records in job order, same cache keys, same failure-record semantics —
a failed job is reported but never cached, so re-running the same spec
retries exactly the failures.  ``workers <= 1`` still means the serial
in-process path, bit-identical to the parallel one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from ..core.explorer import DesignPoint
from .cache import ResultCache
from .spec import Job, SweepSpec
from .store import ResultStore, record_to_point


def evaluate_job(job: Job, stage_root: Optional[str] = None) -> DesignPoint:
    """Evaluate one job (top-level and picklable: safe to ship to workers).

    Runs the job's canonical scenario through the ``repro.api`` pipeline,
    so the sweep engine shares one evaluation path with every other
    consumer — including workloads registered via ``@register_workload``.
    ``stage_root`` keys the per-process stage memo (see
    :func:`repro.engine.core.evaluate_job`).
    """
    from ..engine.core import evaluate_job as _evaluate

    return _evaluate(job, stage_root=stage_root)


evaluate_job.supports_stage_root = True  # type: ignore[attr-defined]


@dataclass(frozen=True)
class SweepStats:
    """Bookkeeping of one executor run."""

    total: int
    cached: int
    evaluated: int
    failed: int
    duration_s: float

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.total} jobs: {self.cached} cached, "
            f"{self.evaluated} evaluated, {self.failed} failed "
            f"in {self.duration_s:.2f}s"
        )


@dataclass
class SweepOutcome:
    """Results of one executor run, in job order."""

    records: list[dict]
    stats: SweepStats
    jobs: list[Job] = field(default_factory=list)

    @property
    def ok_records(self) -> list[dict]:
        """Successful records only."""
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def failures(self) -> list[dict]:
        """Failure records only."""
        return [r for r in self.records if r["status"] != "ok"]

    def points(self) -> list[DesignPoint]:
        """Design points of the successful records, in job order."""
        return [record_to_point(r) for r in self.ok_records]


class SweepExecutor:
    """Cached, sharded, resumable runner of sweep jobs.

    A stable façade over :class:`repro.engine.Engine`: all parallelism
    lives in the engine's execution backends, all caching in its
    two-tier cache.

    Args:
        cache: Result cache; ``None`` disables persistent caching
            (everything re-evaluates on a fresh executor).
        workers: Worker count. ``0`` or ``1`` runs serially in-process
            (unless an explicit ``backend`` says otherwise).
        chunksize: Jobs per worker chunk for chunking backends; defaults
            to an even split with
            :data:`~repro.engine.backends.CHUNKS_PER_WORKER` chunks per
            worker.
        evaluate: Evaluation function (must be a picklable top-level
            callable for process backends).  Injectable for testing and
            for alternative evaluation models.
        store: Optional append-only log receiving every record of every
            run, cache hits included.
        mp_context: Optional multiprocessing context for process
            backends (e.g. ``multiprocessing.get_context("spawn")``);
            defaults to the platform default.
        backend: Registered execution-backend name or instance; ``None``
            keeps the historical behavior (``process`` when
            ``workers > 1``, ``serial`` otherwise).
        on_result: Optional progress callback,
            ``on_result(done, total, record)`` per completed job.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: int = 0,
        chunksize: Optional[int] = None,
        evaluate: Callable[[Job], DesignPoint] = evaluate_job,
        store: Optional[ResultStore] = None,
        mp_context=None,
        backend: Union[str, object, None] = None,
        on_result: Optional[Callable[[int, int, dict], None]] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if chunksize is not None and chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.cache = cache
        self.workers = workers
        self.chunksize = chunksize
        self.evaluate = evaluate
        self.store = store
        self.mp_context = mp_context
        self.backend = backend
        self.on_result = on_result

    def _make_engine(self):
        """A fresh engine from the *current* attribute values.

        Built per :meth:`run`, not in ``__init__``, so legacy callers
        that mutate the executor after construction (``ex.workers = 8``,
        ``ex.evaluate = fake``) keep taking effect, exactly as they did
        when this module owned the pool.  The store also stays out of
        the engine: the shim preserves the legacy append contract (job
        order, duplicates included) rather than completion order.
        """
        from ..engine.core import Engine

        return Engine(
            backend=self.backend,
            workers=self.workers,
            cache=self.cache,
            evaluate=self.evaluate,
            mp_context=self.mp_context,
            chunksize=self.chunksize,
            on_result=self.on_result,
        )

    def run(self, spec: SweepSpec | Iterable[Job]) -> SweepOutcome:
        """Execute a sweep: serve cache hits, evaluate the rest.

        Failed jobs are reported but not cached, so re-running the same
        spec retries exactly the failures (plus any genuinely new jobs).
        """
        jobs = list(spec.jobs() if isinstance(spec, SweepSpec) else spec)
        t0 = time.perf_counter()

        by_key = {
            job.key: record
            for job, record in self._make_engine().run_many(jobs)
        }
        records = [by_key[job.key] for job in jobs]
        if self.store is not None:
            for record in records:
                self.store.append(record)

        evaluated = sum(1 for r in records if r["source"] == "evaluated")
        failed = sum(1 for r in records if r["status"] != "ok")
        stats = SweepStats(
            total=len(jobs),
            cached=len(jobs) - evaluated,
            evaluated=evaluated,
            failed=failed,
            duration_s=time.perf_counter() - t0,
        )
        return SweepOutcome(records=records, stats=stats, jobs=jobs)
