"""Ranking and summary reporting over sweep results.

Builds on the same :data:`repro.core.explorer.OBJECTIVES` the serial
explorer uses, so a sweep and an `Explorer` rank identically; labels
carry the off-chip bandwidth because — unlike the eight-point paper
study — a sweep usually spans several bandwidths.
"""

from __future__ import annotations

from typing import Iterable

from ..core.explorer import OBJECTIVES, DesignPoint, pareto_front
from .spec import Job
from .store import record_to_point


def labeled_points(records: Iterable[dict]) -> list[tuple[str, DesignPoint]]:
    """(label, point) pairs for the successful records, input order kept."""
    out = []
    for record in records:
        if record.get("status") == "ok":
            label = Job.from_params(record["job"]).label
            out.append((label, record_to_point(record)))
    return out


def _rank_pairs(
    pairs: list[tuple[str, DesignPoint]], objective: str
) -> list[tuple[str, DesignPoint]]:
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; pick from {sorted(OBJECTIVES)}"
        )
    key, higher_better = OBJECTIVES[objective]
    return sorted(pairs, key=lambda lp: key(lp[1]), reverse=higher_better)


def rank(
    records: Iterable[dict], objective: str
) -> list[tuple[str, DesignPoint]]:
    """Order successful records by an objective (best first).

    Raises:
        ValueError: On an unknown objective name.
    """
    return _rank_pairs(labeled_points(records), objective)


def _pareto_pairs(
    pairs: list[tuple[str, DesignPoint]]
) -> list[tuple[str, DesignPoint]]:
    labels = {id(point): label for label, point in pairs}
    front = pareto_front([point for _, point in pairs])
    return [(labels[id(point)], point) for point in front]


def pareto_pairs(records: Iterable[dict]) -> list[tuple[str, DesignPoint]]:
    """(label, point) pairs of the performance/efficiency Pareto front."""
    return _pareto_pairs(labeled_points(records))


def format_table(pairs: list[tuple[str, DesignPoint]]) -> str:
    """Aligned text table of labeled design points."""
    if not pairs:
        return "(no results)"
    lines = [
        f"{'point':>28} {'freq MHz':>9} {'power mW':>9} {'fp mm2':>8} "
        f"{'runtime s':>10} {'kernels/J':>10} {'EDP Js':>10}"
    ]
    for label, p in pairs:
        lines.append(
            f"{label:>28} {p.frequency_mhz:9.0f} {p.power_mw:9.0f} "
            f"{p.footprint_um2 / 1e6:8.2f} {p.kernel.runtime_s:10.3e} "
            f"{p.energy_efficiency:10.3e} {p.edp:10.3e}"
        )
    return "\n".join(lines)


def summarize(records: Iterable[dict], top: int = 3) -> str:
    """Full sweep report: winners per objective, Pareto front, failures."""
    records = list(records)
    pairs = labeled_points(records)
    lines = []
    if not pairs:
        lines.append("(no successful results)")
    for objective in OBJECTIVES:
        ranked = _rank_pairs(pairs, objective)
        if not ranked:
            continue
        lines.append(f"best {objective}:")
        key, _ = OBJECTIVES[objective]
        for label, point in ranked[:top]:
            lines.append(f"  {label:>28}  {key(point):.4e}")
    if pairs:
        lines.append("performance / energy-efficiency Pareto front:")
        for label, p in _pareto_pairs(pairs):
            lines.append(
                f"  {label:>28}  perf {p.performance:9.3e}/s  "
                f"eff {p.energy_efficiency:9.3e}/J"
            )
    failures = [r for r in records if r.get("status") != "ok"]
    if failures:
        lines.append(f"failures ({len(failures)}):")
        for record in failures:
            label = Job.from_params(record["job"]).label
            lines.append(f"  {label:>28}  {record.get('error', '?')}")
    return "\n".join(lines)
