"""Declarative sweep specifications and content-addressed jobs.

A :class:`SweepSpec` names the axes of a design-space sweep — SPM
capacity, implementation flow, off-chip bandwidth, matrix dimension, core
count, phase-model calibration knobs, and workload — and cross-products
them into :class:`Job` records.  A job is a plain, hashable, picklable
bag of primitives that serializes to and from a
:class:`repro.api.Scenario`; its :attr:`Job.key` content address is the
sha256 of the canonical scenario dict plus the code-model version, which
is stable across processes and sessions — that is what makes the result
cache and resumability work.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, Optional

from ..api.scenario import CODE_MODEL_VERSION, Scenario
from ..core.config import CAPACITIES_MIB, PAPER_MATRIX_DIM, Flow, MemPoolConfig
from ..kernels.phases import DEFAULT_PHASE_PARAMS, PhaseModelParams
from ..kernels.tiling import TilingPlan
from ..simulator.memsys import DDR_CHANNEL_BYTES_PER_CYCLE

__all__ = ["CODE_MODEL_VERSION", "FLOW_VALUES", "Job", "SweepSpec"]

FLOW_VALUES = tuple(f.value for f in Flow)


@dataclass(frozen=True)
class Job:
    """One fully-resolved design point to evaluate.

    All fields are JSON-serializable primitives so the job can cross
    process boundaries and hash stably.  Validation and all derived
    objects (configuration, tiling, phase parameters, cache key) are
    delegated to the canonical :class:`~repro.api.Scenario` the job
    serializes into.
    """

    capacity_mib: int
    flow: str
    bandwidth: float = DDR_CHANNEL_BYTES_PER_CYCLE
    matrix_dim: int = PAPER_MATRIX_DIM
    num_cores: int = DEFAULT_PHASE_PARAMS.num_cores
    cpi_mac: float = DEFAULT_PHASE_PARAMS.cpi_mac
    phase_overhead_cycles: float = DEFAULT_PHASE_PARAMS.phase_overhead_cycles
    kernel: str = "matmul"
    tile_size: Optional[int] = None
    word_bytes: int = 4
    target_frequency_mhz: float = 1000.0
    arch: Optional[dict] = None

    def __post_init__(self) -> None:
        # Normalize numeric types so 16 and 16.0 produce the same key.
        object.__setattr__(self, "capacity_mib", int(self.capacity_mib))
        object.__setattr__(self, "flow", str(self.flow))
        object.__setattr__(self, "bandwidth", float(self.bandwidth))
        object.__setattr__(self, "matrix_dim", int(self.matrix_dim))
        object.__setattr__(self, "num_cores", int(self.num_cores))
        object.__setattr__(self, "cpi_mac", float(self.cpi_mac))
        object.__setattr__(
            self, "phase_overhead_cycles", float(self.phase_overhead_cycles)
        )
        object.__setattr__(self, "kernel", str(self.kernel))
        object.__setattr__(self, "word_bytes", int(self.word_bytes))
        object.__setattr__(
            self, "target_frequency_mhz", float(self.target_frequency_mhz)
        )
        # Build the canonical scenario once: strict validation (flow and
        # workload registries, bounds), flow-name canonicalization, and a
        # memoized cache key.  The memo survives pickling, so a worker
        # process can emit failure records for a job it cannot itself
        # validate (e.g. a workload registered only in the parent).
        # Scenario-canonicalized fields (flow case, explicit-but-default
        # tiles, non-default arch overrides) are copied back, so equal
        # evaluations are equal jobs.
        scenario = self._build_scenario()
        object.__setattr__(self, "flow", scenario.flow)
        object.__setattr__(self, "tile_size", scenario.tile_size)
        object.__setattr__(self, "arch", scenario.arch)
        object.__setattr__(self, "_scenario", scenario)
        object.__setattr__(self, "_key", scenario.cache_key)

    def _build_scenario(self, objective: str = "edp") -> Scenario:
        return Scenario(
            capacity_mib=self.capacity_mib,
            flow=self.flow,
            bandwidth=self.bandwidth,
            matrix_dim=self.matrix_dim,
            num_cores=self.num_cores,
            cpi_mac=self.cpi_mac,
            phase_overhead_cycles=self.phase_overhead_cycles,
            workload=self.kernel,
            objective=objective,
            tile_size=self.tile_size,
            word_bytes=self.word_bytes,
            target_frequency_mhz=self.target_frequency_mhz,
            arch=self.arch,
        )

    def scenario(self, objective: str = "edp") -> Scenario:
        """The canonical :class:`~repro.api.Scenario` of this job."""
        cached = self.__dict__.get("_scenario")
        if cached is not None and cached.objective == objective:
            return cached
        return self._build_scenario(objective)

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "Job":
        """The job evaluating ``scenario`` (inverse of :meth:`scenario`)."""
        return cls(
            capacity_mib=scenario.capacity_mib,
            flow=scenario.flow,
            bandwidth=scenario.bandwidth,
            matrix_dim=scenario.matrix_dim,
            num_cores=scenario.num_cores,
            cpi_mac=scenario.cpi_mac,
            phase_overhead_cycles=scenario.phase_overhead_cycles,
            kernel=scenario.workload,
            tile_size=scenario.tile_size,
            word_bytes=scenario.word_bytes,
            target_frequency_mhz=scenario.target_frequency_mhz,
            arch=scenario.arch,
        )

    def params(self) -> dict[str, object]:
        """The job as a plain dict (field order preserved)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def key(self) -> str:
        """Content address: sha256 of the canonical scenario dict plus
        :data:`CODE_MODEL_VERSION` (memoized at construction)."""
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        key = self.scenario().cache_key
        object.__setattr__(self, "_key", key)
        return key

    @property
    def label(self) -> str:
        """Human-readable point label, e.g. ``MemPool-3D-4MiB@16B/c``."""
        return f"MemPool-{self.flow}-{self.capacity_mib}MiB@{self.bandwidth:g}B/c"

    def to_config(self) -> MemPoolConfig:
        """The architectural configuration this job evaluates."""
        return self.scenario().to_config()

    def tiling(self) -> TilingPlan:
        """Tiling plan: the paper's for paper points, fitted otherwise."""
        return self.scenario().tiling()

    def phase_params(self) -> PhaseModelParams:
        """Phase-model calibration for this job."""
        return self.scenario().phase_params()

    @classmethod
    def from_params(cls, params: dict[str, object]) -> "Job":
        """Rebuild a job from :meth:`params` output (e.g. a store record)."""
        return cls(**params)


@dataclass(frozen=True)
class SweepSpec:
    """Cross-product specification of a design-space sweep.

    Every axis is a non-empty tuple; :meth:`jobs` yields the full cross
    product in a deterministic order (capacity outermost, kernel
    innermost), so job order — and therefore shard assignment — is
    reproducible.  The ``kernels`` axis accepts any name in the
    ``repro.api`` workload registry, so a workload registered with
    ``@register_workload`` sweeps without core changes.
    """

    capacities_mib: tuple[int, ...] = CAPACITIES_MIB
    flows: tuple[str, ...] = FLOW_VALUES
    bandwidths: tuple[float, ...] = (DDR_CHANNEL_BYTES_PER_CYCLE,)
    matrix_dims: tuple[int, ...] = (PAPER_MATRIX_DIM,)
    core_counts: tuple[int, ...] = (DEFAULT_PHASE_PARAMS.num_cores,)
    cpi_macs: tuple[float, ...] = (DEFAULT_PHASE_PARAMS.cpi_mac,)
    phase_overheads: tuple[float, ...] = (DEFAULT_PHASE_PARAMS.phase_overhead_cycles,)
    kernels: tuple[str, ...] = ("matmul",)

    def __post_init__(self) -> None:
        for f in fields(self):
            values = tuple(getattr(self, f.name))
            if not values:
                raise ValueError(f"axis {f.name} must be non-empty")
            object.__setattr__(self, f.name, values)

    def __len__(self) -> int:
        n = 1
        for f in fields(self):
            n *= len(getattr(self, f.name))
        return n

    def jobs(self) -> Iterator[Job]:
        """Yield every job of the cross product, deterministically ordered."""
        for capacity in self.capacities_mib:
            for flow in self.flows:
                for bandwidth in self.bandwidths:
                    for matrix_dim in self.matrix_dims:
                        for num_cores in self.core_counts:
                            for cpi_mac in self.cpi_macs:
                                for overhead in self.phase_overheads:
                                    for kernel in self.kernels:
                                        yield Job(
                                            capacity_mib=capacity,
                                            flow=flow,
                                            bandwidth=bandwidth,
                                            matrix_dim=matrix_dim,
                                            num_cores=num_cores,
                                            cpi_mac=cpi_mac,
                                            phase_overhead_cycles=overhead,
                                            kernel=kernel,
                                        )

    def to_dict(self) -> dict[str, list]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {f.name: list(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, list]) -> "SweepSpec":
        """Build a spec from :meth:`to_dict` output.

        Raises:
            ValueError: On unknown axis names.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep axes: {sorted(unknown)}")
        return cls(**{name: tuple(values) for name, values in data.items()})
