"""Parallel, cached, resumable design-space sweep engine.

The paper's thesis — that SPM capacity and integration flow must be
co-explored — only bites when the design space gets big.  This package
scales the serial :class:`repro.core.explorer.Explorer` loop into a sweep
engine:

* :mod:`~repro.sweep.spec` — declarative :class:`SweepSpec` axes
  cross-producted into hashable, picklable :class:`Job` records;
* :mod:`~repro.sweep.cache` — content-addressed on-disk
  :class:`ResultCache` (job parameters + code-model version), so repeated
  sweeps are near-free;
* :mod:`~repro.sweep.executor` — :class:`SweepExecutor`, a stable
  compatibility shim over the shared :class:`repro.engine.Engine`
  (pluggable serial/thread/process backends, two-tier cache, per-job
  error capture, resume-by-retry of failures);
* :mod:`~repro.sweep.store` — append-only :class:`ResultStore` audit log
  plus record/point serialization;
* :mod:`~repro.sweep.report` — ranking and summaries over the same
  objectives the serial explorer uses.

Quick start::

    from repro.sweep import ResultCache, SweepExecutor, SweepSpec

    spec = SweepSpec(bandwidths=(4.0, 16.0, 64.0))
    outcome = SweepExecutor(cache=ResultCache(".sweep-cache"), workers=4).run(spec)
    print(outcome.stats.summary())
"""

from .cache import ResultCache
from .executor import SweepExecutor, SweepOutcome, SweepStats, evaluate_job
from .report import format_table, labeled_points, pareto_pairs, rank, summarize
from .spec import CODE_MODEL_VERSION, Job, SweepSpec
from .store import ResultStore, failure_record, point_to_record, record_to_point

__all__ = [
    "CODE_MODEL_VERSION",
    "Job",
    "ResultCache",
    "ResultStore",
    "SweepExecutor",
    "SweepOutcome",
    "SweepSpec",
    "SweepStats",
    "evaluate_job",
    "failure_record",
    "format_table",
    "labeled_points",
    "pareto_pairs",
    "point_to_record",
    "rank",
    "record_to_point",
    "summarize",
]
