"""Serving tier-0 predictions: mode plumbing, counters, fallback.

``Pipeline(engine="analytic")`` arms :func:`analytic_engine` for the
dynamic extent of a run; ``set_default_sim_engine("analytic")`` (or
``REPRO_SIM_ENGINE=analytic``) arms the whole process, workers
included.  Either way the pipeline's cycles stage consults
:func:`analytic_mode_active` and, when a calibrated predictor covers
the scenario's workload, serves :func:`predict_cycles` instead of
simulating — falling back to the workload plugin (the fast engine) when
no predictor exists, the calibration cannot be fitted, or the fitted
error bound is violated.

Every outcome is counted twice: process-wide observability counters
(``repro_analytic_*`` in ``/v1/metrics``) and per-cache-root deltas
flushed batch-wise into the stats sidecar by
:func:`flush_analytic_stats` (the same race-safe merge as the batch
counters, never on the per-prediction hot path).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Optional

from ..obs.metrics import counter
from .calibrate import ensure_calibrated
from .store import calibration_store_for

#: True inside a ``Pipeline(engine="analytic")`` run.
_FORCE_TIER: ContextVar[bool] = ContextVar("repro_analytic_tier", default=False)

_PREDICTIONS = counter(
    "repro_analytic_predictions_total",
    "Cycle counts served from calibrated tier-0 predictors",
)
_CALIBRATIONS = counter(
    "repro_analytic_calibrations_total",
    "Tier-0 overhead-factor fits run against the fast engine",
)
_FALLBACKS = counter(
    "repro_analytic_fallbacks_total",
    "Analytic-tier requests that fell back to the fast engine",
)

#: Per-cache-root counter deltas awaiting a sidecar merge.
_PENDING: dict[str, dict[str, int]] = {}
_PENDING_LOCK = threading.Lock()
_FLUSH_REGISTERED: set[str] = set()


@contextmanager
def analytic_engine():
    """Force the analytic tier for the dynamic extent of a block."""
    token = _FORCE_TIER.set(True)
    try:
        yield
    finally:
        _FORCE_TIER.reset(token)


def analytic_forced() -> bool:
    """Whether an :func:`analytic_engine` block is active."""
    return _FORCE_TIER.get()


def analytic_mode_active(workload: str) -> bool:
    """Whether tier-0 should serve ``workload`` right now.

    The mode check runs first so the default path never touches (and
    never seeds) the predictor registry.
    """
    if not _FORCE_TIER.get():
        from ..simulator.engine import default_sim_engine

        if default_sim_engine() != "analytic":
            return False
    from ..api.registry import PREDICTORS

    return workload in PREDICTORS


def _count(root: Optional[str], field: str, obs_counter) -> None:
    obs_counter.inc()
    if root is None:
        return
    with _PENDING_LOCK:
        pending = _PENDING.setdefault(
            root,
            {
                "analytic_predictions": 0,
                "analytic_calibrations": 0,
                "analytic_fallbacks": 0,
            },
        )
        pending[field] += 1
        if root not in _FLUSH_REGISTERED:
            _FLUSH_REGISTERED.add(root)
            import atexit
            from multiprocessing import util as mp_util

            atexit.register(flush_analytic_stats, root)
            mp_util.Finalize(
                None, flush_analytic_stats, args=(root,), exitpriority=10
            )


def flush_analytic_stats(root: str | None = None) -> None:
    """Merge pending analytic counter deltas into sidecar stats files.

    Called by ``Engine.run_many`` after each batch (for its own cache
    root) and at process exit; with ``root=None`` every pending root is
    flushed.  Zero-delta roots never touch the filesystem.
    """
    from ..engine.cache import record_analytic_stats

    with _PENDING_LOCK:
        roots = [root] if root is not None else list(_PENDING)
        deltas = [(r, _PENDING.pop(r)) for r in roots if r in _PENDING]
    for target, delta in deltas:
        record_analytic_stats(
            target,
            predictions=delta["analytic_predictions"],
            calibrations=delta["analytic_calibrations"],
            fallbacks=delta["analytic_fallbacks"],
        )


def predict_cycles(scenario, root: str | None = None) -> Optional[float]:
    """One scenario's tier-0 cycle prediction, or ``None`` to fall back.

    Looks up (fitting on miss) the calibration for the scenario's
    (workload, arch-class); refuses calibrations whose achieved probe
    error exceeds the predictor's declared bound.  ``root`` names the
    cache directory whose calibration store and stats sidecar to use
    (``None``: the process-wide in-memory store, obs counters only).

    Returns:
        Predicted cycles (``>= 1``), or ``None`` when the caller must
        evaluate through the workload plugin instead.
    """
    from ..api.registry import PREDICTORS

    workload = scenario.workload
    if workload not in PREDICTORS:
        _count(root, "analytic_fallbacks", _FALLBACKS)
        return None
    store = calibration_store_for(root)
    try:
        record, fitted = ensure_calibrated(workload, scenario, store)
    except (ValueError, RuntimeError):
        _count(root, "analytic_fallbacks", _FALLBACKS)
        return None
    if fitted:
        _count(root, "analytic_calibrations", _CALIBRATIONS)
    if not record.within_bound:
        _count(root, "analytic_fallbacks", _FALLBACKS)
        return None
    terms = PREDICTORS.get(workload)(scenario)
    prediction = (
        terms.setup
        + record.setup_cycles
        + record.factor * terms.work
        + record.contention_factor * terms.contention
    )
    _count(root, "analytic_predictions", _PREDICTIONS)
    return max(float(prediction), 1.0)
