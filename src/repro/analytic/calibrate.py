"""Fitting tier-0 overhead factors against FastEngine runs.

The calibration protocol for a (workload, arch-class):

1. Build one scenario per declared ``calibration_dim`` that differs
   from the requesting scenario only in problem size (``matrix_dim``,
   tile re-derived), so the arch-class — cores, capacity, word size,
   arch overrides — is held fixed.
2. Measure each with the workload's tier-1 evaluation (the registered
   plugin, which for the simulated kernels *is* FastEngine; blocked
   matmul runs :func:`repro.kernels.matmul.run_matmul` on FastEngine
   because its plugin is the paper's phase model, not a simulation).
3. Least-squares fit ``measured = setup_cal + factor x work
   (+ contention_factor x contention)`` over the calibration dims —
   ``work`` and ``contention`` come from the predictor's
   :class:`~repro.analytic.models.AnalyticTerms`.
4. Re-measure at the held-out ``probe_dims`` and record every relative
   residual; the max probe residual is the **achieved error** enforced
   against the predictor's declared bound at prediction time.

The fit deliberately regresses the *calibrated portion* only: each
measurement has the predictor's analytic ``setup`` term subtracted
first (zero for the built-in simulated kernels; for matmul the
FastEngine run contains no DMA/overhead/writeback phases by
construction), so the fitted constant absorbs prologue and barrier cost
while the exact phase arithmetic stays analytic.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..api.registry import PREDICTORS, WORKLOADS
from .store import (
    CalibrationRecord,
    CalibrationStore,
    arch_class_of,
    calibration_key,
)


def _measure_plugin(workload: str, scenario, terms) -> float:
    """Tier-1 measurement of the calibrated portion via the plugin.

    The plugin measures the whole kernel; the predictor's analytic
    ``setup`` (zero for the built-in simulated kernels) is subtracted so
    only the fitted portion is regressed.
    """
    return float(WORKLOADS.get(workload)(scenario)) - terms.setup


def _measure_matmul(workload: str, scenario, terms) -> float:
    """Blocked matmul on FastEngine (the plugin is the phase model).

    The simulated kernel runs on SPM-resident data — no DMA, phase
    overhead, or writeback — so it *is* the calibrated compute portion;
    the predictor's phase-model ``setup`` is excluded by construction.
    """
    from ..kernels.matmul import run_matmul

    n = scenario.matrix_dim
    cores = max(1, min(scenario.num_cores, n // 2))
    run = run_matmul(scenario.to_config(), n, cores, blocked=True)
    if not run.correct:
        raise RuntimeError(
            f"matmul calibration run failed verification at dim {n}"
        )
    return float(run.cycles)


#: Workload name -> measurement override.  Workloads not listed here
#: calibrate against their registered plugin, so a custom
#: ``@register_workload`` + ``@register_predictor`` pair gets fitted
#: for free.
_MEASURERS: dict[str, Callable[[str, object, object], float]] = {
    "matmul": _measure_matmul,
}


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting (tiny dense systems)."""
    n = len(rhs)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            raise ValueError("singular calibration system")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for row in range(n):
            if row == col:
                continue
            ratio = aug[row][col] / aug[col][col]
            for k in range(col, n + 1):
                aug[row][k] -= ratio * aug[col][k]
    return [aug[i][n] / aug[i][i] for i in range(n)]


def _least_squares(
    rows: list[tuple[float, ...]], targets: list[float]
) -> list[float]:
    """Solve ``min ||A c - y||`` via the normal equations."""
    cols = len(rows[0])
    ata = [
        [sum(r[i] * r[j] for r in rows) for j in range(cols)]
        for i in range(cols)
    ]
    aty = [sum(r[i] * y for r, y in zip(rows, targets)) for i in range(cols)]
    return _solve(ata, aty)


def calibrate(
    workload: str,
    scenario,
    measure: Optional[Callable[[str, object, object], float]] = None,
) -> CalibrationRecord:
    """Fit one (workload, arch-class) calibration from scratch.

    Args:
        workload: Registered predictor name.
        scenario: Any scenario of the target arch-class (its problem
            size is ignored; the declared calibration dims are used).
        measure: Measurement override (tests); defaults to the
            workload's protocol measurer.

    Returns:
        The fitted record, residual summary included.  The record is
        *not* persisted here — see :func:`ensure_calibrated`.

    Raises:
        ValueError: If the predictor declares too few calibration dims
            for its regressor count.
    """
    from ..api.scenario import CODE_MODEL_VERSION

    predictor = PREDICTORS.get(workload)
    cal_dims = tuple(getattr(predictor, "calibration_dims", ()) or ())
    probe_dims = tuple(getattr(predictor, "probe_dims", ()) or ()) or cal_dims
    error_bound = float(getattr(predictor, "error_bound", 0.05))
    if measure is None:
        measure = _MEASURERS.get(workload, _measure_plugin)

    def sample(dim: int) -> tuple[object, float, float, float]:
        cal_scenario = scenario.replace(
            workload=workload, matrix_dim=dim, tile_size=None
        )
        terms = predictor(cal_scenario)
        measured = measure(workload, cal_scenario, terms)
        return terms, terms.work, terms.contention, measured

    points = [sample(dim) for dim in cal_dims]
    with_contention = any(z != 0.0 for _, _, z, _ in points)
    params = 3 if with_contention else 2
    if len(points) < params:
        raise ValueError(
            f"predictor {workload!r} declares {len(cal_dims)} calibration "
            f"dims but its fit needs at least {params}"
        )
    rows = [
        (1.0, x, z) if with_contention else (1.0, x)
        for _, x, z, _ in points
    ]
    targets = [y for _, _, _, y in points]
    coefficients = _least_squares(rows, targets)
    setup_cal, factor = coefficients[0], coefficients[1]
    contention_factor = coefficients[2] if with_contention else 0.0

    def predicted(x: float, z: float) -> float:
        return setup_cal + factor * x + contention_factor * z

    residuals: dict[str, float] = {}
    for dim, (_, x, z, y) in zip(cal_dims, points):
        residuals[str(dim)] = (predicted(x, z) - y) / y if y else 0.0
    probe_errors: list[float] = []
    for dim in probe_dims:
        _, x, z, y = sample(dim)
        err = (predicted(x, z) - y) / y if y else 0.0
        residuals[str(dim)] = err
        probe_errors.append(abs(err))

    arch_class = arch_class_of(scenario)
    return CalibrationRecord(
        key=calibration_key(
            workload, arch_class, cal_dims, probe_dims, CODE_MODEL_VERSION
        ),
        workload=workload,
        arch_class=arch_class,
        model_version=CODE_MODEL_VERSION,
        calibration_dims=cal_dims,
        probe_dims=probe_dims,
        setup_cycles=float(setup_cal),
        factor=float(factor),
        contention_factor=float(contention_factor),
        error_bound=error_bound,
        achieved_error=max(probe_errors) if probe_errors else 0.0,
        residuals=residuals,
    )


def ensure_calibrated(
    workload: str, scenario, store: CalibrationStore
) -> tuple[CalibrationRecord, bool]:
    """The live calibration for a scenario's arch-class, fitting on miss.

    Returns:
        ``(record, fitted)`` — ``fitted`` is True when this call ran the
        fit (a fresh or stale-replacing calibration), False on a store
        hit.
    """
    from ..api.scenario import CODE_MODEL_VERSION

    predictor = PREDICTORS.get(workload)
    key = calibration_key(
        workload,
        arch_class_of(scenario),
        tuple(getattr(predictor, "calibration_dims", ()) or ()),
        tuple(getattr(predictor, "probe_dims", ()) or ())
        or tuple(getattr(predictor, "calibration_dims", ()) or ()),
        CODE_MODEL_VERSION,
    )
    record = store.get(key)
    if record is not None:
        return record, False
    record = calibrate(workload, scenario)
    store.put(record)
    return record, True
