"""Closed-form tier-0 predictors for the built-in kernel zoo.

Each predictor maps a :class:`~repro.api.scenario.Scenario` to
:class:`AnalyticTerms`: the phase decomposition

    ``T = setup + inner_iters x cycles_per_iter x overhead_factor``

where ``setup`` and the iteration terms derive purely from the
scenario's tiling/arch parameters and ``overhead_factor`` is fitted per
(workload, arch-class) against FastEngine runs by
:mod:`repro.analytic.calibrate`.  The ``inner_iters`` term counts the
*busiest core's* loop trips (work is interleaved across cores, so the
critical path is the core with ``ceil(work / cores)`` trips), and
``cycles_per_iter`` is the instruction count of one trip read straight
off the SPMD program builders in :mod:`repro.kernels.workloads` —
the fitted factor is therefore an effective CPI.

This module is the REP009 contract surface: predictors must stay pure
tier-0 — no ``repro.simulator`` imports, no nondeterminism, and only
``Scenario.cycles_dict`` fields (never ``flow``, frequency, or the
objective, which would fracture the calibration arch-class).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..api.registry import register_predictor


@dataclass(frozen=True)
class AnalyticTerms:
    """One scenario's closed-form phase decomposition.

    Attributes:
        setup: Cycles outside the calibrated inner loop that the model
            derives exactly (e.g. the matmul phase model's memory,
            overhead, and writeback phases).  The calibration adds a
            fitted constant on top, absorbing prologue and barrier cost.
        inner_iters: Busiest-core inner-loop trip count.
        cycles_per_iter: Instructions issued per trip (the per-trip
            cycle cost before the fitted CPI-like overhead factor).
        contention: Optional second regressor for workloads whose
            effective CPI grows with the active core count (shared-bank
            pressure); zero for workloads the single factor explains.
    """

    setup: float
    inner_iters: float
    cycles_per_iter: float
    contention: float = 0.0

    @property
    def work(self) -> float:
        """The calibrated regressor: ``inner_iters x cycles_per_iter``."""
        return self.inner_iters * self.cycles_per_iter


def _active_cores(scenario, work_items: int) -> int:
    """Cores that receive work: the scenario's, capped by available work."""
    return max(1, min(scenario.num_cores, work_items))


def _trips(work_items: int, cores: int) -> int:
    """Busiest-core trip count for interleaved work distribution."""
    return -(-work_items // cores)


@register_predictor(
    "dotp", calibration_dims=(512, 1536, 4096), probe_dims=(768, 2048, 8192)
)
def dotp_predictor(scenario) -> AnalyticTerms:
    """Dot product: 11 instructions per element on the busiest core."""
    n = max(1, scenario.matrix_dim)
    cores = _active_cores(scenario, n)
    return AnalyticTerms(
        setup=0.0, inner_iters=_trips(n, cores), cycles_per_iter=11.0
    )


@register_predictor(
    "axpy", calibration_dims=(512, 1536, 4096), probe_dims=(768, 2048, 8192)
)
def axpy_predictor(scenario) -> AnalyticTerms:
    """AXPY: the dotp loop plus one store per element."""
    n = max(1, scenario.matrix_dim)
    cores = _active_cores(scenario, n)
    return AnalyticTerms(
        setup=0.0, inner_iters=_trips(n, cores), cycles_per_iter=12.0
    )


@register_predictor(
    "conv2d", calibration_dims=(18, 66, 130), probe_dims=(34, 98, 178)
)
def conv2d_predictor(scenario) -> AnalyticTerms:
    """3x3 convolution: 37 instructions per output pixel + 14 per row.

    Rows interleave across cores; the per-row term covers the 9 tap
    reloads and the row-loop bookkeeping.
    """
    out = max(1, scenario.matrix_dim - 2)
    cores = _active_cores(scenario, out)
    rows = _trips(out, cores)
    return AnalyticTerms(
        setup=0.0,
        inner_iters=float(rows * out),
        cycles_per_iter=37.0 + 14.0 / out,
    )


@register_predictor(
    "matvec",
    error_bound=0.15,
    calibration_dims=(56, 80, 128, 152),
    probe_dims=(40, 104, 176),
)
def matvec_predictor(scenario) -> AnalyticTerms:
    """Matrix-vector: 5 instructions per column + 14 per row.

    Every active core streams the shared ``x`` vector, so the effective
    CPI climbs with the active core count (single-ported banks arbitrate
    the same words); the ``sqrt(cores)`` contention regressor captures
    the trend, but the residual is bank-alignment jagged — hence the
    wider declared bound.
    """
    n = max(1, scenario.matrix_dim)
    cores = _active_cores(scenario, n)
    rows = _trips(n, cores)
    inner = float(rows * n)
    cyc = 5.0 + 14.0 / n
    return AnalyticTerms(
        setup=0.0,
        inner_iters=inner,
        cycles_per_iter=cyc,
        contention=inner * cyc * math.sqrt(cores),
    )


@register_predictor(
    "stencil5", calibration_dims=(18, 66, 130), probe_dims=(34, 98, 178)
)
def stencil5_predictor(scenario) -> AnalyticTerms:
    """5-point stencil: 29 instructions per interior point + 4 per row."""
    out = max(1, scenario.matrix_dim - 2)
    cores = _active_cores(scenario, out)
    rows = _trips(out, cores)
    return AnalyticTerms(
        setup=0.0,
        inner_iters=float(rows * out),
        cycles_per_iter=29.0 + 4.0 / out,
    )


@register_predictor(
    "matmul", calibration_dims=(16, 32, 48), probe_dims=(24, 40, 56)
)
def matmul_predictor(scenario) -> AnalyticTerms:
    """Blocked matmul: simulated 2x2-block compute + exact phase setup.

    The inner term counts k-iterations of the blocked kernel (11
    instructions covering 4 MACs per trip; row-pairs interleave across
    cores, column-pair prologue amortizes as ``28/n``) and is calibrated
    against FastEngine.  The ``setup`` term reuses the paper's phase
    model *exactly* for everything outside compute — DMA memory phases,
    per-phase overhead, and writeback — so bandwidth sweeps keep their
    analytic shape while the compute CPI comes from measurement instead
    of the assumed ``cpi_mac``.
    """
    from ..kernels.phases import matmul_cycles

    n = max(2, scenario.matrix_dim)
    half = n // 2
    cores = _active_cores(scenario, half)
    inner = float(_trips(half, cores) * half * n)
    breakdown = matmul_cycles(
        scenario.tiling(), scenario.memory(), scenario.phase_params()
    )
    setup = (
        breakdown.memory_cycles
        + breakdown.overhead_cycles
        + breakdown.writeback_cycles
    )
    return AnalyticTerms(
        setup=float(setup),
        inner_iters=inner,
        cycles_per_iter=11.0 + 28.0 / n,
    )
