"""Tier-0: calibrated closed-form performance models.

The fourth evaluation tier.  Every registered workload gets a pure
closed-form predictor ``T = setup + inner_iters x cycles_per_iter x
overhead_factor`` (:mod:`repro.analytic.models`) whose overhead factors
are auto-calibrated against FastEngine runs
(:mod:`repro.analytic.calibrate`), persisted race-safely alongside the
stage cache (:mod:`repro.analytic.store`), and served through
``engine="analytic"`` (:mod:`repro.analytic.tier`).  Predictions carry a
declared relative-error bound; calibrations that miss their bound are
refused at prediction time and the evaluation falls back to the fast
engine.
"""

from .models import AnalyticTerms
from .store import (
    CalibrationRecord,
    CalibrationStore,
    calibration_store_for,
)
from .calibrate import calibrate, ensure_calibrated
from .tier import (
    analytic_engine,
    analytic_mode_active,
    flush_analytic_stats,
    predict_cycles,
)

__all__ = [
    "AnalyticTerms",
    "CalibrationRecord",
    "CalibrationStore",
    "analytic_engine",
    "analytic_mode_active",
    "calibrate",
    "calibration_store_for",
    "ensure_calibrated",
    "flush_analytic_stats",
    "predict_cycles",
]
