"""Persistent, content-addressed calibration artifacts.

Fitted overhead factors live in ``calibrations.jsonl`` alongside the
stage cache — the same append-only, torn-line-tolerant, lock-guarded
JSONL discipline as ``stages.jsonl`` — so concurrent workers share one
calibration per (workload, arch-class) instead of re-fitting.

Each record is content-addressed: its key digests the *question* that
was calibrated (workload, arch-class, calibration protocol, code model
version), never the fitted answer.  A record whose stored key no longer
matches the recomputed digest, or whose ``model_version`` is not the
current :data:`~repro.api.scenario.CODE_MODEL_VERSION`, is **stale**:
lookups refuse it and the caller re-fits, so doctored or outdated
artifacts are never silently served.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from ..sweep.cache import _FileLock, atomic_append

#: Scenario fields identifying a calibration arch-class.  A deliberate
#: subset of ``Scenario.cycles_dict``: the fields that change what the
#: simulator would measure for a fixed problem size (the same fields the
#: batched backend groups compatible lanes by).  Bandwidth and tiling
#: are *excluded* — they enter through each predictor's analytic
#: ``setup`` term, not the fitted factor.
ARCH_CLASS_FIELDS = ("capacity_mib", "num_cores", "word_bytes", "arch")


def arch_class_of(scenario) -> dict:
    """The calibration arch-class of a scenario (cycles_dict subset)."""
    cycles = scenario.cycles_dict()
    return {name: cycles[name] for name in ARCH_CLASS_FIELDS}


def calibration_key(
    workload: str,
    arch_class: dict,
    calibration_dims: tuple[int, ...],
    probe_dims: tuple[int, ...],
    model_version: str,
) -> str:
    """Content address of one calibration question."""
    payload = json.dumps(
        {
            "workload": workload,
            "arch_class": arch_class,
            "calibration_dims": list(calibration_dims),
            "probe_dims": list(probe_dims),
            "model_version": model_version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CalibrationRecord:
    """One fitted (workload, arch-class) overhead-factor artifact.

    Attributes:
        key: Content address (see :func:`calibration_key`).
        workload: Predictor/workload name.
        arch_class: The scenario fields the fit is valid for.
        model_version: Code-model version the fit ran under.
        calibration_dims: ``matrix_dim`` values the fit used.
        probe_dims: Held-out dims the achieved error was measured at.
        setup_cycles: Fitted constant (prologue/barrier absorption).
        factor: Fitted overhead factor on ``inner_iters x
            cycles_per_iter`` (an effective CPI).
        contention_factor: Fitted coefficient on the optional contention
            regressor (zero when the predictor declares none).
        error_bound: The predictor's declared relative-error budget.
        achieved_error: Max ``|relative residual|`` over the probe dims
            — the number the bound is enforced against.
        residuals: Per-dim relative residuals, ``{dim: rel_err}``, over
            calibration and probe dims both: the stored residual summary
            that makes out-of-budget predictions detectable.
    """

    key: str
    workload: str
    arch_class: dict
    model_version: str
    calibration_dims: tuple[int, ...]
    probe_dims: tuple[int, ...]
    setup_cycles: float
    factor: float
    contention_factor: float
    error_bound: float
    achieved_error: float
    residuals: dict = field(default_factory=dict)

    @property
    def within_bound(self) -> bool:
        """Whether the achieved probe error honours the declared bound."""
        return self.achieved_error <= self.error_bound

    def is_stale(self, model_version: str) -> bool:
        """Whether this artifact must be refused and re-fitted.

        Stale means the code model moved on, or the stored key no longer
        matches the recomputed content address (a doctored or corrupted
        artifact).
        """
        if self.model_version != model_version:
            return True
        expected = calibration_key(
            self.workload,
            self.arch_class,
            tuple(self.calibration_dims),
            tuple(self.probe_dims),
            self.model_version,
        )
        return self.key != expected

    def to_json(self) -> dict:
        record = asdict(self)
        record["calibration_dims"] = list(self.calibration_dims)
        record["probe_dims"] = list(self.probe_dims)
        return record

    @classmethod
    def from_json(cls, record: dict) -> "CalibrationRecord":
        return cls(
            key=str(record["key"]),
            workload=str(record["workload"]),
            arch_class=dict(record["arch_class"]),
            model_version=str(record["model_version"]),
            calibration_dims=tuple(
                int(d) for d in record["calibration_dims"]
            ),
            probe_dims=tuple(int(d) for d in record["probe_dims"]),
            setup_cycles=float(record["setup_cycles"]),
            factor=float(record["factor"]),
            contention_factor=float(record.get("contention_factor", 0.0)),
            error_bound=float(record["error_bound"]),
            achieved_error=float(record["achieved_error"]),
            residuals={
                str(dim): float(err)
                for dim, err in record.get("residuals", {}).items()
            },
        )


class CalibrationStore:
    """Append-only JSONL store of :class:`CalibrationRecord` artifacts.

    Mirrors :class:`~repro.engine.cache.StageCache`: an in-process dict
    backed by ``calibrations.jsonl``, offset-tracked tail reads that
    skip torn lines, and locked read-check-append writes so concurrent
    fitters converge on one record per key.  ``root=None`` keeps the
    store purely in-memory (calibrations then last one process).

    Args:
        root: Cache directory shared with the stage cache, or ``None``.
    """

    FILENAME = "calibrations.jsonl"
    LOCKNAME = "calibrations.lock"

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / self.FILENAME if self.root else None
        self._records: dict[str, CalibrationRecord] = {}
        self._offset = 0
        self._lock = threading.Lock()
        self._read_tail()

    def __len__(self) -> int:
        return len(self._records)

    def _read_tail(self) -> int:
        """Parse records appended since the last read (torn-line safe)."""
        if self.path is None or not self.path.exists():
            return 0
        with self.path.open("rb") as fh:
            fh.seek(self._offset)
            data = fh.read()
        if not data:
            return 0
        end = data.rfind(b"\n")
        if end < 0:
            return 0
        added = 0
        for raw in data[: end + 1].splitlines():
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = CalibrationRecord.from_json(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # torn or foreign line
            if record.key not in self._records:
                added += 1
            self._records[record.key] = record
        self._offset += end + 1
        return added

    def refresh(self) -> int:
        """Fold records appended by other writers into this process."""
        with self._lock:
            return self._read_tail()

    def get(self, key: str) -> Optional[CalibrationRecord]:
        """The live record for ``key``, or ``None``.

        Stale records (model-version drift, key/content mismatch) are
        treated as missing: the caller re-fits and the fresh record
        shadows the stale line in the in-process view.
        """
        from ..api.scenario import CODE_MODEL_VERSION

        record = self._records.get(key)
        if record is None and self.path is not None:
            with self._lock:
                self._read_tail()
            record = self._records.get(key)
        if record is None or record.is_stale(CODE_MODEL_VERSION):
            return None
        return record

    def put(self, record: CalibrationRecord) -> None:
        """Persist a freshly-fitted record (locked read-check-append)."""
        if self.path is None:
            self._records[record.key] = record
            return
        line = json.dumps(record.to_json(), sort_keys=True) + "\n"
        try:
            with self._lock, _FileLock(self.root / self.LOCKNAME):
                self._read_tail()
                if record.key not in self._records:
                    atomic_append(self.path, line)
                    self._read_tail()
        except OSError:
            pass
        # A re-fit must shadow a stale record under the same key even if
        # the append failed; a live record (ours or a concurrent
        # winner's, folded in by the tail read) stands.
        existing = self._records.get(record.key)
        if existing is None or existing.is_stale(record.model_version):
            self._records[record.key] = record

    def records(self) -> list[CalibrationRecord]:
        """Snapshot of every loaded record (including stale ones)."""
        return list(self._records.values())

    def inject(self, record: CalibrationRecord) -> None:
        """Force a record into the in-process view (tests: staleness)."""
        self._records[record.key] = record


#: Process-wide stores, one per cache directory (plus one in-memory
#: fallback for cacheless pipelines), mirroring ``stage_cache_for``.
_STORES: dict[str, CalibrationStore] = {}
_MEMORY_STORE: Optional[CalibrationStore] = None


def calibration_store_for(
    root: str | Path | None,
) -> CalibrationStore:
    """The process-wide :class:`CalibrationStore` for a cache directory.

    ``root=None`` returns one shared in-memory store, so cacheless
    pipelines (e.g. the search screen) still fit each (workload,
    arch-class) once per process.
    """
    global _MEMORY_STORE
    if root is None:
        if _MEMORY_STORE is None:
            _MEMORY_STORE = CalibrationStore(None)
        return _MEMORY_STORE
    key = str(root)
    store = _STORES.get(key)
    if store is None:
        store = CalibrationStore(root)
        _STORES[key] = store
    return store


def _reset_stores() -> None:
    """Drop process-wide stores (tests only: isolates calibrations)."""
    global _MEMORY_STORE
    _STORES.clear()
    _MEMORY_STORE = None


atexit.register(_STORES.clear)
