"""Cycle-driven simulation engine.

Steps every core of a :class:`repro.arch.cluster.MemPoolCluster` once per
cycle until all cores halt (or a cycle limit trips).  The engine also keeps
the cluster barrier's population consistent when cores halt, so barriers
cannot deadlock on already-finished cores.

This reference :class:`Engine` is the oracle; :func:`run_cluster`
dispatches between it and the bit-identical fast path in
:mod:`repro.simulator.fast` (see :func:`set_default_sim_engine` and the
``REPRO_SIM_ENGINE`` environment variable).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..arch.cluster import MemPoolCluster
from ..arch.snitch import CoreState

#: Selectable simulation engines: the fast SoA path (with automatic
#: fallback), the reference cycle-by-cycle stepper, and the calibrated
#: tier-0 ``analytic`` mode.  Analytic is a *scenario-level* tier served
#: by :mod:`repro.analytic` through the pipeline's cycles stage; a bare
#: cluster carries no workload identity, so :func:`run_cluster` under
#: ``analytic`` simulates on the fast path.
SIM_ENGINES = ("fast", "reference", "analytic")

#: Environment variable seeding the default engine choice.
SIM_ENGINE_ENV = "REPRO_SIM_ENGINE"


class SimulationTimeout(RuntimeError):
    """Raised when the cycle limit is reached before all cores halt."""


@dataclass
class SimulationResult:
    """Outcome of a cluster simulation."""

    cycles: int
    instructions: int
    barrier_episodes: int

    @property
    def ipc(self) -> float:
        """Cluster-aggregate instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles


class Engine:
    """Runs a loaded cluster to completion.

    Args:
        cluster: A cluster with a program loaded via
            :meth:`repro.arch.cluster.MemPoolCluster.load_program`.
        max_cycles: Safety limit; exceeded limits raise
            :class:`SimulationTimeout`.
    """

    def __init__(self, cluster: MemPoolCluster, max_cycles: int = 5_000_000) -> None:
        if max_cycles <= 0:
            raise ValueError("cycle limit must be positive")
        if not cluster.cores:
            raise ValueError("cluster has no program loaded")
        self.cluster = cluster
        self.max_cycles = max_cycles
        self.cycle = 0

    def run(self) -> SimulationResult:
        """Simulate until every core halts.

        Returns:
            Aggregate cycle/instruction counts.

        Raises:
            SimulationTimeout: If the cycle limit is exceeded.
        """
        cores = self.cluster.cores
        barrier = self.cluster.barrier
        halted = CoreState.HALTED
        active = list(cores)
        while active:
            if self.cycle >= self.max_cycles:
                raise SimulationTimeout(
                    f"{len(active)} cores still running after {self.cycle} cycles"
                )
            newly_halted = 0
            for core in active:
                core.step(self.cycle)
                if core.state is halted:
                    newly_halted += 1
            # Only rebuild the active list on the (rare) cycles where a
            # core actually halted; most cycles skip the list churn.
            if newly_halted:
                active = [c for c in active if c.state is not halted]
                barrier.reduce_parties(newly_halted)
            self.cycle += 1

        return SimulationResult(
            cycles=self.cycle,
            instructions=sum(c.stats.instructions for c in cores),
            barrier_episodes=barrier.episodes,
        )


_default_sim_engine = os.environ.get(SIM_ENGINE_ENV, "fast")


def default_sim_engine() -> str:
    """The engine :func:`run_cluster` uses when none is requested."""
    return _default_sim_engine


def set_default_sim_engine(name: str) -> str:
    """Set the default simulation engine; returns the previous default.

    Also exports :data:`SIM_ENGINE_ENV` so spawned worker processes
    inherit the choice.

    Raises:
        ValueError: On an unknown engine name.
    """
    global _default_sim_engine
    if name not in SIM_ENGINES:
        raise ValueError(
            f"unknown simulation engine {name!r}; pick from {SIM_ENGINES}"
        )
    previous = _default_sim_engine
    _default_sim_engine = name
    os.environ[SIM_ENGINE_ENV] = name
    return previous


def run_cluster(
    cluster: MemPoolCluster,
    max_cycles: int = 5_000_000,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Simulate a loaded cluster to completion.

    Args:
        cluster: A cluster with a program loaded.
        max_cycles: Safety limit.
        engine: ``"fast"`` (SoA stepper with event fast-forward, falling
            back to the reference for unsupported setups),
            ``"reference"`` (the cycle-by-cycle oracle), or
            ``"analytic"`` (tier-0 prediction at the scenario level; a
            bare cluster has no predictor, so this simulates on the fast
            path).  ``None`` uses :func:`default_sim_engine`.  Fast and
            reference produce bit-identical results; the choice only
            affects wall-clock time.

    Raises:
        ValueError: On an unknown engine name.
    """
    name = engine if engine is not None else _default_sim_engine
    if name not in SIM_ENGINES:
        raise ValueError(
            f"unknown simulation engine {name!r}; pick from {SIM_ENGINES}"
        )
    if name in ("fast", "analytic"):
        from .fast import FastEngine  # local: keeps the oracle import-light

        if FastEngine.supports(cluster):
            return FastEngine(cluster, max_cycles=max_cycles).run()
    return Engine(cluster, max_cycles=max_cycles).run()
