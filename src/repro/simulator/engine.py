"""Cycle-driven simulation engine.

Steps every core of a :class:`repro.arch.cluster.MemPoolCluster` once per
cycle until all cores halt (or a cycle limit trips).  The engine also keeps
the cluster barrier's population consistent when cores halt, so barriers
cannot deadlock on already-finished cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.cluster import MemPoolCluster
from ..arch.snitch import CoreState


class SimulationTimeout(RuntimeError):
    """Raised when the cycle limit is reached before all cores halt."""


@dataclass
class SimulationResult:
    """Outcome of a cluster simulation."""

    cycles: int
    instructions: int
    barrier_episodes: int

    @property
    def ipc(self) -> float:
        """Cluster-aggregate instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles


class Engine:
    """Runs a loaded cluster to completion.

    Args:
        cluster: A cluster with a program loaded via
            :meth:`repro.arch.cluster.MemPoolCluster.load_program`.
        max_cycles: Safety limit; exceeded limits raise
            :class:`SimulationTimeout`.
    """

    def __init__(self, cluster: MemPoolCluster, max_cycles: int = 5_000_000) -> None:
        if max_cycles <= 0:
            raise ValueError("cycle limit must be positive")
        if not cluster.cores:
            raise ValueError("cluster has no program loaded")
        self.cluster = cluster
        self.max_cycles = max_cycles
        self.cycle = 0

    def run(self) -> SimulationResult:
        """Simulate until every core halts.

        Returns:
            Aggregate cycle/instruction counts.

        Raises:
            SimulationTimeout: If the cycle limit is exceeded.
        """
        cores = self.cluster.cores
        barrier = self.cluster.barrier
        halted_seen = 0
        active = list(cores)
        while active:
            if self.cycle >= self.max_cycles:
                raise SimulationTimeout(
                    f"{len(active)} cores still running after {self.cycle} cycles"
                )
            for core in active:
                core.step(self.cycle)
            still_active = [c for c in active if c.state is not CoreState.HALTED]
            newly_halted = len(active) - len(still_active)
            if newly_halted:
                halted_seen += newly_halted
                barrier.reduce_parties(newly_halted)
            active = still_active
            self.cycle += 1

        return SimulationResult(
            cycles=self.cycle,
            instructions=sum(c.stats.instructions for c in cores),
            barrier_episodes=barrier.episodes,
        )


def run_cluster(cluster: MemPoolCluster, max_cycles: int = 5_000_000) -> SimulationResult:
    """Convenience wrapper: build an :class:`Engine` and run it."""
    return Engine(cluster, max_cycles=max_cycles).run()
