"""Off-chip memory system: bandwidth-limited, idealized latency.

Section VI-A of the paper models the off-chip global memory as a channel
delivering a fixed number of bytes per MemPool cycle, sweeping bandwidths
from a worst-case 4 B/cycle to an optimistic 64 B/cycle; 16 B/cycle
corresponds to a single DDR channel (8 B data width, double data rate)
clocked at MemPool's frequency.  Latency into the global memory is
idealized (fully pipelined), so a transfer of N bytes costs
``ceil(N / bandwidth)`` cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: The bandwidth sweep of Figure 6, in bytes per cycle.
PAPER_BANDWIDTH_SWEEP = (4, 8, 16, 32, 64)

#: One DDR channel at MemPool's clock: 8 B wide, double data rate.
DDR_CHANNEL_BYTES_PER_CYCLE = 16


@dataclass
class TransferRecord:
    """One bulk transfer between global memory and the SPM."""

    bytes: int
    cycles: int
    is_store: bool


@dataclass
class OffChipMemory:
    """A bandwidth-limited off-chip memory channel.

    Attributes:
        bandwidth_bytes_per_cycle: Sustained transfer bandwidth.
        latency_cycles: Fixed per-transfer access latency.  The paper
            idealizes this to zero ("our model idealizes the latency into
            the off-chip global memory"); a non-zero value models the
            DRAM access time as an extension, charged once per bulk
            transfer (streaming hides it within a transfer).
        transfers: Log of performed transfers.
    """

    bandwidth_bytes_per_cycle: float = DDR_CHANNEL_BYTES_PER_CYCLE
    latency_cycles: int = 0
    transfers: list[TransferRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency must be non-negative")

    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles to move ``num_bytes`` in one direction.

        Bandwidth-bound streaming plus the fixed access latency (zero in
        the paper's idealized model).
        """
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if num_bytes == 0:
            return 0
        return self.latency_cycles + math.ceil(
            num_bytes / self.bandwidth_bytes_per_cycle
        )

    def load(self, num_bytes: int) -> int:
        """Record a global-memory -> SPM transfer; returns its cycle cost."""
        cycles = self.transfer_cycles(num_bytes)
        self.transfers.append(TransferRecord(num_bytes, cycles, is_store=False))
        return cycles

    def store(self, num_bytes: int) -> int:
        """Record an SPM -> global-memory transfer; returns its cycle cost."""
        cycles = self.transfer_cycles(num_bytes)
        self.transfers.append(TransferRecord(num_bytes, cycles, is_store=True))
        return cycles

    @property
    def total_bytes(self) -> int:
        """Total traffic moved in either direction."""
        return sum(t.bytes for t in self.transfers)

    @property
    def total_cycles(self) -> int:
        """Total cycles spent transferring."""
        return sum(t.cycles for t in self.transfers)
