"""Generic SPMD program generators for the cycle-level simulator.

These helpers assemble small data-parallel programs (vector add, memcpy,
fill) used by tests and calibration runs.  The matmul kernels — the
paper's workload — live in :mod:`repro.kernels.matmul`.

Register conventions used by all generators:
``x1`` hart id, ``x2`` core count, ``x3`` element count; ``x20+`` are
scratch.
"""

from __future__ import annotations

from ..arch.isa import Program, ProgramBuilder


def vector_add_program(
    num_elements: int, num_cores: int, base_a: int, base_b: int, base_c: int
) -> Program:
    """``c[i] = a[i] + b[i]`` with elements interleaved across cores."""
    if num_elements <= 0 or num_cores <= 0:
        raise ValueError("element and core counts must be positive")
    b = ProgramBuilder()
    b.csrr_hartid(1)
    b.li(2, num_cores)
    b.li(3, num_elements)
    b.li(4, 4)
    b.add(5, 1, 0)  # i = hartid
    b.mul(20, 2, 4)  # stride = cores * 4
    b.label("loop")
    b.blt(5, 3, "body")
    b.j("done")
    b.label("body")
    b.mul(21, 5, 4)  # offset = i * 4
    b.li(22, base_a)
    b.add(22, 22, 21)
    b.lw(23, 22, 0)  # a[i]
    b.li(24, base_b)
    b.add(24, 24, 21)
    b.lw(25, 24, 0)  # b[i]
    b.add(26, 23, 25)
    b.li(27, base_c)
    b.add(27, 27, 21)
    b.sw(26, 27, 0)
    b.add(5, 5, 2)  # i += cores
    b.j("loop")
    b.label("done")
    b.barrier()
    b.halt()
    return b.build()


def memcpy_program(
    num_words: int, num_cores: int, base_src: int, base_dst: int
) -> Program:
    """Copy ``num_words`` words, chunked contiguously across cores.

    Each core copies a contiguous chunk with post-incrementing pointers,
    mimicking the memory phase of the paper's matmul (bulk SPM refill).
    """
    if num_words <= 0 or num_cores <= 0:
        raise ValueError("word and core counts must be positive")
    chunk = (num_words + num_cores - 1) // num_cores
    b = ProgramBuilder()
    b.csrr_hartid(1)
    b.li(2, chunk)
    b.li(3, num_words)
    b.li(4, 4)
    b.mul(5, 1, 2)  # start = hartid * chunk
    b.add(6, 5, 2)  # end = start + chunk
    b.blt(6, 3, "clamped")
    b.add(6, 3, 0)  # end = min(end, num_words)
    b.label("clamped")
    b.mul(20, 5, 4)
    b.li(21, base_src)
    b.add(21, 21, 20)  # src pointer
    b.li(22, base_dst)
    b.add(22, 22, 20)  # dst pointer
    b.label("loop")
    b.blt(5, 6, "body")
    b.j("done")
    b.label("body")
    b.lw_postinc(23, 21, 4)
    b.sw_postinc(23, 22, 4)
    b.addi(5, 5, 1)
    b.j("loop")
    b.label("done")
    b.barrier()
    b.halt()
    return b.build()


def fill_program(num_words: int, num_cores: int, base: int, value: int) -> Program:
    """Fill ``num_words`` words with ``value``, interleaved across cores."""
    if num_words <= 0 or num_cores <= 0:
        raise ValueError("word and core counts must be positive")
    b = ProgramBuilder()
    b.csrr_hartid(1)
    b.li(2, num_cores)
    b.li(3, num_words)
    b.li(4, 4)
    b.li(20, value)
    b.add(5, 1, 0)
    b.mul(21, 2, 4)  # pointer stride
    b.mul(22, 5, 4)
    b.li(23, base)
    b.add(23, 23, 22)
    b.label("loop")
    b.blt(5, 3, "body")
    b.j("done")
    b.label("body")
    b.sw_postinc(20, 23, 0)
    b.add(23, 23, 21)
    b.add(5, 5, 2)
    b.j("loop")
    b.label("done")
    b.barrier()
    b.halt()
    return b.build()
