"""Cycle-driven simulation engine and off-chip memory model."""

from .dma import DMACore, DMARequest, dma_fill
from .engine import (
    Engine,
    SIM_ENGINES,
    SimulationResult,
    SimulationTimeout,
    default_sim_engine,
    run_cluster,
    set_default_sim_engine,
)
from .fast import FastEngine
from .memsys import (
    DDR_CHANNEL_BYTES_PER_CYCLE,
    OffChipMemory,
    PAPER_BANDWIDTH_SWEEP,
)
from .trace import ClusterTrace, collect_trace

__all__ = [
    "ClusterTrace", "DDR_CHANNEL_BYTES_PER_CYCLE", "DMACore", "DMARequest",
    "Engine", "FastEngine", "OffChipMemory", "PAPER_BANDWIDTH_SWEEP",
    "SIM_ENGINES", "SimulationResult", "SimulationTimeout", "collect_trace",
    "default_sim_engine", "dma_fill", "run_cluster", "set_default_sim_engine",
]
