"""Cycle-driven simulation engine and off-chip memory model."""

from .dma import DMACore, DMARequest, dma_fill
from .engine import Engine, SimulationResult, SimulationTimeout, run_cluster
from .memsys import (
    DDR_CHANNEL_BYTES_PER_CYCLE,
    OffChipMemory,
    PAPER_BANDWIDTH_SWEEP,
)
from .trace import ClusterTrace, collect_trace

__all__ = [
    "ClusterTrace", "DDR_CHANNEL_BYTES_PER_CYCLE", "DMACore", "DMARequest",
    "Engine", "OffChipMemory", "PAPER_BANDWIDTH_SWEEP", "SimulationResult",
    "SimulationTimeout", "collect_trace", "dma_fill", "run_cluster",
]
