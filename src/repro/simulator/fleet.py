"""Cross-scenario batched simulation: many clusters, one vectorized step.

:class:`FleetEngine` steps N independent, compatible clusters ("lanes")
through a single structure-of-arrays.  Where :class:`FastEngine`
vectorizes over the cores of one cluster, the fleet vectorizes over
``scenario_lane x core``: every core of every lane lives at one flat
unit index in shared numpy state arrays (register files, program
counters, wake times, stall counters), and one event wheel — keyed by
cycle, holding flat unit ids — drives them all.  The Python interpreter
overhead of the per-cycle bookkeeping is paid once per *fleet* cycle
instead of once per scenario, which is where the batched backend's
speedup on sweep/search grids comes from.

Equivalence contract
--------------------
Per lane the fleet is **bit-identical** to :class:`FastEngine`: cycles,
instructions, barrier episodes, per-core stall breakdowns, router /
tile / bank / i-cache counters, register files, and SPM contents all
match, because

* flat unit ids are lane-contiguous and lanes never share fabric state,
  so visiting due units in ascending flat id preserves each lane's
  ascending-core-id intra-cycle order — the order bank-conflict and
  remote-port arbitration resolve in;
* port and bank arbitration are evaluated jointly per cycle with a
  rank trick (attempt order within each ``(lane, tile)`` / ``(lane,
  bank)`` group) that reproduces the serial claim/conflict sequence
  exactly;
* cycles that touch control flow the vector path cannot express —
  barrier arrivals, halts, end-of-program, memory faults — fall back to
  a scalar per-unit step that is a direct port of the fast engine's.

Lanes retire independently: a lane whose cores have all halted is
written back and removed mid-run, a lane that faults or times out is
written back with the fast engine's exact abort accounting, and the
surviving lanes keep stepping.  :meth:`FleetEngine.run` therefore never
raises for lane-level failures — it returns one :class:`LaneOutcome`
per lane, carrying either the :class:`SimulationResult` or the
exception the fast engine would have raised.

Admission is stricter than the fast path's: :meth:`FleetEngine.supports`
additionally requires plain :class:`SnitchCore` cores (no scoreboard)
and provably-hot-or-absent i-caches, because those are the
configurations whose per-cycle work is expressible as array operations.
Everything else belongs on the existing engines — the batched backend
falls back transparently.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Optional

import numpy as np

from ..arch.snitch import SnitchCore
from .engine import SimulationResult, SimulationTimeout
from .fast import (
    _ADD,
    _ADDI,
    _BARRIER,
    _BLT,
    _BNE,
    _CSRR,
    _HALT,
    _IC_HOT,
    _IC_SIM,
    _INF,
    _J,
    _LI,
    _LW,
    _LWP,
    _MAC,
    _MASK,
    _MUL,
    _NOP,
    _R_BAR,
    _R_DRAIN,
    _R_ICW,
    _R_LOAD,
    _R_NONE,
    _R_STORE,
    _RUN,
    _STATE_BACK,
    _SUB,
    _SW,
    _SWP,
    _WBAR,
    _WMEM,
    _HALTED,
    FastEngine,
    _always_released,
    _decode,
)

__all__ = ["FleetEngine", "LaneOutcome"]

_I64 = np.int64

# Opcode-group boundaries for the class-sorted vector step: searching
# the sorted opcode column against 0..17 yields the start of every
# opcode's contiguous slice.
_EDGES = np.arange(18)


def _signed32(x: np.ndarray) -> np.ndarray:
    """Two's-complement reinterpretation of 32-bit register values."""
    return np.where(x & 0x80000000 != 0, x - 0x100000000, x)


@dataclass
class LaneOutcome:
    """Terminal state of one lane: a result, or the fault it died with."""

    result: Optional[SimulationResult] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class FleetEngine:
    """Runs a batch of loaded clusters to completion, one SoA step.

    Args:
        clusters: Clusters with programs loaded, each individually
            accepted by :meth:`supports`.
        max_cycles: Per-lane safety limit (shared by the whole fleet,
            like :class:`FastEngine`'s); lanes still running at the
            limit get a :class:`SimulationTimeout` outcome.
    """

    def __init__(self, clusters, max_cycles: int = 5_000_000) -> None:
        if max_cycles <= 0:
            raise ValueError("cycle limit must be positive")
        clusters = list(clusters)
        if not clusters:
            raise ValueError("fleet has no lanes")
        for index, cluster in enumerate(clusters):
            if not self.supports(cluster):
                raise ValueError(
                    f"lane {index}: cluster not supported by FleetEngine"
                )
        self.clusters = clusters
        self.max_cycles = max_cycles
        self.cycle = 0
        self._setup()

    # ------------------------------------------------------------------
    @classmethod
    def supports(cls, cluster) -> bool:
        """Whether this cluster can ride in a fleet bit-for-bit.

        Everything :meth:`FastEngine.supports` requires, plus: plain
        :class:`SnitchCore` cores only (the scoreboard model's hazard /
        fence retries are inherently serial) and i-caches that are
        provably hot or absent (a simulated i-cache would force every
        fetch through a per-core object).
        """
        if not FastEngine.supports(cluster):
            return False
        cores = cluster.cores
        if any(type(core) is not SnitchCore for core in cores):
            return False
        programs = [core.program for core in cores]
        stable, modes = FastEngine._classify_icaches(cores, programs)
        if not stable:
            return False
        return all(mode != _IC_SIM for mode in modes)

    # ------------------------------------------------------------------
    def _setup(self) -> None:
        """Build the lane/unit SoA image from the admitted clusters."""
        clusters = self.clusters
        nlanes = len(clusters)

        counts = [len(cluster.cores) for cluster in clusters]
        offsets = [0] * nlanes
        total = 0
        for lane, count in enumerate(counts):
            offsets[lane] = total
            total += count
        self.nlanes = nlanes
        self.nunits = total
        self.off_l = offsets
        self.count_l = counts

        # -- lane geometry ---------------------------------------------
        def lane_arr(fn):
            return np.asarray([fn(c) for c in clusters], dtype=_I64)

        self.bpt_l = lane_arr(lambda c: c.arch.banks_per_tile)
        self.ntiles_l = lane_arr(lambda c: c.arch.num_tiles)
        self.cpt_l = lane_arr(lambda c: c.arch.cores_per_tile)
        self.tpg_l = lane_arr(lambda c: c.arch.tiles_per_group)
        self.rports_l = lane_arr(lambda c: c.arch.remote_ports_per_tile)
        self.lat_local_l = lane_arr(lambda c: c.arch.local_latency)
        self.lat_group_l = lane_arr(lambda c: c.arch.group_latency)
        self.lat_cluster_l = lane_arr(lambda c: c.arch.cluster_latency)
        self.spm_l = lane_arr(lambda c: c.memory_map.spm_bytes)
        self.nbanks_l = lane_arr(lambda c: c.arch.num_banks)
        self.stride_l = self.bpt_l * self.ntiles_l
        self.tmax = int(self.ntiles_l.max())
        self.bmax = int(self.nbanks_l.max())

        # Uniform-geometry fast path: batches grouped by compatibility
        # share one topology, so the per-unit geometry "gathers" in the
        # hot loop collapse to Python ints.  ``None`` means mixed.
        def uniform(arr) -> Optional[int]:
            first = int(arr.flat[0])
            return first if (arr == first).all() else None

        self.u_bpt = uniform(self.bpt_l)
        self.u_ntiles = uniform(self.ntiles_l)
        self.u_tpg = uniform(self.tpg_l)
        self.u_rports = uniform(self.rports_l)
        self.u_spm = uniform(self.spm_l)
        self.u_lat = (
            uniform(self.lat_local_l),
            uniform(self.lat_group_l),
            uniform(self.lat_cluster_l),
        )
        if None in self.u_lat:
            self.u_lat = None

        # -- per-lane fabric state -------------------------------------
        self.flat_banks_l = [
            [bank for tile in c.tiles for bank in tile.spm.banks]
            for c in clusters
        ]
        # Read-through snapshot of every bank's backing store.  Safe to
        # take once: bank contents only change through the fleet itself,
        # and the fleet writes them back (to ``_storage``) only after
        # the owning lane retired.  ``None`` means unmaterialized — all
        # zeros, exactly like SPMBank.peek.
        self.bank_data_l = [
            [bank._data for bank in banks] for banks in self.flat_banks_l
        ]
        self.bank_busy = np.full((nlanes, self.bmax), -2, dtype=_I64)
        for lane, banks in enumerate(self.flat_banks_l):
            self.bank_busy[lane, : len(banks)] = [
                bank._busy_cycle for bank in banks  # property bypass
            ]
        self.b_reads = np.zeros((nlanes, self.bmax), dtype=_I64)
        self.b_writes = np.zeros((nlanes, self.bmax), dtype=_I64)
        self.b_conf = np.zeros((nlanes, self.bmax), dtype=_I64)
        self.port_use = np.zeros((nlanes, self.tmax), dtype=_I64)
        self.port_cur_l = np.full(nlanes, -1, dtype=_I64)
        for lane, cluster in enumerate(clusters):
            cur, use = cluster.router.export_port_state()
            self.port_cur_l[lane] = cur
            for tile, used in use.items():
                self.port_use[lane, tile] = used
        self.local_req = np.zeros((nlanes, self.tmax), dtype=_I64)
        self.remote_in = np.zeros((nlanes, self.tmax), dtype=_I64)
        self.local_acc_l = np.zeros(nlanes, dtype=_I64)
        self.group_acc_l = np.zeros(nlanes, dtype=_I64)
        self.cluster_acc_l = np.zeros(nlanes, dtype=_I64)
        self.bank_conf_l = np.zeros(nlanes, dtype=_I64)
        self.port_conf_l = np.zeros(nlanes, dtype=_I64)
        self.barriers = [cluster.barrier for cluster in clusters]

        # -- shared SPM image ------------------------------------------
        # One dense (lane x word) plane holding every lane's visible
        # SPM contents over [0, mem_width): pre-filled from the bank
        # snapshots with one strided assignment per materialized bank
        # (unmaterialized banks read 0, exactly like SPMBank.peek), so
        # loads are plain gathers.  ``dirty`` marks the stored-to
        # subset: only those words can differ from the banks, so only
        # they are poked back at lane write-back.  Accesses past the
        # plane grow it, re-filling the new column range.
        width = 1024
        self.mem_width = width
        self.mem_img = np.zeros((nlanes, width), dtype=_I64)
        self.dirty = np.zeros((nlanes, width), dtype=bool)
        self.stride_py = [int(s) for s in self.stride_l]
        self._fill_planes(0)

        # -- deferred access accounting --------------------------------
        # The vector path logs accesses as flat keys and folds them
        # into the counter planes in one bincount per flush (at lane
        # write-back) instead of one scattered np.add.at per cycle.
        self.ev_port_conf: list = []  # lane ids
        self.ev_bank_conf: list = []  # lane * bmax + flat_bank
        self.ev_read: list = []       # lane * bmax + flat_bank
        self.ev_write: list = []      # lane * bmax + flat_bank
        self.ev_local: list = []      # lane * tmax + tile
        self.ev_group: list = []      # lane * tmax + tile
        self.ev_cluster: list = []    # lane * tmax + tile
        self.ev_gap_u: list = []      # units with slept-through cycles
        self.ev_gap_v: list = []      # matching gap lengths
        self.ev_gap_r: list = []      # matching sleep reasons

        # -- unit state ------------------------------------------------
        lane_u = np.empty(total, dtype=_I64)
        core_id_u = np.empty(total, dtype=_I64)
        regs = np.zeros((total, 32), dtype=_I64)
        pc = np.zeros(total, dtype=_I64)
        self.icaches_u = [None] * total
        self.release_u: list = [None] * total
        self.arrives_u: list = [None] * total
        store_lat_u = np.ones(total, dtype=_I64)
        ic_hot_u = np.zeros(total, dtype=bool)
        prog_u = np.zeros(total, dtype=_I64)
        plen_u = np.zeros(total, dtype=_I64)

        decoded: dict[int, int] = {}
        prog_images: list[list[tuple]] = []
        for lane, cluster in enumerate(clusters):
            start = offsets[lane]
            count = counts[lane]
            cores = cluster.cores
            programs = [core.program for core in cores]
            _stable, modes = FastEngine._classify_icaches(cores, programs)
            lane_u[start:start + count] = lane
            core_id_u[start:start + count] = np.arange(count, dtype=_I64)
            regs[start:start + count] = [core.regs for core in cores]
            pc[start:start + count] = [core.pc for core in cores]
            for local, core in enumerate(cores):
                unit = start + local
                self.icaches_u[unit] = core.icache
                self.arrives_u[unit] = core.barrier_arrive
                store_lat_u[unit] = getattr(core, "store_latency", 1)
                ic_hot_u[unit] = modes[local] == _IC_HOT
                program = core.program
                index = decoded.get(id(program))
                if index is None:
                    index = len(prog_images)
                    decoded[id(program)] = index
                    prog_images.append(_decode(program))
                prog_u[unit] = index
                plen_u[unit] = len(prog_images[index])

        pmax = max(1, max(len(img) for img in prog_images))
        nprogs = len(prog_images)
        # Packed (program, slot, field) table: one gather per cycle
        # fetches every decoded field at once.  Field columns:
        # 0=code 1=rd 2=rs1 3=rs2 4=imm 5=target.  Slots past a
        # program's end (up to and including pmax, the largest pc any
        # unit can reach) read as HALT so gathers need no bounds guard.
        self.op_tab = np.zeros((nprogs, pmax + 1, 6), dtype=_I64)
        self.op_tab[:, :, 0] = _HALT
        for index, image in enumerate(prog_images):
            for slot, (code, rd, rs1, rs2, imm, target, _hz) in \
                    enumerate(image):
                self.op_tab[index, slot] = (
                    code,
                    0 if rd is None else rd,
                    0 if rs1 is None else rs1,
                    0 if rs2 is None else rs2,
                    0 if imm is None else imm,
                    0 if target is None else target,
                )
        self.op_code = self.op_tab[:, :, 0]
        self.op_rd = self.op_tab[:, :, 1]
        self.op_rs1 = self.op_tab[:, :, 2]
        self.op_rs2 = self.op_tab[:, :, 3]
        self.op_imm = self.op_tab[:, :, 4]
        self.op_tgt = self.op_tab[:, :, 5]

        self.lane_u = lane_u
        self.core_id_u = core_id_u
        self.src_tile_u = core_id_u // self.cpt_l[lane_u]
        self.src_group_u = self.src_tile_u // self.tpg_l[lane_u]
        self.bpt_u = self.bpt_l[lane_u]
        self.ntiles_u = self.ntiles_l[lane_u]
        self.tpg_u = self.tpg_l[lane_u]
        self.spm_u = self.spm_l[lane_u]
        self.lat_local_u = self.lat_local_l[lane_u]
        self.lat_group_u = self.lat_group_l[lane_u]
        self.lat_cluster_u = self.lat_cluster_l[lane_u]
        self.store_lat_u = store_lat_u
        self.u_store_lat = (
            int(store_lat_u[0])
            if (store_lat_u == store_lat_u[0]).all() else None
        )
        self.ic_hot_u = ic_hot_u
        self.hot_all = bool(ic_hot_u.all())
        self.hot_none = not ic_hot_u.any()
        # Single-core lanes share no fabric state with anyone — no port
        # or bank contention is possible — so (with a hot i-cache) the
        # turbo path can run whole instruction sequences per visit.
        self.turbo_u = (
            np.asarray(self.count_l, dtype=_I64)[lane_u] == 1
        ) & ic_hot_u
        self.any_turbo = bool(self.turbo_u.any())
        # Largest possible single-step advance of a turbo virtual clock
        # (taken branch = 2; else the op's latency) — lets the hot loop
        # skip horizon checks while a running upper bound stays under
        # max_cycles — and whether any store can sleep at all.
        self.turbo_max_dur = max(
            2,
            int(self.lat_local_l.max()),
            int(self.lat_group_l.max()),
            int(self.lat_cluster_l.max()),
            int(store_lat_u.max()) if store_lat_u.size else 1,
        )
        self.turbo_store_slow = (
            self.u_store_lat is None or self.u_store_lat > 1
        )
        self.prog_u = prog_u
        self.plen_u = plen_u
        self.regs = regs
        self.pc = pc
        self.state = np.full(total, _RUN, dtype=_I64)
        self.wake = np.zeros(total, dtype=_I64)
        self.reason = np.full(total, _R_NONE, dtype=_I64)
        self.last_step = np.full(total, -1, dtype=_I64)
        self.stall_until = np.zeros(total, dtype=_I64)
        self.pend_reg = np.full(total, -1, dtype=_I64)  # -1 encodes None
        self.pend_data = np.zeros(total, dtype=_I64)
        self.fetch_hits = np.zeros(total, dtype=_I64)
        self.st_instr = np.zeros(total, dtype=_I64)
        self.st_load = np.zeros(total, dtype=_I64)
        self.st_store = np.zeros(total, dtype=_I64)
        self.st_bar = np.zeros(total, dtype=_I64)
        self.st_ic = np.zeros(total, dtype=_I64)
        self.st_branch = np.zeros(total, dtype=_I64)
        self.st_conflict = np.zeros(total, dtype=_I64)

        # -- lane lifecycle --------------------------------------------
        self.alive_l = [
            list(range(offsets[lane], offsets[lane] + counts[lane]))
            for lane in range(nlanes)
        ]
        self.lane_alive = list(counts)
        self.lane_done = [False] * nlanes
        self.dead_u = np.zeros(total, dtype=bool)
        self.any_dead = False
        self.outcomes: list[Optional[LaneOutcome]] = [None] * nlanes
        self.pending_lanes = nlanes

        # -- event wheel -----------------------------------------------
        self._sched: dict[int, list] = {0: [np.arange(total, dtype=_I64)]}
        self._heap = [0]
        self._qnext: list = []

    # ------------------------------------------------------------------
    def _fill_planes(self, lo: int) -> None:
        """Copy bank contents for words in [lo, mem_width) into the
        image plane.

        Word ``w`` lives at index ``w // stride`` of bank
        ``w % stride``, so stacking the per-bank prefixes and
        transposing yields the words in address order — one array
        conversion per lane instead of one per bank.
        """
        hi = self.mem_width
        img = self.mem_img
        for lane, banks in enumerate(self.bank_data_l):
            stride = self.stride_py[lane]
            bank_words = int(self.spm_l[lane]) // 4 // stride
            kmax = min(-(-hi // stride), bank_words)
            for k in range(lo // stride, kmax):
                col = np.asarray(
                    [0 if s is None else s[k] for s in banks],
                    dtype=_I64,
                )
                a = k * stride
                b = min(a + stride, hi)
                off = lo - a if lo > a else 0
                img[lane, a + off : b] = col[off : b - a]

    def _grow_mem(self, need: int) -> None:
        width = self.mem_width
        while width <= need:
            width *= 2
        img = np.zeros((self.nlanes, width), dtype=_I64)
        img[:, : self.mem_width] = self.mem_img
        wet = np.zeros((self.nlanes, width), dtype=bool)
        wet[:, : self.mem_width] = self.dirty
        self.mem_img = img
        self.dirty = wet
        lo = self.mem_width
        self.mem_width = width
        self._fill_planes(lo)

    # ------------------------------------------------------------------
    def _push(self, unit: int, at: int) -> None:
        """Scalar-path schedule insert, one unit."""
        self.wake[unit] = at
        entry = self._sched.get(at)
        if entry is None:
            self._sched[at] = [unit]
            heappush(self._heap, at)
        else:
            entry.append(unit)

    def _push_batch(self, units: np.ndarray, wakes: np.ndarray) -> None:
        """Vector-path schedule insert: group by distinct wake cycle."""
        self.wake[units] = wakes
        sched = self._sched
        for at in np.unique(wakes):
            at = int(at)
            batch = units[wakes == at]
            entry = sched.get(at)
            if entry is None:
                sched[at] = [batch]
                heappush(self._heap, at)
            else:
                entry.append(batch)

    # ------------------------------------------------------------------
    def run(self) -> list[LaneOutcome]:
        """Step every lane to completion; one outcome per lane.

        Lane-level failures (faults, timeouts) are captured in the
        corresponding :class:`LaneOutcome` — the fleet itself never
        raises for them, and the failing lane's cluster is left in the
        exact state :class:`FastEngine` would have left it in.
        """
        max_cycles = self.max_cycles
        sched = self._sched
        heap = self._heap
        cycle = 0

        while self.pending_lanes:
            qnext = self._qnext
            if qnext:
                cycle += 1
                entry = sched.pop(cycle, None)
                if entry is not None:
                    if heap and heap[0] == cycle:
                        heappop(heap)
                    qnext.extend(entry)
                parts = qnext
                self._qnext = []
            elif heap:
                cycle = heappop(heap)
                parts = sched.pop(cycle)
            else:
                cycle = max_cycles  # deadlock: idle-tick to the limit
                parts = []
            if cycle >= max_cycles:
                self.cycle = max_cycles
                for lane in range(self.nlanes):
                    if not self.lane_done[lane]:
                        self._timeout_lane(lane)
                break
            due = self._combine(parts)
            if due.size == 0:
                continue
            self._dispatch(cycle, due)
        else:
            self.cycle = cycle + 1

        return list(self.outcomes)  # every lane finalized above

    # ------------------------------------------------------------------
    def _combine(self, parts) -> np.ndarray:
        """Merge wheel entries (arrays and ints) into one sorted array."""
        arrays = []
        ints = []
        for part in parts:
            if isinstance(part, np.ndarray):
                arrays.append(part)
            else:
                ints.append(part)
        if ints:
            arrays.append(np.asarray(ints, dtype=_I64))
        if not arrays:
            return np.empty(0, dtype=_I64)
        due = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        if self.any_dead:
            due = due[~self.dead_u[due]]
        due = np.sort(due)
        return due

    # ------------------------------------------------------------------
    def _dispatch(self, cycle: int, due: np.ndarray) -> None:
        """Split this cycle's due set between the two step paths.

        A unit needs the scalar per-unit port when it touches control
        flow the vector path cannot express: barrier waits/arrivals,
        halts, end of program, or a memory fault about to abort its
        lane.  Lanes never share fabric state, so the split is by
        *lane* — every due unit of a flagged unit's lane steps scalar
        (preserving that lane's serial intra-cycle order), and all
        other lanes step through the vector path in the same cycle.
        """
        state = self.state[due]
        p = self.pc[due]
        pi = self.prog_u[due]
        ops = self.op_tab[pi, p]  # past-end slots read as HALT
        code = ops[:, 0]
        flag = (state == _WBAR) | (code == _BARRIER) | (code == _HALT)
        is_mem = (code >= _LW) & (code <= _SWP) & ~flag
        addr = None
        ops_m = None
        if is_mem.any():
            mu = due[is_mem]
            ops_m = ops[is_mem]
            code_m = ops_m[:, 0]
            rs1_m = ops_m[:, 2]
            imm_m = ops_m[:, 4]
            r1 = self.regs[mu, rs1_m]
            pend = self.pend_reg[mu]
            committed = (
                (state[is_mem] == _WMEM) & (pend == rs1_m) & (pend > 0)
            )
            r1 = np.where(committed, self.pend_data[mu], r1)
            use_imm = (code_m == _LW) | (code_m == _SW)
            addr = np.where(use_imm, (r1 + imm_m) & _MASK, r1)
            spm = self.u_spm
            if spm is None:
                spm = self.spm_u[mu]
            bad = (addr >= spm) | (addr & 3 != 0)
            if bad.any():
                flag[np.flatnonzero(is_mem)[bad]] = True
        if self.any_turbo:
            turbo = self.turbo_u[due] & ~flag
            if turbo.any():
                self._turbo_run(cycle, due[turbo])
                keep = ~turbo
                if not keep.any():
                    return
                due = due[keep]
                state = state[keep]
                p = p[keep]
                ops = ops[keep]
                code = code[keep]
                if addr is not None:
                    ka = keep[is_mem]
                    addr = addr[ka]
                    ops_m = ops_m[ka]
                is_mem = is_mem[keep]
                if addr is not None and not is_mem.any():
                    addr = None
                    ops_m = None
                flag = flag[keep]
        if not flag.any():
            self._vector_cycle(
                cycle, due, (p, ops, code, is_mem, addr, ops_m)
            )
            return
        lanes = self.lane_u[due]
        scalar_lane = np.zeros(self.nlanes, dtype=bool)
        scalar_lane[lanes[flag]] = True
        sm = scalar_lane[lanes]
        self._scalar_cycle(cycle, due[sm])
        vm = ~sm
        if vm.any():
            addr_v = None
            ops_mv = None
            is_mem_v = is_mem[vm]
            if addr is not None and is_mem_v.any():
                keep = vm[is_mem]
                addr_v = addr[keep]
                ops_mv = ops_m[keep]
            self._vector_cycle(
                cycle, due[vm],
                (p[vm], ops[vm], code[vm], is_mem_v, addr_v, ops_mv),
            )

    # ------------------------------------------------------------------
    def _turbo_run(self, cycle: int, units: np.ndarray) -> None:
        """Run single-core lanes many instructions per visit.

        A one-core lane owns its whole fabric — no other unit can touch
        its ports, banks or barrier mid-run — so its instruction stream
        is private and can be executed straight through: loads commit
        immediately (folding the serial engine's sleep/wake visit into
        the issue) while each unit's virtual clock ``t`` advances by
        the op's true duration.  The run stops, bit-exactly, where
        shared or unpredictable control flow resumes: barriers, halts,
        end of program, a faulting access (re-dispatched at its cycle
        so the scalar path replays the fault), or any sleep that would
        cross ``max_cycles`` (left in its serial mid-sleep state so
        timeout write-back matches the fast engine).
        """
        regs = self.regs
        pc = self.pc
        state = self.state
        reason = self.reason
        st_instr = self.st_instr
        op_tab = self.op_tab
        max_cycles = self.max_cycles
        u = units
        t = np.full(u.size, cycle, dtype=_I64)

        # entry bookkeeping: fold slept-through cycles, commit loads
        gap = cycle - self.last_step[u] - 1
        has_gap = gap > 0
        if has_gap.any():
            gu = u[has_gap]
            self.ev_gap_u.append(gu)
            self.ev_gap_v.append(gap[has_gap])
            self.ev_gap_r.append(reason[gu])
        wm = state[u] == _WMEM
        if wm.any():
            wu = u[wm]
            pend = self.pend_reg[wu]
            writes = pend > 0
            if writes.any():
                regs[wu[writes], pend[writes]] = self.pend_data[wu[writes]]
            self.pend_reg[wu] = -1
        state[u] = _RUN

        pi = self.prog_u[u]
        t_hi = cycle  # running upper bound on max(t): while it stays
        md = self.turbo_max_dur  # under the horizon, skip cross checks
        while u.size:
            pp = pc[u]
            ops = op_tab[pi, pp]  # past-end slots read as HALT
            c = ops[:, 0]
            counts = np.bincount(c, minlength=17)
            n_mem = int(counts[_LW:_SWP + 1].sum())
            n_stop = int(counts[_BARRIER]) + int(counts[_HALT])
            addr = None
            is_mem = None
            stop = None
            if n_mem:
                is_mem = (c >= _LW) & (c <= _SWP)
                r1 = regs[u, ops[:, 2]]
                use_imm = (c == _LW) | (c == _SW)
                addr = np.where(use_imm, (r1 + ops[:, 4]) & _MASK, r1)
                spm = self.u_spm
                if spm is None:
                    spm = self.spm_u[u]
                bad = is_mem & ((addr >= spm) | (addr & 3 != 0))
                if bad.any():
                    stop = bad
                    n_stop += 1
            if n_stop:
                halt_bar = (c == _BARRIER) | (c == _HALT)
                stop = halt_bar if stop is None else stop | halt_bar
                su = u[stop]
                self.last_step[su] = t[stop] - 1
                self._push_batch(su, t[stop])
                keep = ~stop
                u = u[keep]
                if not u.size:
                    break
                pi = pi[keep]
                t = t[keep]
                c = c[keep]
                ops = ops[keep]
                pp = pp[keep]
                counts = np.bincount(c, minlength=17)
                n_mem = int(counts[_LW:_SWP + 1].sum())
                if addr is not None:
                    if n_mem:
                        addr = addr[keep]
                        is_mem = is_mem[keep]
                    else:
                        addr = None
                        is_mem = None

            st_instr[u] += 1
            self.fetch_hits[u] += 1  # turbo lanes are hot by admission
            nt = t + 1

            # ALU / CSRR / NOP / J (private register file updates)
            n_alu = int(counts[:_MAC + 1].sum()) + int(counts[_CSRR])
            if n_alu:
                c0 = int(c[0])
                if int(counts[c0]) == u.size:
                    # lockstep batches fetch one opcode fleet-wide —
                    # compute it unmasked
                    if c0 == _LI:
                        val = ops[:, 4]
                    elif c0 == _ADD:
                        val = regs[u, ops[:, 2]] + regs[u, ops[:, 3]]
                    elif c0 == _SUB:
                        val = regs[u, ops[:, 2]] - regs[u, ops[:, 3]]
                    elif c0 == _ADDI:
                        val = regs[u, ops[:, 2]] + ops[:, 4]
                    elif c0 == _CSRR:
                        val = self.core_id_u[u]
                    else:
                        val = _signed32(regs[u, ops[:, 2]]) * \
                            _signed32(regs[u, ops[:, 3]])
                        if c0 == _MAC:
                            val = val + regs[u, ops[:, 1]]
                    w = ops[:, 1] > 0
                    if int(np.count_nonzero(w)) == u.size:
                        regs[u, ops[:, 1]] = val & _MASK
                    else:
                        regs[u[w], ops[:, 1][w]] = val[w] & _MASK
                else:
                    val = np.zeros(u.size, dtype=_I64)
                    if counts[_LI]:
                        m = c == _LI
                        val[m] = ops[:, 4][m]
                    if counts[_ADD]:
                        m = c == _ADD
                        val[m] = regs[u, ops[:, 2]][m] + \
                            regs[u, ops[:, 3]][m]
                    if counts[_SUB]:
                        m = c == _SUB
                        val[m] = regs[u, ops[:, 2]][m] - \
                            regs[u, ops[:, 3]][m]
                    if counts[_ADDI]:
                        m = c == _ADDI
                        val[m] = regs[u, ops[:, 2]][m] + ops[:, 4][m]
                    if counts[_MUL] or counts[_MAC]:
                        m = (c == _MUL) | (c == _MAC)
                        prod = _signed32(regs[u, ops[:, 2]][m]) * \
                            _signed32(regs[u, ops[:, 3]][m])
                        mac = c[m] == _MAC
                        if mac.any():
                            um = u[m]
                            prod[mac] += regs[um[mac], ops[:, 1][m][mac]]
                        val[m] = prod
                    if counts[_CSRR]:
                        m = c == _CSRR
                        val[m] = self.core_id_u[u[m]]
                    w = ((c <= _MAC) | (c == _CSRR)) & (ops[:, 1] > 0)
                    regs[u[w], ops[:, 1][w]] = val[w] & _MASK
            n_br = int(counts[_BNE]) + int(counts[_BLT])
            n_j = int(counts[_J])
            n_seq = u.size - n_mem - n_br - n_j
            if n_seq == u.size:
                pc[u] = pp + 1
            elif n_seq:
                seq = (c <= _MAC) | (c >= _CSRR)  # CSRR/NOP step ahead
                pc[u[seq]] = pp[seq] + 1
            if n_j:
                m = c == _J
                pc[u[m]] = ops[:, 5][m]

            # branches: taken costs the 2-cycle shadow
            m_taken = None
            if n_br:
                if n_br == u.size:  # lockstep: branch fleet-wide
                    av = _signed32(regs[u, ops[:, 2]])
                    bv = _signed32(regs[u, ops[:, 3]])
                    m_taken = np.where(c == _BNE, av != bv, av < bv)
                    n_taken = int(np.count_nonzero(m_taken))
                    if n_taken < n_br:
                        nott = ~m_taken
                        pc[u[nott]] = pp[nott] + 1
                else:
                    br = (c == _BNE) | (c == _BLT)
                    av = _signed32(regs[u, ops[:, 2]][br])
                    bv = _signed32(regs[u, ops[:, 3]][br])
                    taken = np.where(c[br] == _BNE, av != bv, av < bv)
                    n_taken = int(np.count_nonzero(taken))
                    m_taken = np.zeros(u.size, dtype=bool)
                    m_taken[np.flatnonzero(br)[taken]] = True
                    if n_taken < n_br:
                        nott = br & ~m_taken
                        pc[u[nott]] = pp[nott] + 1
                if n_taken:
                    tu = u[m_taken]
                    self.st_branch[tu] += 1
                    pc[tu] = ops[:, 5][m_taken]
                    nt[m_taken] = t[m_taken] + 2
                else:
                    m_taken = None

            # memory: every access wins its (private) bank and port
            ldata = None
            if n_mem:
                full = n_mem == u.size  # lockstep: access fleet-wide
                if full:
                    mu = u
                    mc = c
                    maddr = addr
                    mt = t
                    ops_m = ops
                else:
                    im = np.flatnonzero(is_mem)
                    mu = u[im]
                    mc = c[im]
                    maddr = addr[im]
                    mt = t[im]
                    ops_m = ops[im]
                ml = self.lane_u[mu]
                mword = maddr >> 2
                top = int(mword.max())
                if top >= self.mem_width:
                    self._grow_mem(top)
                bpt = self.bpt_u[mu]
                bank = mword % bpt
                tile = (mword // bpt) % self.ntiles_u[mu]
                flat = tile * bpt + bank
                self.bank_busy[ml, flat] = mt
                bkey = ml * self.bmax + flat
                remote = tile != self.src_tile_u[mu]
                n_remote = int(np.count_nonzero(remote))
                tkey = ml * self.tmax + tile
                local = ~remote
                if n_remote:
                    rl = ml[remote]
                    self.port_use[rl, :] = 0  # sole access of its cycle
                    self.port_use[rl, tile[remote]] = 1
                    self.port_cur_l[rl] = mt[remote]
                    in_group = remote & (
                        tile // self.tpg_u[mu] == self.src_group_u[mu]
                    )
                    self.ev_group.append(tkey[in_group])
                    self.ev_cluster.append(tkey[remote & ~in_group])
                    lat = np.where(
                        local, self.lat_local_u[mu],
                        np.where(in_group, self.lat_group_u[mu],
                                 self.lat_cluster_u[mu]),
                    )
                else:
                    ul = self.u_lat
                    lat = ul[0] if ul is not None else self.lat_local_u[mu]
                if n_remote < n_mem:
                    self.ev_local.append(tkey[local])
                n_st = int(counts[_SW]) + int(counts[_SWP])
                if n_st == 0:
                    ldata = self.mem_img[ml, mword] if full else None
                    if ldata is None:
                        ldata = np.zeros(u.size, dtype=_I64)
                        ldata[im] = self.mem_img[ml, mword]
                    self.ev_read.append(bkey)
                elif n_st == n_mem:
                    # store value read before the post-increment below
                    sval = regs[mu, ops_m[:, 3]]
                    self.mem_img[ml, mword] = sval & _MASK
                    self.dirty[ml, mword] = True
                    self.ev_write.append(bkey)
                else:
                    is_store = (mc == _SW) | (mc == _SWP)
                    sl = ml[is_store]
                    sw = mword[is_store]
                    sval = regs[mu[is_store], ops_m[:, 3][is_store]]
                    self.mem_img[sl, sw] = sval & _MASK
                    self.dirty[sl, sw] = True
                    self.ev_write.append(bkey[is_store])
                    loads = ~is_store
                    ldata = np.zeros(u.size, dtype=_I64)
                    lsel = loads if full else im[loads]
                    ldata[lsel] = self.mem_img[ml[loads], mword[loads]]
                    self.ev_read.append(bkey[loads])
                if int(counts[_LWP]) or int(counts[_SWP]):
                    post = ((mc == _LWP) | (mc == _SWP)) & \
                        (ops_m[:, 2] > 0)
                    regs[mu[post], ops_m[:, 2][post]] = (
                        maddr[post] + ops_m[:, 4][post]
                    ) & _MASK
                if full:
                    pc[mu] = pp + 1
                else:
                    pc[mu] = pp[im] + 1
                if n_st == 0:
                    dur = lat
                else:
                    usl = self.u_store_lat
                    sdur = (max(usl, 1) if usl is not None
                            else np.maximum(self.store_lat_u[mu], 1))
                    dur = sdur if n_st == n_mem else \
                        np.where(is_store, sdur, lat)
                if full:
                    nt = mt + dur
                else:
                    nt[im] = mt + dur

            # advance or park: sleeps that stay inside the horizon are
            # folded (the wake visit's gap accounting happens now);
            # sleeps that would cross it keep their serial sleep state.
            n_load = int(counts[_LW]) + int(counts[_LWP])
            m_slow = m_taken
            if n_mem and self.turbo_store_slow and \
                    int(counts[_SW]) + int(counts[_SWP]):
                ss = ((c == _SW) | (c == _SWP)) & (nt - t > 1)
                m_slow = ss if m_slow is None else m_slow | ss
            t_hi += md
            cross = None
            if t_hi >= max_cycles:
                cross = nt >= max_cycles
                if not cross.any():
                    cross = None
                    t_hi = int(nt.max())
            if cross is None:
                # fast path: nothing reaches the horizon this step
                if n_load == u.size:  # lockstep all-load step
                    extra = nt - t - 1
                    fold = extra > 0
                    self.st_load[u[fold]] += extra[fold]
                    self.stall_until[u] = nt  # serial wake visit's
                    self.pend_data[u] = ldata  # pending-load commit;
                    w = ops[:, 1] > 0  # stale trail as the serial
                    regs[u[w], ops[:, 1][w]] = ldata[w]  # engine leaves
                elif n_load:
                    m_load = (c == _LW) | (c == _LWP)
                    extra = nt - t - 1
                    fold = m_load & (extra > 0)
                    self.st_load[u[fold]] += extra[fold]
                    xu = u[m_load]
                    self.stall_until[xu] = nt[m_load]
                    self.pend_data[xu] = ldata[m_load]
                    w = m_load & (ops[:, 1] > 0)
                    regs[u[w], ops[:, 1][w]] = ldata[w]
                if m_slow is not None:
                    fu = u[m_slow]
                    self.st_store[fu] += (nt - t - 1)[m_slow]
                    self.stall_until[fu] = nt[m_slow]
                t = nt
                continue
            go = ~cross
            extra = nt - t - 1
            m_load = None
            if n_load:
                m_load = (c == _LW) | (c == _LWP)
                fold = go & m_load & (extra > 0)
                self.st_load[u[fold]] += extra[fold]
                lc = go & m_load
                xu = u[lc]
                self.stall_until[xu] = nt[lc]
                self.pend_data[xu] = ldata[lc]
                w = lc & (ops[:, 1] > 0)
                regs[u[w], ops[:, 1][w]] = ldata[w]
            if m_slow is not None:
                fold = go & m_slow
                fu = u[fold]
                self.st_store[fu] += extra[fold]
                self.stall_until[fu] = nt[fold]
            cu = u[cross]
            self.last_step[cu] = t[cross]
            if m_load is not None:
                cl = cross & m_load
                if cl.any():
                    xu = u[cl]
                    state[xu] = _WMEM
                    self.pend_reg[xu] = ops[:, 1][cl]
                    self.pend_data[xu] = ldata[cl]
                    reason[xu] = _R_LOAD
                    self.stall_until[xu] = nt[cl]
            if m_slow is not None:
                cs = cross & m_slow
                if cs.any():
                    xu = u[cs]
                    state[xu] = _WMEM
                    reason[xu] = _R_STORE
                    self.stall_until[xu] = nt[cs]
            self._push_batch(cu, nt[cross])
            u = u[go]
            pi = pi[go]
            t = nt[go]

    # ------------------------------------------------------------------
    def _vector_cycle(self, cycle: int, due: np.ndarray,
                      gathered: tuple) -> None:
        """One fleet cycle over vector-safe lanes, as array operations.

        Precondition (checked by :meth:`_dispatch`): every due unit is
        RUN/WMEM, fetches a non-barrier non-halt opcode, and no memory
        access faults — so the only cross-unit state is port and bank
        arbitration, resolved below in ascending-unit order.
        """
        d = due
        p, ops, code, is_mem, addr, ops_m = gathered
        regs = self.regs
        pc = self.pc
        state = self.state
        reason = self.reason
        pend_reg = self.pend_reg
        pend_data = self.pend_data
        stall_until = self.stall_until
        st_instr = self.st_instr
        st_conflict = self.st_conflict
        qnext = self._qnext
        sleep_units: list = []
        sleep_wakes: list = []

        # 1. log slept-through cycles; folded into the stall stats in
        # one pass per lane retirement (_flush_events), not per cycle
        gap = cycle - self.last_step[d] - 1
        has_gap = gap > 0
        if has_gap.any():
            gu = d[has_gap]
            self.ev_gap_u.append(gu)
            self.ev_gap_v.append(gap[has_gap])
            self.ev_gap_r.append(reason[gu])
            # hazard/full/fence reasons are scoreboard-only; snitch
            # lanes (the only fleet admits) never sleep with them
        self.last_step[d] = cycle

        # 2. commit pending loads (WMEM wake-up), then everyone runs
        wm = state[d] == _WMEM
        if wm.any():
            wu = d[wm]
            pend = pend_reg[wu]
            writes = pend > 0
            if writes.any():
                regs[wu[writes], pend[writes]] = pend_data[wu[writes]]
            pend_reg[wu] = -1  # writing -1 over -1 is harmless
        state[d] = _RUN

        # 3. hot i-cache: every fetch is a hit, counted in bulk
        if self.hot_all:
            self.fetch_hits[d] += 1
        elif not self.hot_none:
            hot = self.ic_hot_u[d]
            if hot.any():
                self.fetch_hits[d[hot]] += 1

        # 4. order by opcode: the stable sort keeps ascending unit
        # order inside every class, so contiguous class slices replace
        # full-width masks for the non-memory work below.  Units never
        # depend on each other's registers within a cycle (each runs
        # exactly one op on its own file), so class order is free.
        osort = np.argsort(code, kind="stable")
        d_s = d[osort]
        p_s = p[osort]
        ops_s = ops[osort]
        e = np.searchsorted(code[osort], _EDGES)

        # 5. ALU / jumps / CSRR (everything but memory and branches)
        a0, a1 = e[_LI], e[_LI + 1]
        if a1 > a0:
            dg = d_s[a0:a1]
            og = ops_s[a0:a1]
            w = og[:, 1] > 0
            regs[dg[w], og[:, 1][w]] = og[:, 4][w] & _MASK
        a0, a1 = e[_ADD], e[_ADD + 1]
        if a1 > a0:
            dg = d_s[a0:a1]
            og = ops_s[a0:a1]
            val = regs[dg, og[:, 2]] + regs[dg, og[:, 3]]
            w = og[:, 1] > 0
            regs[dg[w], og[:, 1][w]] = val[w] & _MASK
        a0, a1 = e[_SUB], e[_SUB + 1]
        if a1 > a0:
            dg = d_s[a0:a1]
            og = ops_s[a0:a1]
            val = regs[dg, og[:, 2]] - regs[dg, og[:, 3]]
            w = og[:, 1] > 0
            regs[dg[w], og[:, 1][w]] = val[w] & _MASK
        a0, a1 = e[_ADDI], e[_ADDI + 1]
        if a1 > a0:
            dg = d_s[a0:a1]
            og = ops_s[a0:a1]
            val = regs[dg, og[:, 2]] + og[:, 4]
            w = og[:, 1] > 0
            regs[dg[w], og[:, 1][w]] = val[w] & _MASK
        a0, a1 = e[_MUL], e[_MAC + 1]
        if a1 > a0:  # MUL and MAC share the signed-product core
            dg = d_s[a0:a1]
            og = ops_s[a0:a1]
            val = _signed32(regs[dg, og[:, 2]]) * \
                _signed32(regs[dg, og[:, 3]])
            mac = og[:, 0] == _MAC
            if mac.any():
                val[mac] += regs[dg[mac], og[:, 1][mac]]
            w = og[:, 1] > 0
            regs[dg[w], og[:, 1][w]] = val[w] & _MASK
        a0, a1 = e[_CSRR], e[_CSRR + 1]
        if a1 > a0:
            dg = d_s[a0:a1]
            og = ops_s[a0:a1]
            w = og[:, 1] > 0
            regs[dg[w], og[:, 1][w]] = self.core_id_u[dg[w]]
        a0, a1 = e[_J], e[_J + 1]
        if a1 > a0:
            dg = d_s[a0:a1]
            pc[dg] = ops_s[a0:a1, 5]
            qnext.append(dg)
        # sequential pc advance for ALU and CSRR/NOP slices
        for a0, a1 in ((e[_LI], e[_LW]), (e[_CSRR], e[_HALT])):
            if a1 > a0:
                dg = d_s[a0:a1]
                pc[dg] = p_s[a0:a1] + 1
                qnext.append(dg)
        # every non-memory opcode retires this cycle
        a0, a1 = e[_LI], e[_LW]
        if a1 > a0:
            st_instr[d_s[a0:a1]] += 1
        a0 = e[_BNE]
        if a0 < d_s.size:
            st_instr[d_s[a0:]] += 1

        # 6. branches: taken costs a 2-cycle shadow
        a0, a1 = e[_BNE], e[_J]
        if a1 > a0:
            dg = d_s[a0:a1]
            og = ops_s[a0:a1]
            av = _signed32(regs[dg, og[:, 2]])
            bv = _signed32(regs[dg, og[:, 3]])
            taken = np.where(og[:, 0] == _BNE, av != bv, av < bv)
            not_taken = dg[~taken]
            if not_taken.size:
                pc[not_taken] = p_s[a0:a1][~taken] + 1
                qnext.append(not_taken)
            tk = dg[taken]
            if tk.size:
                self.st_branch[tk] += 1
                pend_reg[tk] = -1
                state[tk] = _WMEM
                stall_until[tk] = cycle + 2
                reason[tk] = _R_STORE
                pc[tk] = og[:, 5][taken]
                sleep_units.append(tk)
                sleep_wakes.append(np.full(tk.size, cycle + 2, dtype=_I64))

        # 7. memory: joint port + bank arbitration in unit order
        if addr is not None:
            mu = d[is_mem]
            code_m = ops_m[:, 0]
            rd_m = ops_m[:, 1]
            rs1_m = ops_m[:, 2]
            rs2_m = ops_m[:, 3]
            imm_m = ops_m[:, 4]
            p_m = p[is_mem]
            word = addr >> 2
            top = int(word.max())
            if top >= self.mem_width:
                self._grow_mem(top)
            mem_img = self.mem_img
            bpt = self.u_bpt
            if bpt is None:
                bpt = self.bpt_u[mu]
            ntiles = self.u_ntiles
            if ntiles is None:
                ntiles = self.ntiles_u[mu]
            bank = word % bpt
            tile = (word // bpt) % ntiles
            flat = tile * bpt + bank
            lanes = self.lane_u[mu]
            src = self.src_tile_u[mu]
            remote = tile != src
            passed = np.ones(mu.size, dtype=bool)

            if remote.any():
                ridx = np.flatnonzero(remote)
                rl = lanes[ridx]
                rt = tile[ridx]
                # first remote attempt of the cycle resets a lane's
                # port-claim window, exactly like the serial clear
                stale = self.port_cur_l[rl] != cycle
                if stale.any():
                    reset = np.unique(rl[stale])
                    self.port_use[reset, :] = 0
                    self.port_cur_l[reset] = cycle
                # rank = how many earlier units this cycle already
                # claimed the same (lane, tile) port; the serial pass
                # admits attempts while claims stay under the limit
                key = rl * self.tmax + rt
                order = np.argsort(key, kind="stable")
                sorted_key = key[order]
                head = np.empty(sorted_key.size, dtype=bool)
                head[0] = True
                head[1:] = sorted_key[1:] != sorted_key[:-1]
                starts = np.flatnonzero(head)
                group = np.cumsum(head) - 1
                rank_sorted = np.arange(sorted_key.size) - starts[group]
                rank = np.empty_like(rank_sorted)
                rank[order] = rank_sorted
                rp = self.u_rports
                if rp is None:
                    rp = self.rports_l[rl]
                ok = self.port_use[rl, rt] + rank < rp
                fail = ~ok
                if fail.any():
                    self.ev_port_conf.append(rl[fail])
                    fu = mu[ridx[fail]]
                    st_conflict[fu] += 1
                    qnext.append(fu)
                    passed[ridx[fail]] = False
                if ok.any():
                    np.add.at(self.port_use, (rl[ok], rt[ok]), 1)

            pidx = np.flatnonzero(passed)
            pl = lanes[pidx]
            pfb = flat[pidx]
            pw = word[pidx]
            bkey = pl * self.bmax + pfb
            _uniq, first = np.unique(bkey, return_index=True)
            is_first = np.zeros(bkey.size, dtype=bool)
            is_first[first] = True
            win = is_first & (self.bank_busy[pl, pfb] != cycle)
            lose = ~win
            if lose.any():
                self.ev_bank_conf.append(bkey[lose])
                lu = mu[pidx[lose]]
                st_conflict[lu] += 1
                qnext.append(lu)
            widx = pidx[win]
            if widx.size:
                wl = pl[win]
                wfb = pfb[win]
                ww = pw[win]
                wu = mu[widx]
                self.bank_busy[wl, wfb] = cycle
                wbkey = bkey[win]
                cw = code_m[widx]
                is_store = (cw == _SW) | (cw == _SWP)
                if is_store.any():
                    sl = wl[is_store]
                    sw = ww[is_store]
                    # store value read here, before the post-increment
                    # below can clobber rs2 (swp with rs1 == rs2)
                    sval = regs[wu[is_store], rs2_m[widx][is_store]]
                    mem_img[sl, sw] = sval & _MASK
                    self.dirty[sl, sw] = True
                    self.ev_write.append(wbkey[is_store])
                loads = ~is_store
                data = None
                if loads.any():
                    data = mem_img[wl[loads], ww[loads]]
                    self.ev_read.append(wbkey[loads])
                wt = tile[widx]
                ws = src[widx]
                local = wt == ws
                tkey = wl * self.tmax + wt
                if local.any():
                    self.ev_local.append(tkey[local])
                far = ~local
                tpg = self.u_tpg
                if tpg is None:
                    tpg = self.tpg_u[wu]
                in_group = far & (wt // tpg == self.src_group_u[wu])
                in_cluster = far & ~in_group
                if far.any():
                    self.ev_group.append(tkey[in_group])
                    self.ev_cluster.append(tkey[in_cluster])
                if self.u_lat is not None:
                    ul, ug, uc = self.u_lat
                    lat = np.where(local, ul, np.where(in_group, ug, uc))
                else:
                    lat = np.where(
                        local, self.lat_local_u[wu],
                        np.where(in_group, self.lat_group_u[wu],
                                 self.lat_cluster_u[wu]),
                    )
                post = ((cw == _LWP) | (cw == _SWP)) & (rs1_m[widx] > 0)
                if post.any():
                    regs[wu[post], rs1_m[widx][post]] = (
                        addr[widx][post] + imm_m[widx][post]
                    ) & _MASK
                st_instr[wu] += 1
                pc[wu] = p_m[widx] + 1
                if is_store.any():
                    su = wu[is_store]
                    usl = self.u_store_lat
                    if usl is not None:
                        if usl <= 1:
                            qnext.append(su)
                        else:
                            pend_reg[su] = -1
                            state[su] = _WMEM
                            stall_until[su] = cycle + usl
                            reason[su] = _R_STORE
                            sleep_units.append(su)
                            sleep_wakes.append(
                                np.full(su.size, cycle + usl, dtype=_I64)
                            )
                    else:
                        slat = self.store_lat_u[su]
                        quick = slat <= 1
                        if quick.any():
                            qnext.append(su[quick])
                        slow = ~quick
                        if slow.any():
                            du = su[slow]
                            pend_reg[du] = -1
                            state[du] = _WMEM
                            stall_until[du] = cycle + slat[slow]
                            reason[du] = _R_STORE
                            sleep_units.append(du)
                            sleep_wakes.append(cycle + slat[slow])
                if loads.any():
                    lu = wu[loads]
                    pend_reg[lu] = rd_m[widx][loads]
                    pend_data[lu] = data
                    state[lu] = _WMEM
                    llat = lat[loads]
                    stall_until[lu] = cycle + llat
                    reason[lu] = _R_LOAD
                    sleep_units.append(lu)
                    sleep_wakes.append(cycle + llat)

        if sleep_units:
            self._push_batch(
                np.concatenate(sleep_units), np.concatenate(sleep_wakes)
            )

    # ------------------------------------------------------------------
    def _scalar_cycle(self, cycle: int, due: np.ndarray) -> None:
        """Per-unit port of the fast engine's snitch step.

        Runs whole cycles that involve barriers, halts, program ends or
        faults; mirrors the serial visit order (ascending flat unit id,
        with barrier releases insorted mid-cycle) and the serial
        accounting bit for bit.  A faulting unit aborts only its lane.
        """
        regs = self.regs
        pc = self.pc
        state = self.state
        wake = self.wake
        reason = self.reason
        last_step = self.last_step
        stall_until = self.stall_until
        pend_reg = self.pend_reg
        pend_data = self.pend_data
        dead_u = self.dead_u
        lane_u = self.lane_u
        plen_u = self.plen_u
        op_code = self.op_code
        op_rd = self.op_rd
        op_rs1 = self.op_rs1
        op_rs2 = self.op_rs2
        op_imm = self.op_imm
        op_tgt = self.op_tgt
        qnext = self._qnext
        mem_img = self.mem_img
        halted_by_lane: dict[int, int] = {}

        queue = due.tolist()
        qi = 0
        while qi < len(queue):
            i = queue[qi]
            qi += 1
            if dead_u[i]:
                continue
            lane = int(lane_u[i])
            try:
                # gap folding (see FastEngine.run for the reasoning)
                gap = cycle - int(last_step[i]) - 1
                if gap > 0:
                    why = int(reason[i])
                    if why == _R_LOAD or why == _R_DRAIN:
                        self.st_load[i] += gap
                    elif why == _R_STORE:
                        self.st_store[i] += gap
                    elif why == _R_BAR:
                        self.st_bar[i] += gap
                    elif why == _R_ICW:
                        self.st_ic[i] += gap
                    else:
                        self.st_load[i] += gap
                        if self.ic_hot_u[i]:
                            self.fetch_hits[i] += gap
                last_step[i] = cycle

                s = int(state[i])
                if s == _WBAR:
                    released = self.release_u[i]
                    if released is None or not released():
                        self.st_bar[i] += 1
                        reason[i] = _R_BAR
                        wake[i] = _INF
                        continue
                    s = _RUN
                    state[i] = _RUN

                if s == _WMEM:
                    loaded = int(pend_reg[i])
                    if loaded >= 0:
                        if loaded:
                            regs[i, loaded] = pend_data[i]
                        pend_reg[i] = -1
                    state[i] = _RUN
                p = int(pc[i])
                if p >= plen_u[i]:
                    state[i] = _HALTED
                    wake[i] = _INF
                    halted_by_lane[lane] = halted_by_lane.get(lane, 0) + 1
                    continue
                if self.ic_hot_u[i]:
                    self.fetch_hits[i] += 1
                prog = int(self.prog_u[i])
                code = int(op_code[prog, p])

                if _LW <= code <= _SWP:
                    is_store = code == _SW or code == _SWP
                    rs1 = int(op_rs1[prog, p])
                    imm = int(op_imm[prog, p])
                    if code == _LW or code == _SW:
                        address = (int(regs[i, rs1]) + imm) & _MASK
                    else:
                        address = int(regs[i, rs1])
                    if address < 0 or address >= self.spm_u[i]:
                        raise ValueError(
                            f"address {address:#x} outside SPM"
                        )
                    if address & 3:
                        raise ValueError(
                            f"address {address:#x} is not word-aligned"
                        )
                    word = address >> 2
                    bpt = int(self.bpt_u[i])
                    tile = (word // bpt) % int(self.ntiles_u[i])
                    src_tile = int(self.src_tile_u[i])
                    if tile != src_tile:
                        if cycle != self.port_cur_l[lane]:
                            self.port_use[lane, :] = 0
                            self.port_cur_l[lane] = cycle
                        used = int(self.port_use[lane, tile])
                        if used >= self.rports_l[lane]:
                            self.port_conf_l[lane] += 1
                            self.st_conflict[i] += 1
                            qnext.append(i)
                            continue
                        self.port_use[lane, tile] = used + 1
                    flat_bank = tile * bpt + word % bpt
                    if self.bank_busy[lane, flat_bank] == cycle:
                        self.b_conf[lane, flat_bank] += 1
                        self.bank_conf_l[lane] += 1
                        self.st_conflict[i] += 1
                        qnext.append(i)
                        continue
                    self.bank_busy[lane, flat_bank] = cycle
                    if word >= self.mem_width:
                        self._grow_mem(word)
                        mem_img = self.mem_img
                    if is_store:
                        rs2 = int(op_rs2[prog, p])
                        mem_img[lane, word] = int(regs[i, rs2]) & _MASK
                        self.dirty[lane, word] = True
                        self.b_writes[lane, flat_bank] += 1
                        data = 0
                    else:
                        data = int(mem_img[lane, word])
                        self.b_reads[lane, flat_bank] += 1
                    if tile == src_tile:
                        self.local_req[lane, tile] += 1
                        self.local_acc_l[lane] += 1
                        lat = int(self.lat_local_u[i])
                    else:
                        self.remote_in[lane, tile] += 1
                        if tile // int(self.tpg_u[i]) == self.src_group_u[i]:
                            self.group_acc_l[lane] += 1
                            lat = int(self.lat_group_u[i])
                        else:
                            self.cluster_acc_l[lane] += 1
                            lat = int(self.lat_cluster_u[i])
                    if (code == _LWP or code == _SWP) and rs1:
                        regs[i, rs1] = (int(regs[i, rs1]) + imm) & _MASK
                    self.st_instr[i] += 1
                    pc[i] = p + 1
                    if is_store:
                        latency = int(self.store_lat_u[i])
                        if latency > 1:
                            pend_reg[i] = -1
                            state[i] = _WMEM
                            stall_until[i] = cycle + latency
                            reason[i] = _R_STORE
                            self._push(i, cycle + latency)
                        else:
                            qnext.append(i)
                    else:
                        pend_reg[i] = int(op_rd[prog, p])
                        pend_data[i] = data
                        state[i] = _WMEM
                        stall_until[i] = cycle + lat
                        reason[i] = _R_LOAD
                        self._push(i, cycle + lat)
                    continue

                rd = int(op_rd[prog, p])
                if code == _BARRIER:
                    self.st_instr[i] += 1
                    pc[i] = p + 1
                    self._arrive_at_barrier(i, cycle, queue)
                elif code == _HALT:
                    self.st_instr[i] += 1
                    state[i] = _HALTED
                    wake[i] = _INF
                    halted_by_lane[lane] = halted_by_lane.get(lane, 0) + 1
                elif code == _BNE or code == _BLT:
                    a = int(regs[i, int(op_rs1[prog, p])])
                    b = int(regs[i, int(op_rs2[prog, p])])
                    if a & 0x80000000:
                        a -= 0x100000000
                    if b & 0x80000000:
                        b -= 0x100000000
                    taken = (a != b) if code == _BNE else (a < b)
                    self.st_instr[i] += 1
                    if taken:
                        self.st_branch[i] += 1
                        pend_reg[i] = -1
                        state[i] = _WMEM
                        stall_until[i] = cycle + 2
                        reason[i] = _R_STORE
                        pc[i] = int(op_tgt[prog, p])
                        self._push(i, cycle + 2)
                    else:
                        pc[i] = p + 1
                        qnext.append(i)
                else:
                    if code == _LI:
                        if rd:
                            regs[i, rd] = int(op_imm[prog, p]) & _MASK
                    elif code == _CSRR:
                        if rd:
                            regs[i, rd] = self.core_id_u[i]
                    elif code == _J:
                        pc[i] = int(op_tgt[prog, p])
                        self.st_instr[i] += 1
                        qnext.append(i)
                        continue
                    elif code != _NOP:
                        a = int(regs[i, int(op_rs1[prog, p])])
                        b = int(regs[i, int(op_rs2[prog, p])])
                        if code == _ADD:
                            value = a + b
                        elif code == _SUB:
                            value = a - b
                        elif code == _ADDI:
                            value = a + int(op_imm[prog, p])
                        else:  # _MUL / _MAC
                            if a & 0x80000000:
                                a -= 0x100000000
                            if b & 0x80000000:
                                b -= 0x100000000
                            value = a * b
                            if code == _MAC:
                                value += int(regs[i, rd])
                        if rd:
                            regs[i, rd] = value & _MASK
                    self.st_instr[i] += 1
                    pc[i] = p + 1
                    qnext.append(i)
            except Exception as exc:  # fault: abort this lane only
                self._abort_lane(lane, cycle, exc)

        # end of cycle: prune halted cores lane by lane, keep each
        # lane's barrier sane, retire lanes whose last core halted
        for lane, count in halted_by_lane.items():
            if self.lane_done[lane]:
                continue
            alive = self.alive_l[lane]
            alive[:] = [k for k in alive if state[k] != _HALTED]
            self.lane_alive[lane] = len(alive)
            barrier = self.barriers[lane]
            episodes = barrier.episodes
            barrier.reduce_parties(count)
            if barrier.episodes != episodes:
                for k in alive:
                    if state[k] == _WBAR and wake[k] > cycle + 1:
                        released = self.release_u[k]
                        if released is not None and released():
                            self._push(k, cycle + 1)
            if not alive:
                self._retire_lane(lane, cycle)

    # ------------------------------------------------------------------
    def _arrive_at_barrier(self, i: int, at: int, queue: list) -> None:
        """BARRIER retirement; see FastEngine.arrive_at_barrier."""
        state = self.state
        wake = self.wake
        release = self.release_u
        arrive = self.arrives_u[i]
        state[i] = _WBAR
        self.reason[i] = _R_BAR
        if arrive is None:
            release[i] = _always_released
            self._push(i, at + 1)
            return
        released = arrive(int(self.core_id_u[i]))
        release[i] = released
        if released():
            self._push(i, at + 1)
            for k in self.alive_l[int(self.lane_u[i])]:
                if k != i and state[k] == _WBAR and wake[k] > at:
                    other = release[k]
                    if other is not None and other():
                        if k > i:
                            wake[k] = at
                            insort(queue, k)
                        else:
                            self._push(k, at + 1)
        else:
            wake[i] = _INF

    # ------------------------------------------------------------------
    def _accrue_lane(self, lane: int, bound: int) -> None:
        """Fold idle cycles up to ``bound`` into the lane's stall stats
        (the fast engine's timeout/fault accrual, one lane)."""
        self._flush_events()  # pending gap logs also target st_* planes
        start = self.off_l[lane]
        units = np.arange(start, start + self.count_l[lane], dtype=_I64)
        units = units[self.state[units] != _HALTED]
        gap = (bound - 1) - self.last_step[units]
        has = gap > 0
        units = units[has]
        gap = gap[has]
        if not units.size:
            return
        why = self.reason[units]
        m = (why == _R_LOAD) | (why == _R_DRAIN)
        self.st_load[units[m]] += gap[m]
        m = why == _R_STORE
        self.st_store[units[m]] += gap[m]
        m = why == _R_BAR
        self.st_bar[units[m]] += gap[m]
        m = why == _R_ICW
        self.st_ic[units[m]] += gap[m]

    # ------------------------------------------------------------------
    def _retire_lane(self, lane: int, cycle: int) -> None:
        """All cores halted: write back and record the lane's result."""
        self._write_back_lane(lane, idle_cycles=cycle + 1)
        start = self.off_l[lane]
        span = slice(start, start + self.count_l[lane])
        self.outcomes[lane] = LaneOutcome(result=SimulationResult(
            cycles=cycle + 1,
            instructions=int(self.st_instr[span].sum()),
            barrier_episodes=self.barriers[lane].episodes,
        ))
        self._mark_done(lane)

    def _abort_lane(self, lane: int, cycle: int,
                    exc: BaseException) -> None:
        """A fault aborted this lane mid-cycle; mirror progress back."""
        self._accrue_lane(lane, cycle)
        self._write_back_lane(lane, idle_cycles=cycle)
        self.outcomes[lane] = LaneOutcome(error=exc)
        self._mark_done(lane)

    def _timeout_lane(self, lane: int) -> None:
        """Lane still running at the cycle limit: fast-engine timeout."""
        max_cycles = self.max_cycles
        self._accrue_lane(lane, max_cycles)
        self._write_back_lane(lane, idle_cycles=max_cycles)
        self.outcomes[lane] = LaneOutcome(error=SimulationTimeout(
            f"{self.lane_alive[lane]} cores still running after "
            f"{max_cycles} cycles"
        ))
        self._mark_done(lane)

    def _mark_done(self, lane: int) -> None:
        start = self.off_l[lane]
        self.dead_u[start:start + self.count_l[lane]] = True
        self.any_dead = True
        self.lane_done[lane] = True
        self.pending_lanes -= 1

    # ------------------------------------------------------------------
    def _flush_events(self) -> None:
        """Fold the deferred access logs into the counter planes."""
        nlanes = self.nlanes
        bmax = self.bmax
        tmax = self.tmax

        def drain(logs: list, size: int):
            if not logs:
                return None
            keys = logs[0] if len(logs) == 1 else np.concatenate(logs)
            logs.clear()
            return np.bincount(keys, minlength=size)

        hits = drain(self.ev_port_conf, nlanes)
        if hits is not None:
            self.port_conf_l += hits
        hits = drain(self.ev_bank_conf, nlanes * bmax)
        if hits is not None:
            hits = hits.reshape(nlanes, bmax)
            self.b_conf += hits
            self.bank_conf_l += hits.sum(axis=1)
        hits = drain(self.ev_read, nlanes * bmax)
        if hits is not None:
            self.b_reads += hits.reshape(nlanes, bmax)
        hits = drain(self.ev_write, nlanes * bmax)
        if hits is not None:
            self.b_writes += hits.reshape(nlanes, bmax)
        hits = drain(self.ev_local, nlanes * tmax)
        if hits is not None:
            hits = hits.reshape(nlanes, tmax)
            self.local_req += hits
            self.local_acc_l += hits.sum(axis=1)
        hits = drain(self.ev_group, nlanes * tmax)
        if hits is not None:
            hits = hits.reshape(nlanes, tmax)
            self.remote_in += hits
            self.group_acc_l += hits.sum(axis=1)
        hits = drain(self.ev_cluster, nlanes * tmax)
        if hits is not None:
            hits = hits.reshape(nlanes, tmax)
            self.remote_in += hits
            self.cluster_acc_l += hits.sum(axis=1)

        if self.ev_gap_u:
            gu = np.concatenate(self.ev_gap_u)
            gv = np.concatenate(self.ev_gap_v)
            gr = np.concatenate(self.ev_gap_r)
            self.ev_gap_u.clear()
            self.ev_gap_v.clear()
            self.ev_gap_r.clear()
            m = (gr == _R_LOAD) | (gr == _R_DRAIN)
            if m.any():
                np.add.at(self.st_load, gu[m], gv[m])
            m = gr == _R_STORE
            if m.any():
                np.add.at(self.st_store, gu[m], gv[m])
            m = gr == _R_BAR
            if m.any():
                np.add.at(self.st_bar, gu[m], gv[m])
            m = gr == _R_ICW
            if m.any():
                np.add.at(self.st_ic, gu[m], gv[m])

    # ------------------------------------------------------------------
    def _write_back_lane(self, lane: int, idle_cycles: int) -> None:
        """Mirror one lane's SoA state back onto its cluster objects."""
        self._flush_events()
        cluster = self.clusters[lane]
        banks = self.flat_banks_l[lane]
        stride = self.stride_py[lane]
        words = np.flatnonzero(self.dirty[lane])
        values = self.mem_img[lane, words].tolist()
        storages: dict = {}
        for word, value in zip(words.tolist(), values):
            flat = word % stride
            storage = storages.get(flat)
            if storage is None:
                storage = banks[flat]._storage()
                storages[flat] = storage
            storage[word // stride] = value  # already 32-bit masked
        busy = self.bank_busy[lane].tolist()
        reads = self.b_reads[lane].tolist()
        writes = self.b_writes[lane].tolist()
        confs = self.b_conf[lane].tolist()
        for bank, b, rd, wr, cf in zip(banks, busy, reads, writes, confs):
            bank._busy_cycle = b  # property bypass: hot over nbanks
            if rd or wr or cf:
                stats = bank.stats
                if rd:
                    stats.reads += rd
                if wr:
                    stats.writes += wr
                if cf:
                    stats.conflicts += cf
        local_req = self.local_req[lane].tolist()
        remote_in = self.remote_in[lane].tolist()
        for tile_id, tile in enumerate(cluster.tiles):
            if local_req[tile_id]:
                tile.port_stats.local_requests += local_req[tile_id]
            if remote_in[tile_id]:
                tile.port_stats.remote_in_requests += remote_in[tile_id]
        router = cluster.router
        router.stats.local_accesses += int(self.local_acc_l[lane])
        router.stats.group_accesses += int(self.group_acc_l[lane])
        router.stats.cluster_accesses += int(self.cluster_acc_l[lane])
        router.stats.bank_conflicts += int(self.bank_conf_l[lane])
        router.stats.port_conflicts += int(self.port_conf_l[lane])
        router.import_port_state(int(self.port_cur_l[lane]), {
            tile: used
            for tile, used in enumerate(self.port_use[lane].tolist())
            if used
        })
        start = self.off_l[lane]
        span = slice(start, start + self.count_l[lane])
        pcs = self.pc[span].tolist()
        states = self.state[span].tolist()
        stalls = self.stall_until[span].tolist()
        pends = self.pend_reg[span].tolist()
        pdata = self.pend_data[span].tolist()
        hits = self.fetch_hits[span].tolist()
        lasts = self.last_step[span].tolist()
        instr = self.st_instr[span].tolist()
        loads = self.st_load[span].tolist()
        stores = self.st_store[span].tolist()
        bars = self.st_bar[span].tolist()
        ics = self.st_ic[span].tolist()
        branches = self.st_branch[span].tolist()
        conflicts = self.st_conflict[span].tolist()
        for local, core in enumerate(cluster.cores):
            unit = start + local
            pend = pends[local]
            core.import_state({
                "regs": self.regs[unit].tolist(),
                "pc": pcs[local],
                "state": _STATE_BACK[states[local]],
                "stall_until": stalls[local],
                "pending_load_reg": None if pend < 0 else pend,
                "pending_load_data": pdata[local],
                "barrier_release": self.release_u[unit],
            })
            if self.ic_hot_u[unit] and hits[local]:
                self.icaches_u[unit].stats.hits += hits[local]
            stats = core.stats
            if states[local] == _HALTED:
                stats.cycles += lasts[local] + 1
            else:
                stats.cycles += max(lasts[local] + 1, idle_cycles)
            stats.instructions += instr[local]
            stats.load_stall_cycles += loads[local]
            stats.store_stall_cycles += stores[local]
            stats.barrier_stall_cycles += bars[local]
            stats.icache_stall_cycles += ics[local]
            stats.branch_stall_cycles += branches[local]
            stats.conflict_retries += conflicts[local]
