"""Fast-path cluster simulation: SoA stepper with event fast-forward.

A drop-in replacement for the reference cycle-driven
:class:`repro.simulator.engine.Engine` that produces bit-identical results
(cycles, instructions, barrier episodes — and the per-core stall
breakdowns, fabric counters, and SPM contents) while running several
times faster:

* **Structure-of-arrays state.**  Core state lives in parallel arrays
  (program counters, register files, wake-up times, stall counters)
  instead of per-core objects, and SPM words are read through into one
  word-indexed image on first touch, so the hot loop runs without
  attribute churn, dataclass construction, or the router/tile/bank call
  chain of the reference model.
* **Event-driven stepping.**  Every core carries a *wake* time — the next
  cycle at which it can make progress (load return, branch-shadow end,
  barrier release) — and sits in a schedule keyed by that cycle.  Stalled
  cores are never touched; their per-cycle stall accounting is applied in
  bulk when they wake, so the totals match the reference's
  cycle-by-cycle increments exactly.
* **Quiescence fast-forward.**  The clock is the schedule's next event:
  stretches where every active core is stalled on memory or a barrier
  are jumped over instead of ticked through.
* **Hot-i-cache shortcut.**  When a tile i-cache provably cannot miss
  (all program lines resident, no eviction pressure — the paper's "hot
  instruction cache" setup), fetches are counted in bulk instead of
  simulated one lookup at a time.

Equivalence hinges on replicating the reference engine's intra-cycle
order: cores due in the same cycle are visited in ascending core id,
which is exactly the order the reference steps them, so bank-conflict
and remote-port arbitration resolve identically.  Configurations the
fast model does not cover (non-standard cores, custom memory ports or
barriers, non-32-bit words) are detected by :meth:`FastEngine.supports`,
and :func:`repro.simulator.engine.run_cluster` falls back to the
reference engine for them.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush

from ..arch.isa import Op, Program
from ..arch.scoreboard import ScoreboardSnitchCore
from ..arch.snitch import CoreState, SnitchCore
from .engine import SimulationResult, SimulationTimeout

# Integer opcodes of the decoded SoA program image.
(_LI, _ADD, _SUB, _ADDI, _MUL, _MAC, _LW, _SW, _LWP, _SWP, _BNE, _BLT,
 _J, _BARRIER, _CSRR, _NOP, _HALT) = range(17)

_CODE = {
    Op.LI: _LI, Op.ADD: _ADD, Op.SUB: _SUB, Op.ADDI: _ADDI, Op.MUL: _MUL,
    Op.MAC: _MAC, Op.LW: _LW, Op.SW: _SW, Op.LW_POSTINC: _LWP,
    Op.SW_POSTINC: _SWP, Op.BNE: _BNE, Op.BLT: _BLT, Op.J: _J,
    Op.BARRIER: _BARRIER, Op.CSRR_HARTID: _CSRR, Op.NOP: _NOP,
    Op.HALT: _HALT,
}

# Core states, int-coded for the SoA arrays.
_RUN, _WMEM, _WBAR, _HALTED = range(4)
_STATE_BACK = {
    _RUN: CoreState.RUNNING,
    _WMEM: CoreState.WAIT_MEMORY,
    _WBAR: CoreState.WAIT_BARRIER,
    _HALTED: CoreState.HALTED,
}

# Sleep reasons: which stall counter the skipped cycles fold into, and
# whether the reference would have re-fetched (i-cache hit) each cycle.
(_R_NONE, _R_LOAD, _R_STORE, _R_BAR, _R_ICW, _R_HAZ, _R_FULL, _R_FENCE,
 _R_DRAIN) = range(9)

# I-cache handling per core: absent, provably-always-hit, or simulated.
_IC_NONE, _IC_HOT, _IC_SIM = range(3)

_INF = 1 << 62
_MASK = 0xFFFFFFFF


def _always_released() -> bool:
    """Release predicate of an uncoordinated core (no barrier installed)."""
    return True


def _decode(program: Program) -> list[tuple]:
    """Flatten a program into ``(op, rd, rs1, rs2, imm, target, hazard)``
    tuples; ``hazard`` is the bitmask of registers the scoreboard model
    must check against in-flight loads (sources plus destinations)."""
    decoded = []
    for instr in program.instructions:
        hazard = 0
        for reg in ScoreboardSnitchCore._regs_read(instr):
            hazard |= 1 << reg
        for reg in ScoreboardSnitchCore._regs_written(instr):
            hazard |= 1 << reg
        decoded.append((
            _CODE[instr.op], instr.rd, instr.rs1, instr.rs2, instr.imm,
            instr.target, hazard,
        ))
    return decoded


class FastEngine:
    """Runs a loaded cluster to completion on the fast path.

    Same surface as the reference :class:`repro.simulator.engine.Engine`;
    construct only for clusters that :meth:`supports` accepts.

    Args:
        cluster: A cluster with a program loaded via
            :meth:`repro.arch.cluster.MemPoolCluster.load_program`.
        max_cycles: Safety limit; exceeded limits raise
            :class:`~repro.simulator.engine.SimulationTimeout`.
    """

    def __init__(self, cluster, max_cycles: int = 5_000_000) -> None:
        if max_cycles <= 0:
            raise ValueError("cycle limit must be positive")
        if not cluster.cores:
            raise ValueError("cluster has no program loaded")
        self.cluster = cluster
        self.max_cycles = max_cycles
        self.cycle = 0

    # ------------------------------------------------------------------
    @classmethod
    def supports(cls, cluster) -> bool:
        """Whether the fast model covers this cluster bit-for-bit.

        Requires stock :class:`SnitchCore`/:class:`ScoreboardSnitchCore`
        cores in hart-id order, fresh (running, no in-flight state),
        wired to the cluster's own fabric router and barrier, on a
        32-bit-word architecture.  Anything else — subclassed cores, DMA
        engines in the core list, custom memory ports or barriers —
        falls back to the reference engine.
        """
        arch = cluster.arch
        if arch.word_bytes != 4:
            return False
        cores = cluster.cores
        if not cores:
            return False
        router = getattr(cluster, "router", None)
        if router is None or not hasattr(router, "export_port_state"):
            return False
        barrier_arrive = cluster.barrier.arrive
        for index, core in enumerate(cores):
            kind = type(core)
            if kind is not SnitchCore and kind is not ScoreboardSnitchCore:
                return False
            if core.core_id != index or core.state is not CoreState.RUNNING:
                return False
            arrive = core.barrier_arrive
            if arrive is not None and arrive != barrier_arrive:
                return False
            port = core.memory_port
            if getattr(port, "fabric_router", None) is not router:
                return False
            if getattr(port, "fabric_core_id", None) != index:
                return False
            if kind is ScoreboardSnitchCore and core._pending:
                return False
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def _classify_icaches(cores, programs) -> tuple[bool, list[int]]:
        """Per-core i-cache mode, plus whether skipped re-fetches may sleep.

        Returns ``(stable, modes)``.  ``stable`` means no fetched line
        can ever be evicted: each tile i-cache fits its current residents
        plus every line of the programs its cores run, so the re-fetches
        the reference performs during execute-path stalls (scoreboard
        hazard and fence retries) are guaranteed hits and the fast path
        may sleep through them.  A core's mode is :data:`_IC_HOT` when,
        additionally, all of its program lines are already resident — then
        every fetch is a hit and is counted in bulk instead of simulated.
        When ``stable`` does not hold, stall retries are revisited every
        cycle, replaying the reference's exact fetch sequence.
        """
        needed: dict[int, set[int]] = {}
        caches: dict[int, object] = {}
        for core, program in zip(cores, programs):
            icache = core.icache
            if icache is None:
                continue
            end = len(program) * 4
            lines = set(range(0, max(1, (end + icache.line_bytes - 1)
                                     // icache.line_bytes)))
            needed.setdefault(id(icache), set()).update(lines)
            caches[id(icache)] = icache
        stable = True
        for key, lines in needed.items():
            icache = caches[key]
            if len(lines | set(icache.resident_lines())) > icache.num_lines:
                stable = False
        modes = []
        for core, program in zip(cores, programs):
            icache = core.icache
            if icache is None:
                modes.append(_IC_NONE)
            elif stable and needed[id(icache)] <= set(icache.resident_lines()):
                modes.append(_IC_HOT)
            else:
                modes.append(_IC_SIM)
        return stable, modes

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate until every core halts.

        Returns:
            Aggregate cycle/instruction counts, bit-identical to the
            reference engine's.

        Raises:
            SimulationTimeout: If the cycle limit is exceeded.
        """
        cluster = self.cluster
        arch = cluster.arch
        cores = cluster.cores
        n = len(cores)
        barrier = cluster.barrier
        router = cluster.router
        memory_map = cluster.memory_map

        # -- geometry (plain ints for the hot loop) ---------------------
        bpt = arch.banks_per_tile
        ntiles = arch.num_tiles
        cpt = arch.cores_per_tile
        tpg = arch.tiles_per_group
        rports = arch.remote_ports_per_tile
        lat_local = arch.local_latency
        lat_group = arch.group_latency
        lat_cluster = arch.cluster_latency
        spm_bytes = memory_map.spm_bytes
        num_banks = arch.num_banks
        words_stride = bpt * ntiles  # word index -> bank offset divisor

        # -- SPM image and arbitration state ----------------------------
        # The memory image is lazy: words read through from the banks on
        # first touch and write back at the end, so runs pay for their
        # working set, not the full SPM capacity.
        mem: dict[int, int] = {}
        flat_banks = [
            bank for tile in cluster.tiles for bank in tile.spm.banks
        ]
        bank_busy = [bank.busy_cycle for bank in flat_banks]
        b_reads = [0] * num_banks
        b_writes = [0] * num_banks
        b_conf = [0] * num_banks
        port_cur, port_use = router.export_port_state()
        local_req = [0] * ntiles
        remote_in = [0] * ntiles
        local_acc = group_acc = cluster_acc = bank_conf = port_conf = 0

        # -- per-core SoA state ------------------------------------------
        decoded: dict[int, list[tuple]] = {}
        programs = [core.program for core in cores]
        progs = []
        for program in programs:
            cached = decoded.get(id(program))
            if cached is None:
                cached = _decode(program)
                decoded[id(program)] = cached
            progs.append(cached)
        plen = [len(p) for p in progs]
        sb = [type(core) is ScoreboardSnitchCore for core in cores]
        regs = [list(core.regs) for core in cores]
        pc = [core.pc for core in cores]
        state = [_RUN] * n
        wake = [0] * n
        reason = [_R_NONE] * n
        last_step = [-1] * n
        stall_until = [0] * n
        pend_reg: list = [None] * n  # snitch: pending load destination
        pend_data = [0] * n
        pending: list[list] = [[] for _ in range(n)]  # scoreboard loads
        pend_mask = [0] * n
        release: list = [None] * n
        icaches = [core.icache for core in cores]
        store_lat = [getattr(core, "store_latency", 1) for core in cores]
        max_out = [
            getattr(core, "max_outstanding_loads", 0) for core in cores
        ]
        arrives = [core.barrier_arrive for core in cores]
        stable, ic_mode = self._classify_icaches(cores, programs)
        fetch_hits = [0] * n

        # -- per-core stat accumulators ----------------------------------
        st_instr = [0] * n
        st_load = [0] * n
        st_store = [0] * n
        st_bar = [0] * n
        st_ic = [0] * n
        st_branch = [0] * n
        st_conflict = [0] * n

        max_cycles = self.max_cycles
        alive = list(range(n))
        alive_count = n
        cycle = 0

        # -- wake-up schedule ---------------------------------------------
        # Cores due next cycle go straight onto ``queue_next`` (the hot
        # path: one list append).  Longer sleeps land in ``sched[c]``
        # (cycle -> due cores) with ``heap`` holding the distinct cycles,
        # which is what makes quiescent stretches skippable.  Cores
        # waiting on a barrier carry wake == _INF and sit outside the
        # schedule until an arrival or a party reduction releases them.
        sched: dict[int, list[int]] = {0: list(range(n))}
        heap = [0]
        queue_next: list[int] = []

        def push(i, at):
            wake[i] = at
            entry = sched.get(at)
            if entry is None:
                sched[at] = [i]
                heappush(heap, at)
            else:
                entry.append(i)

        # -- fabric routing, inlined -------------------------------------
        def route(at, core_id, address, is_store, value):
            """One request through the fabric; mirrors FabricRouter.access."""
            nonlocal port_cur, local_acc, group_acc, cluster_acc
            nonlocal bank_conf, port_conf
            if address < 0 or address >= spm_bytes:
                raise ValueError(f"address {address:#x} outside SPM")
            if address & 3:
                raise ValueError(f"address {address:#x} is not word-aligned")
            word = address >> 2
            bank = word % bpt
            tile = (word // bpt) % ntiles
            src_tile = core_id // cpt
            if tile != src_tile:
                if at != port_cur:
                    port_use.clear()
                    port_cur = at
                used = port_use.get(tile, 0)
                if used >= rports:
                    port_conf += 1
                    return False, 0, 0
                port_use[tile] = used + 1
            flat_bank = tile * bpt + bank
            if bank_busy[flat_bank] == at:
                b_conf[flat_bank] += 1
                bank_conf += 1
                return False, 0, 0
            bank_busy[flat_bank] = at
            if is_store:
                mem[word] = value & _MASK
                b_writes[flat_bank] += 1
                data = 0
            else:
                data = mem.get(word)
                if data is None:
                    data = flat_banks[flat_bank].peek(word // words_stride)
                    mem[word] = data
                b_reads[flat_bank] += 1
            if tile == src_tile:
                local_req[tile] += 1
                local_acc += 1
                return True, lat_local, data
            remote_in[tile] += 1
            if tile // tpg == src_tile // tpg:
                group_acc += 1
                return True, lat_group, data
            cluster_acc += 1
            return True, lat_cluster, data

        def arrive_at_barrier(i, at, queue):
            """BARRIER retirement: arrive, then wake released waiters.

            Replicates the reference's intra-cycle order: waiters with a
            higher id are stepped after the arriver and run this cycle
            (inserted into the live queue); lower ids already polled and
            resume next cycle.
            """
            arrive = arrives[i]
            state[i] = _WBAR
            reason[i] = _R_BAR
            if arrive is None:
                release[i] = _always_released
                push(i, at + 1)
                return
            released = arrive(i)
            release[i] = released
            if released():
                push(i, at + 1)
                for k in alive:
                    if k != i and state[k] == _WBAR and wake[k] > at:
                        other = release[k]
                        if other is not None and other():
                            if k > i:
                                wake[k] = at
                                insort(queue, k)
                            else:
                                push(k, at + 1)
            else:
                wake[i] = _INF

        # -- main loop ----------------------------------------------------
        try:
            while alive_count:
                if queue_next:
                    cycle += 1
                    entry = sched.pop(cycle, None)
                    if entry is not None:
                        if heap and heap[0] == cycle:
                            heappop(heap)
                        queue_next.extend(entry)
                        queue_next.sort()
                    queue = queue_next
                    queue_next = []
                elif heap:
                    cycle = heappop(heap)
                    queue = sched.pop(cycle)
                    if len(queue) > 1:
                        queue.sort()
                else:
                    cycle = max_cycles  # deadlock: idle-tick to the limit
                    queue = []
                if cycle >= max_cycles:
                    self.cycle = max_cycles
                    self._accrue_timeout(
                        max_cycles, alive, state, last_step, reason, icaches,
                        ic_mode, fetch_hits, st_load, st_store, st_bar, st_ic,
                        st_conflict,
                    )
                    self._write_back(
                        mem, flat_banks, bank_busy, b_reads, b_writes, b_conf,
                        port_cur, port_use, local_req, remote_in, local_acc,
                        group_acc, cluster_acc, bank_conf, port_conf, cores, sb,
                        regs, pc, state, stall_until, pend_reg, pend_data,
                        pending, release, icaches, ic_mode, fetch_hits,
                        last_step, st_instr, st_load, st_store, st_bar, st_ic,
                        st_branch, st_conflict, idle_cycles=max_cycles,
                    )
                    raise SimulationTimeout(
                        f"{alive_count} cores still running after "
                        f"{max_cycles} cycles"
                    )
                halted_now = 0
                for i in queue:
                    # fold the skipped (slept-through) cycles into the stats;
                    # stats.cycles itself needs no accounting — every active
                    # core steps every cycle, so it is its halt cycle + 1,
                    # recovered from last_step at write-back.  A positive gap
                    # always follows a sleep, and every sleep stamps reason,
                    # so the stale-reason reset is unnecessary.
                    gap = cycle - last_step[i] - 1
                    if gap > 0:
                        why = reason[i]
                        if why == _R_LOAD or why == _R_DRAIN:
                            st_load[i] += gap
                        elif why == _R_STORE:
                            st_store[i] += gap
                        elif why == _R_BAR:
                            st_bar[i] += gap
                        elif why == _R_ICW:
                            st_ic[i] += gap
                        else:  # hazard / full scoreboard / fence: re-fetches
                            st_load[i] += gap
                            if why == _R_FULL:
                                st_conflict[i] += gap
                            if ic_mode[i] == _IC_HOT:
                                fetch_hits[i] += gap
                            elif ic_mode[i] == _IC_SIM:
                                icaches[i].stats.hits += gap
                    last_step[i] = cycle

                    regs_i = regs[i]
                    scoreboarded = sb[i]

                    if scoreboarded and pending[i]:
                        # commit loads whose data has arrived
                        loads = pending[i]
                        keep = [rec for rec in loads if rec[0] > cycle]
                        if len(keep) != len(loads):
                            mask = 0
                            for rec in loads:
                                if rec[0] <= cycle:
                                    if rec[1]:
                                        regs_i[rec[1]] = rec[2]
                                else:
                                    mask |= 1 << rec[1]
                            pending[i] = keep
                            pend_mask[i] = mask

                    s = state[i]
                    if s == _WBAR:
                        released = release[i]
                        if released is None or not released():
                            # defensive: behave exactly like a reference poll
                            st_bar[i] += 1
                            reason[i] = _R_BAR
                            wake[i] = _INF
                            continue
                        s = _RUN
                        state[i] = _RUN

                    if not scoreboarded:
                        # ==================== SnitchCore =====================
                        if s == _WMEM:
                            loaded = pend_reg[i]
                            if loaded is not None:
                                if loaded:
                                    regs_i[loaded] = pend_data[i]
                                pend_reg[i] = None
                            state[i] = _RUN
                        p = pc[i]
                        if p >= plen[i]:
                            state[i] = _HALTED
                            wake[i] = _INF
                            halted_now += 1
                            continue
                        icm = ic_mode[i]
                        if icm == _IC_HOT:
                            fetch_hits[i] += 1
                        elif icm == _IC_SIM:
                            penalty = icaches[i].fetch(p << 2)
                            if penalty:
                                st_ic[i] += penalty - 1
                                pend_reg[i] = None
                                state[i] = _WMEM
                                stall_until[i] = cycle + penalty
                                reason[i] = _R_STORE
                                push(i, cycle + penalty)
                                continue
                        code, rd, rs1, rs2, imm, target, _hz = progs[i][p]

                        if code == _LW or code == _LWP or code == _SW \
                                or code == _SWP:
                            # route() inlined: loads and stores dominate the
                            # snitch kernels, so the fabric walk (decode, port
                            # claim, bank arbitration, latency class) runs
                            # without a function call on this path.
                            is_store = code == _SW or code == _SWP
                            if code == _LW or code == _SW:
                                address = (regs_i[rs1] + imm) & _MASK
                            else:
                                address = regs_i[rs1]
                            if address < 0 or address >= spm_bytes:
                                raise ValueError(
                                    f"address {address:#x} outside SPM"
                                )
                            if address & 3:
                                raise ValueError(
                                    f"address {address:#x} is not word-aligned"
                                )
                            word = address >> 2
                            tile = (word // bpt) % ntiles
                            src_tile = i // cpt
                            if tile != src_tile:
                                if cycle != port_cur:
                                    port_use.clear()
                                    port_cur = cycle
                                used = port_use.get(tile, 0)
                                if used >= rports:
                                    port_conf += 1
                                    st_conflict[i] += 1
                                    queue_next.append(i)
                                    continue
                                port_use[tile] = used + 1
                            flat_bank = tile * bpt + word % bpt
                            if bank_busy[flat_bank] == cycle:
                                b_conf[flat_bank] += 1
                                bank_conf += 1
                                st_conflict[i] += 1
                                queue_next.append(i)
                                continue
                            bank_busy[flat_bank] = cycle
                            if is_store:
                                mem[word] = regs_i[rs2] & _MASK
                                b_writes[flat_bank] += 1
                            else:
                                data = mem.get(word)
                                if data is None:
                                    data = flat_banks[flat_bank].peek(
                                        word // words_stride
                                    )
                                    mem[word] = data
                                b_reads[flat_bank] += 1
                            if tile == src_tile:
                                local_req[tile] += 1
                                local_acc += 1
                                lat = lat_local
                            else:
                                remote_in[tile] += 1
                                if tile // tpg == src_tile // tpg:
                                    group_acc += 1
                                    lat = lat_group
                                else:
                                    cluster_acc += 1
                                    lat = lat_cluster
                            if (code == _LWP or code == _SWP) and rs1:
                                regs_i[rs1] = (regs_i[rs1] + imm) & _MASK
                            st_instr[i] += 1
                            pc[i] = p + 1
                            if is_store:
                                latency = store_lat[i]
                                if latency > 1:
                                    pend_reg[i] = None
                                    state[i] = _WMEM
                                    stall_until[i] = cycle + latency
                                    reason[i] = _R_STORE
                                    push(i, cycle + latency)
                                else:
                                    queue_next.append(i)
                            else:
                                pend_reg[i] = rd
                                pend_data[i] = data
                                state[i] = _WMEM
                                stall_until[i] = cycle + lat
                                reason[i] = _R_LOAD
                                push(i, cycle + lat)
                        elif code == _MAC:
                            a = regs_i[rs1]
                            b = regs_i[rs2]
                            if a & 0x80000000:
                                a -= 0x100000000
                            if b & 0x80000000:
                                b -= 0x100000000
                            if rd:
                                regs_i[rd] = (regs_i[rd] + a * b) & _MASK
                            st_instr[i] += 1
                            pc[i] = p + 1
                            queue_next.append(i)
                        elif code == _BNE or code == _BLT:
                            a = regs_i[rs1]
                            b = regs_i[rs2]
                            if a & 0x80000000:
                                a -= 0x100000000
                            if b & 0x80000000:
                                b -= 0x100000000
                            taken = (a != b) if code == _BNE else (a < b)
                            st_instr[i] += 1
                            if taken:
                                st_branch[i] += 1
                                pend_reg[i] = None
                                state[i] = _WMEM
                                stall_until[i] = cycle + 2
                                reason[i] = _R_STORE
                                pc[i] = target
                                push(i, cycle + 2)
                            else:
                                pc[i] = p + 1
                                queue_next.append(i)
                        elif code == _ADD:
                            if rd:
                                regs_i[rd] = (regs_i[rs1] + regs_i[rs2]) & _MASK
                            st_instr[i] += 1
                            pc[i] = p + 1
                            queue_next.append(i)
                        elif code == _ADDI:
                            if rd:
                                regs_i[rd] = (regs_i[rs1] + imm) & _MASK
                            st_instr[i] += 1
                            pc[i] = p + 1
                            queue_next.append(i)
                        elif code == _LI:
                            if rd:
                                regs_i[rd] = imm & _MASK
                            st_instr[i] += 1
                            pc[i] = p + 1
                            queue_next.append(i)
                        elif code == _MUL:
                            a = regs_i[rs1]
                            b = regs_i[rs2]
                            if a & 0x80000000:
                                a -= 0x100000000
                            if b & 0x80000000:
                                b -= 0x100000000
                            if rd:
                                regs_i[rd] = (a * b) & _MASK
                            st_instr[i] += 1
                            pc[i] = p + 1
                            queue_next.append(i)
                        elif code == _SUB:
                            if rd:
                                regs_i[rd] = (regs_i[rs1] - regs_i[rs2]) & _MASK
                            st_instr[i] += 1
                            pc[i] = p + 1
                            queue_next.append(i)
                        elif code == _J:
                            st_instr[i] += 1
                            pc[i] = target
                            queue_next.append(i)
                        elif code == _CSRR:
                            if rd:
                                regs_i[rd] = i
                            st_instr[i] += 1
                            pc[i] = p + 1
                            queue_next.append(i)
                        elif code == _BARRIER:
                            st_instr[i] += 1
                            pc[i] = p + 1
                            arrive_at_barrier(i, cycle, queue)
                        elif code == _NOP:
                            st_instr[i] += 1
                            pc[i] = p + 1
                            queue_next.append(i)
                        else:  # _HALT
                            st_instr[i] += 1
                            state[i] = _HALTED
                            wake[i] = _INF
                            halted_now += 1
                        continue

                    # ================== ScoreboardSnitchCore =================
                    if s == _WMEM:
                        state[i] = _RUN
                    p = pc[i]
                    if p >= plen[i]:
                        if pending[i]:  # drain in-flight loads before halting
                            st_load[i] += 1
                            reason[i] = _R_DRAIN
                            push(i, max(rec[0] for rec in pending[i]))
                            continue
                        state[i] = _HALTED
                        wake[i] = _INF
                        halted_now += 1
                        continue
                    icm = ic_mode[i]
                    if icm == _IC_HOT:
                        fetch_hits[i] += 1
                    elif icm == _IC_SIM:
                        penalty = icaches[i].fetch(p << 2)
                        if penalty:
                            state[i] = _WMEM
                            stall_until[i] = cycle + penalty
                            reason[i] = _R_ICW
                            push(i, cycle + penalty)
                            continue
                    code, rd, rs1, rs2, imm, target, hazard = progs[i][p]
                    mask = pend_mask[i]
                    if mask and (mask & hazard):
                        st_load[i] += 1
                        reason[i] = _R_HAZ
                        push(i, (min(rec[0] for rec in pending[i])
                                 if stable else cycle + 1))
                        continue

                    if code == _LW or code == _LWP:
                        if len(pending[i]) >= max_out[i]:
                            st_load[i] += 1
                            st_conflict[i] += 1
                            reason[i] = _R_FULL
                            push(i, (min(rec[0] for rec in pending[i])
                                     if stable else cycle + 1))
                            continue
                        if code == _LW:
                            address = (regs_i[rs1] + imm) & _MASK
                        else:
                            address = regs_i[rs1]
                        ok, lat, data = route(cycle, i, address, False, 0)
                        if not ok:
                            st_conflict[i] += 1
                            queue_next.append(i)
                            continue
                        if code == _LWP and rs1:
                            regs_i[rs1] = (regs_i[rs1] + imm) & _MASK
                        pending[i].append((cycle + lat, rd, data))
                        pend_mask[i] = mask | (1 << rd)
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _SW or code == _SWP:
                        if code == _SW:
                            address = (regs_i[rs1] + imm) & _MASK
                        else:
                            address = regs_i[rs1]
                        ok, lat, _data = route(cycle, i, address, True,
                                               regs_i[rs2])
                        if not ok:
                            st_conflict[i] += 1
                            queue_next.append(i)
                            continue
                        if code == _SWP and rs1:
                            regs_i[rs1] = (regs_i[rs1] + imm) & _MASK
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _MAC:
                        a = regs_i[rs1]
                        b = regs_i[rs2]
                        if a & 0x80000000:
                            a -= 0x100000000
                        if b & 0x80000000:
                            b -= 0x100000000
                        if rd:
                            regs_i[rd] = (regs_i[rd] + a * b) & _MASK
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _BNE or code == _BLT:
                        a = regs_i[rs1]
                        b = regs_i[rs2]
                        if a & 0x80000000:
                            a -= 0x100000000
                        if b & 0x80000000:
                            b -= 0x100000000
                        taken = (a != b) if code == _BNE else (a < b)
                        st_instr[i] += 1
                        if taken:
                            st_branch[i] += 1
                            state[i] = _WMEM
                            stall_until[i] = cycle + 2
                            reason[i] = _R_ICW
                            pc[i] = target
                            push(i, cycle + 2)
                        else:
                            pc[i] = p + 1
                            queue_next.append(i)
                    elif code == _ADD:
                        if rd:
                            regs_i[rd] = (regs_i[rs1] + regs_i[rs2]) & _MASK
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _ADDI:
                        if rd:
                            regs_i[rd] = (regs_i[rs1] + imm) & _MASK
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _LI:
                        if rd:
                            regs_i[rd] = imm & _MASK
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _MUL:
                        a = regs_i[rs1]
                        b = regs_i[rs2]
                        if a & 0x80000000:
                            a -= 0x100000000
                        if b & 0x80000000:
                            b -= 0x100000000
                        if rd:
                            regs_i[rd] = (a * b) & _MASK
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _SUB:
                        if rd:
                            regs_i[rd] = (regs_i[rs1] - regs_i[rs2]) & _MASK
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _J:
                        st_instr[i] += 1
                        pc[i] = target
                        queue_next.append(i)
                    elif code == _CSRR:
                        if rd:
                            regs_i[rd] = i
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    elif code == _BARRIER:
                        if pending[i]:  # fence: wait for outstanding loads
                            st_load[i] += 1
                            reason[i] = _R_FENCE
                            push(i, (max(rec[0] for rec in pending[i])
                                     if stable else cycle + 1))
                            continue
                        st_instr[i] += 1
                        pc[i] = p + 1
                        arrive_at_barrier(i, cycle, queue)
                    elif code == _NOP:
                        st_instr[i] += 1
                        pc[i] = p + 1
                        queue_next.append(i)
                    else:  # _HALT
                        if pending[i]:  # fence: drain before halting
                            st_load[i] += 1
                            reason[i] = _R_FENCE
                            push(i, (max(rec[0] for rec in pending[i])
                                     if stable else cycle + 1))
                            continue
                        st_instr[i] += 1
                        state[i] = _HALTED
                        wake[i] = _INF
                        halted_now += 1

                # -- end of cycle: prune halted cores, keep the barrier sane
                if halted_now:
                    alive = [k for k in alive if state[k] != _HALTED]
                    alive_count = len(alive)
                    episodes = barrier.episodes
                    barrier.reduce_parties(halted_now)
                    if barrier.episodes != episodes:
                        for k in alive:
                            if state[k] == _WBAR and wake[k] > cycle + 1:
                                released = release[k]
                                if released is not None and released():
                                    push(k, cycle + 1)
        except SimulationTimeout:
            raise
        except Exception:
            # A fault (e.g. a wild or unaligned address) aborts the
            # run mid-cycle.  The reference engine mutates cluster
            # state in place, so mirror the progress made so far
            # back before re-raising; stall attribution *within* the
            # faulting cycle may differ from the reference.
            self.cycle = cycle
            self._accrue_timeout(
                cycle, alive, state, last_step, reason, icaches,
                ic_mode, fetch_hits, st_load, st_store, st_bar, st_ic,
                st_conflict,
            )
            self._write_back(
                mem, flat_banks, bank_busy, b_reads, b_writes, b_conf,
                port_cur, port_use, local_req, remote_in, local_acc,
                group_acc, cluster_acc, bank_conf, port_conf, cores, sb,
                regs, pc, state, stall_until, pend_reg, pend_data,
                pending, release, icaches, ic_mode, fetch_hits,
                last_step, st_instr, st_load, st_store, st_bar, st_ic,
                st_branch, st_conflict, idle_cycles=cycle,
            )
            raise

        self.cycle = cycle + 1
        self._write_back(
            mem, flat_banks, bank_busy, b_reads, b_writes, b_conf, port_cur,
            port_use, local_req, remote_in, local_acc, group_acc,
            cluster_acc, bank_conf, port_conf, cores, sb, regs, pc, state,
            stall_until, pend_reg, pend_data, pending, release, icaches,
            ic_mode, fetch_hits, last_step, st_instr, st_load, st_store,
            st_bar, st_ic, st_branch, st_conflict, idle_cycles=self.cycle,
        )
        return SimulationResult(
            cycles=self.cycle,
            instructions=sum(st_instr),
            barrier_episodes=barrier.episodes,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _accrue_timeout(max_cycles, alive, state, last_step, reason,
                        icaches, ic_mode, fetch_hits, st_load, st_store,
                        st_bar, st_ic, st_conflict) -> None:
        """Fold the idle cycles up to the timeout into the stall stats."""
        for i in alive:
            if state[i] == _HALTED:
                continue
            gap = (max_cycles - 1) - last_step[i]
            if gap <= 0:
                continue
            why = reason[i]
            if why == _R_LOAD or why == _R_DRAIN:
                st_load[i] += gap
            elif why == _R_STORE:
                st_store[i] += gap
            elif why == _R_BAR:
                st_bar[i] += gap
            elif why == _R_ICW:
                st_ic[i] += gap
            elif why in (_R_HAZ, _R_FULL, _R_FENCE):
                st_load[i] += gap
                if why == _R_FULL:
                    st_conflict[i] += gap
                if ic_mode[i] == _IC_HOT:
                    fetch_hits[i] += gap
                elif ic_mode[i] == _IC_SIM:
                    icaches[i].stats.hits += gap

    # ------------------------------------------------------------------
    def _write_back(self, mem, flat_banks, bank_busy, b_reads, b_writes,
                    b_conf, port_cur, port_use, local_req, remote_in,
                    local_acc, group_acc, cluster_acc, bank_conf, port_conf,
                    cores, sb, regs, pc, state, stall_until, pend_reg,
                    pend_data, pending, release, icaches, ic_mode,
                    fetch_hits, last_step, st_instr, st_load, st_store,
                    st_bar, st_ic, st_branch, st_conflict,
                    idle_cycles: int = 0) -> None:
        """Mirror the SoA state back onto the cluster's objects."""
        cluster = self.cluster
        arch = cluster.arch
        words_stride = arch.banks_per_tile * arch.num_tiles
        for word, value in mem.items():
            flat_banks[word % words_stride].poke(word // words_stride, value)
        for flat, bank in enumerate(flat_banks):
            bank.busy_cycle = bank_busy[flat]
            bank.stats.reads += b_reads[flat]
            bank.stats.writes += b_writes[flat]
            bank.stats.conflicts += b_conf[flat]
        for tile_id, tile in enumerate(cluster.tiles):
            tile.port_stats.local_requests += local_req[tile_id]
            tile.port_stats.remote_in_requests += remote_in[tile_id]
        router = cluster.router
        router.stats.local_accesses += local_acc
        router.stats.group_accesses += group_acc
        router.stats.cluster_accesses += cluster_acc
        router.stats.bank_conflicts += bank_conf
        router.stats.port_conflicts += port_conf
        router.import_port_state(port_cur, port_use)
        for i, core in enumerate(cores):
            if sb[i]:
                core.import_state({
                    "regs": regs[i],
                    "pc": pc[i],
                    "state": _STATE_BACK[state[i]],
                    "stall_until": stall_until[i],
                    "pending": list(pending[i]),
                    "barrier_release": release[i],
                })
            else:
                core.import_state({
                    "regs": regs[i],
                    "pc": pc[i],
                    "state": _STATE_BACK[state[i]],
                    "stall_until": stall_until[i],
                    "pending_load_reg": pend_reg[i],
                    "pending_load_data": pend_data[i],
                    "barrier_release": release[i],
                })
            if ic_mode[i] == _IC_HOT and fetch_hits[i]:
                icaches[i].stats.hits += fetch_hits[i]
            stats = core.stats
            # a core is stepped every cycle until it halts, so its cycle
            # count is simply its halt cycle + 1; cores still running at
            # a timeout or fault are charged up to the aborting cycle
            # (inclusive for cores already visited in it)
            if state[i] == _HALTED:
                stats.cycles += last_step[i] + 1
            else:
                stats.cycles += max(last_step[i] + 1, idle_cycles)
            stats.instructions += st_instr[i]
            stats.load_stall_cycles += st_load[i]
            stats.store_stall_cycles += st_store[i]
            stats.barrier_stall_cycles += st_bar[i]
            stats.icache_stall_cycles += st_ic[i]
            stats.branch_stall_cycles += st_branch[i]
            stats.conflict_retries += st_conflict[i]
