"""Simulation statistics collection and reporting."""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.cluster import MemPoolCluster


@dataclass(frozen=True)
class ClusterTrace:
    """Aggregated post-run statistics of a cluster simulation."""

    cycles: int
    instructions: int
    local_accesses: int
    group_accesses: int
    cluster_accesses: int
    bank_conflicts: int
    port_conflicts: int
    icache_hit_rate: float
    barrier_episodes: int

    @property
    def total_accesses(self) -> int:
        """All granted SPM accesses."""
        return self.local_accesses + self.group_accesses + self.cluster_accesses

    @property
    def conflict_rate(self) -> float:
        """Refused-request fraction over all attempts."""
        refused = self.bank_conflicts + self.port_conflicts
        attempts = self.total_accesses + refused
        if not attempts:
            return 0.0
        return refused / attempts

    @property
    def locality_fractions(self) -> tuple[float, float, float]:
        """(local, intra-group, inter-group) access shares."""
        total = self.total_accesses
        if not total:
            return (0.0, 0.0, 0.0)
        return (
            self.local_accesses / total,
            self.group_accesses / total,
            self.cluster_accesses / total,
        )


def collect_trace(cluster: MemPoolCluster, cycles: int) -> ClusterTrace:
    """Snapshot a cluster's statistics after a run of ``cycles`` cycles."""
    router = cluster.router.stats
    hits = sum(t.icache.stats.hits for t in cluster.tiles)
    accesses = sum(t.icache.stats.accesses for t in cluster.tiles)
    hit_rate = hits / accesses if accesses else 1.0
    return ClusterTrace(
        cycles=cycles,
        instructions=sum(c.stats.instructions for c in cluster.cores),
        local_accesses=router.local_accesses,
        group_accesses=router.group_accesses,
        cluster_accesses=router.cluster_accesses,
        bank_conflicts=router.bank_conflicts,
        port_conflicts=router.port_conflicts,
        icache_hit_rate=hit_rate,
        barrier_episodes=cluster.barrier.episodes,
    )
