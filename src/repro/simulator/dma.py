"""DMA engine: bulk off-chip <-> SPM transfers inside the simulation.

MemPool's memory phases stream input tiles from global memory into the
banked SPM.  This engine models that streaming at cycle granularity:
every cycle it moves up to ``bandwidth`` bytes from (or to) the off-chip
channel, writing words into the interleaved banks through their
single-port interface — so DMA traffic *competes with cores* for bank
ports, an effect the analytic phase model cannot capture.

The engine exposes the same ``step(cycle)`` interface as a core, so it
drops into the standard :class:`repro.simulator.engine.Engine` loop via
:class:`DMACore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..arch.cluster import MemPoolCluster
from ..arch.snitch import CoreState


@dataclass
class DMARequest:
    """One queued bulk transfer.

    Attributes:
        spm_address: Byte address in the SPM.
        words: 32-bit words to move.
        to_spm: True for off-chip -> SPM (a load / tile refill).
        data: Words to write (for ``to_spm``); filled with reads otherwise.
    """

    spm_address: int
    words: int
    to_spm: bool
    data: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ValueError("transfer must move at least one word")
        if self.spm_address % 4:
            raise ValueError("transfers must be word-aligned")
        if self.to_spm and len(self.data) != self.words:
            raise ValueError("to-SPM transfer needs one data word per word moved")


@dataclass
class DMAStats:
    """Transfer accounting."""

    words_moved: int = 0
    active_cycles: int = 0
    stall_cycles: int = 0  # bank-port conflicts with cores


class DMACore:
    """A DMA engine that the simulation engine steps like a core.

    Args:
        cluster: The cluster whose SPM is the near side of transfers.
        bandwidth_bytes_per_cycle: Off-chip channel bandwidth.
    """

    def __init__(
        self, cluster: MemPoolCluster, bandwidth_bytes_per_cycle: int = 16
    ) -> None:
        if bandwidth_bytes_per_cycle < 4:
            raise ValueError("bandwidth must be at least one word per cycle")
        self.cluster = cluster
        self.words_per_cycle = bandwidth_bytes_per_cycle // 4
        self.queue: list[DMARequest] = []
        self.stats = DMAStats()
        self.state = CoreState.RUNNING
        self._progress = 0  # words completed of the head request
        #: Engine compatibility (unused; DMA never joins barriers).
        self.barrier_arrive = None

    @property
    def halted(self) -> bool:
        """The DMA 'halts' when its queue drains (engine-compatible)."""
        return not self.queue

    def enqueue(self, request: DMARequest) -> None:
        """Queue a transfer."""
        self.queue.append(request)
        self.state = CoreState.RUNNING

    def step(self, cycle: int) -> None:
        """Move up to one channel-cycle of words through the SPM ports."""
        if not self.queue:
            self.state = CoreState.HALTED
            return
        self.stats.active_cycles += 1
        request = self.queue[0]
        moved = 0
        while moved < self.words_per_cycle and self._progress < request.words:
            address = request.spm_address + 4 * self._progress
            loc = self.cluster.memory_map.decode(address)
            tile = self.cluster.tile(loc.flat_tile(self.cluster.arch))
            if request.to_spm:
                granted, _ = tile.access(
                    cycle, loc.bank, loc.offset, write=True,
                    value=request.data[self._progress], remote=True,
                )
            else:
                granted, data = tile.access(
                    cycle, loc.bank, loc.offset, write=False, remote=True
                )
                if granted:
                    request.data.append(data)
            if not granted:
                self.stats.stall_cycles += 1
                break  # retry the same word next cycle
            self._progress += 1
            moved += 1
            self.stats.words_moved += 1
        if self._progress >= request.words:
            self.queue.pop(0)
            self._progress = 0
            if not self.queue:
                self.state = CoreState.HALTED


def dma_fill(
    cluster: MemPoolCluster,
    spm_address: int,
    data: list[int],
    bandwidth_bytes_per_cycle: int = 16,
    max_cycles: int = 1_000_000,
    dma: Optional[DMACore] = None,
) -> int:
    """Stream ``data`` into the SPM through a DMA engine; returns cycles.

    A convenience wrapper for workload setup that wants cycle-accurate
    refill costs instead of the back-door :meth:`MemPoolCluster.write_words`.
    """
    engine = dma or DMACore(cluster, bandwidth_bytes_per_cycle)
    engine.enqueue(
        DMARequest(spm_address=spm_address, words=len(data), to_spm=True, data=list(data))
    )
    cycle = 0
    while not engine.halted:
        if cycle >= max_cycles:
            raise RuntimeError("DMA transfer did not complete")
        engine.step(cycle)
        cycle += 1
    return cycle
