"""The lint framework: rule registry, file iteration, suppression.

Rules are classes registered in :data:`LINTS` — the sixth registry in
the stack, built on the same :class:`repro.api.registry.Registry` that
backs flows, workloads, objectives, strategies, and backends.  Each
rule sees one parsed file at a time via :meth:`BaseLint.check` and may
emit cross-file findings from :meth:`BaseLint.finalize` after the last
file (REP005 uses this for registry-name collisions).

Findings on a line carrying ``# repro: ignore[REPnnn]`` (or a bare
``# repro: ignore``) are suppressed — the escape hatch for deliberate
violations, mirroring ``# noqa``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..api.registry import Registry
from .findings import Finding

__all__ = [
    "AnalysisReport",
    "BaseLint",
    "LINTS",
    "LintContext",
    "analyze_paths",
    "available_lints",
    "register_lint",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass
class LintContext:
    """Everything a rule gets to look at for one file."""

    path: Path  # as discovered on disk
    relpath: str  # display / suffix-matching form (posix separators)
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)


class BaseLint:
    """A lint rule.  Subclass, set ``rule``/``title``, implement check.

    One instance is created per :func:`analyze_paths` run, so rules may
    accumulate state across files and report it from ``finalize``.
    """

    rule: str = "REP000"
    title: str = ""
    severity: str = "error"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Findings for one parsed file."""
        return ()

    def finalize(self) -> Iterable[Finding]:
        """Cross-file findings, emitted after the last file."""
        return ()

    def finding(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
        hint: str = "",
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            severity=severity or self.severity,
            hint=hint,
        )


def _seed_lints() -> None:
    from . import rules  # noqa: F401  (registers the built-in REP rules)


LINTS = Registry("lint", seed=_seed_lints)


def register_lint(rule_id: str):
    """Class decorator: add a lint rule under ``rule_id``.

    Mirrors ``register_flow``/``register_workload``: duplicate ids are
    rejected, and the decorated class is returned unchanged.
    """

    def _decorator(cls):
        LINTS.register(rule_id, cls)
        return cls

    return _decorator


def available_lints() -> Tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(LINTS.names()))


def iter_python_files(paths: Sequence) -> Iterator[Path]:
    """Yield ``.py`` files under each path, deterministically ordered.

    Directories are walked recursively (``__pycache__`` skipped); plain
    files are yielded as-is.  A missing path raises ``FileNotFoundError``
    so the CLI can exit 2 instead of silently checking nothing.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" in sub.parts:
                    continue
                yield sub
        elif path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class AnalysisReport:
    """The result of one analyzer run."""

    findings: List[Finding]
    files_checked: int
    rules: Tuple[str, ...]

    @property
    def counts(self) -> dict:
        counts = {"error": 0, "warning": 0}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    @property
    def exit_code(self) -> int:
        """0 when clean (warnings allowed), 1 when any error finding."""
        return 1 if self.counts["error"] else 0

    def to_dict(self) -> dict:
        return {
            "rules": list(self.rules),
            "files_checked": self.files_checked,
            "counts": self.counts,
            "findings": [f.to_dict() for f in self.findings],
        }


def _suppressed(finding: Finding, lines_by_path: dict) -> bool:
    lines = lines_by_path.get(finding.path)
    if not lines or not 1 <= finding.line <= len(lines):
        return False
    match = _SUPPRESS_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    listed = match.group("rules")
    if listed is None:
        return True
    return finding.rule in {r.strip() for r in listed.split(",")}


def analyze_paths(
    paths: Sequence,
    rules: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run lint rules over the Python files under ``paths``.

    ``rules`` restricts the run to those ids (``ValueError`` on an
    unknown id); default is every registered rule.  Unparseable files
    produce a ``PARSE`` error finding rather than aborting the run.
    """
    rule_ids = tuple(rules) if rules else available_lints()
    lints = [LINTS.get(rule_id)() for rule_id in rule_ids]

    findings: List[Finding] = []
    lines_by_path: dict = {}
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        relpath = _display_path(path)
        source = path.read_text(encoding="utf-8", errors="replace")
        lines = source.splitlines()
        lines_by_path[relpath] = lines
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="PARSE",
                    message=f"file does not parse: {exc.msg}",
                    hint="fix the syntax error; unparseable files are invisible to every rule",
                )
            )
            continue
        ctx = LintContext(path=path, relpath=relpath, source=source, tree=tree, lines=lines)
        for lint in lints:
            findings.extend(lint.check(ctx))
    for lint in lints:
        findings.extend(lint.finalize())

    findings = [f for f in findings if not _suppressed(f, lines_by_path)]
    findings.sort(key=lambda f: f.sort_key)
    return AnalysisReport(findings=findings, files_checked=files_checked, rules=rule_ids)
