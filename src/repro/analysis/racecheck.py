"""Runtime race detector for the multi-writer cache discipline.

The static rules (REP002) catch writes that textually bypass the
guarded helpers; this module catches the *dynamic* half — a helper
called without its lock held, or two locks taken in inverted order —
by instrumenting the primitives themselves.  ``_FileLock`` and
``atomic_append`` call the ``note_*`` hooks below; when the detector
is off (the default) each hook is a single boolean check, so the hot
append path pays nothing measurable.

Enable with ``REPRO_RACE_CHECK=1`` in the environment (picked up by
every process, including multiprocessing children, which is what makes
the multi-writer tests meaningful) or programmatically via
:func:`enable` / the :func:`checking` context manager.  Violations
raise :class:`RaceError` — loud by design: a detector that logs is a
detector that gets ignored.

What is checked:

* **Unguarded cache-file writes** — ``atomic_append`` (or a sidecar
  replace) on ``results.jsonl``/``stages.jsonl``/``stats.json``
  without the matching ``.lock`` sidecar held by this thread.
* **Lock-order inversions** — acquiring lock *B* while holding *A*
  records the edge A→B; a later acquisition of *A* while holding *B*
  is a cycle, i.e. a latent deadlock between concurrent writers.

State is per-process (the lock-order graph merges edges from all
threads; held-lock stacks are thread-local).  Cross-process inversions
are caught because every process runs the same code paths under the
same env var.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "RaceError",
    "checking",
    "disable",
    "enable",
    "enabled",
    "events",
    "note_acquire",
    "note_append",
    "note_release",
    "note_replace",
    "reset",
]

ENV_VAR = "REPRO_RACE_CHECK"

#: Cache data file → the lock sidecar that must be held to touch it.
GUARDED_FILES = {
    "results.jsonl": "results.lock",
    "stages.jsonl": "stages.lock",
    "stats.json": "stats.lock",
}


class RaceError(AssertionError):
    """A violated concurrency invariant.

    Subclasses ``AssertionError`` so test suites treat it as a hard
    failure even inside ``except Exception`` cleanup paths that re-raise
    assertions.
    """


class _State(threading.local):
    def __init__(self) -> None:
        self.held: List[str] = []


_enabled = os.environ.get(ENV_VAR, "") not in ("", "0")
_local = _State()
_graph_lock = threading.Lock()
#: Directed lock-order edges seen so far: holding key, then acquiring value.
_order_edges: Dict[str, Set[str]] = {}
_events: List[str] = []


def enabled() -> bool:
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop all recorded state (held stacks stay per-thread)."""
    with _graph_lock:
        _order_edges.clear()
        _events.clear()
    _local.held.clear()


def events() -> Tuple[str, ...]:
    """The recorded acquisition/append trace (for diagnostics/tests)."""
    with _graph_lock:
        return tuple(_events)


@contextmanager
def checking() -> Iterator[None]:
    """Enable the detector for a ``with`` block, restoring state after."""
    was = _enabled
    enable()
    try:
        yield
    finally:
        if not was:
            disable()


def _canon(path) -> str:
    return os.path.abspath(os.fspath(path))


def _record(event: str) -> None:
    with _graph_lock:
        _events.append(event)
        if len(_events) > 10_000:  # bounded trace; newest wins
            del _events[:5_000]


def note_acquire(path) -> None:
    """A ``_FileLock`` on ``path`` was just acquired by this thread."""
    if not _enabled:
        return
    lock = _canon(path)
    held = _local.held
    if lock in held:
        # flock is per-open-file-description: a second exclusive acquire
        # of the same sidecar from this thread blocks on itself.
        raise RaceError(
            f"reentrant acquisition of {_short(lock)}: this thread already "
            f"holds it and a second flock would self-deadlock"
        )
    if held:
        holding = held[-1]
        with _graph_lock:
            # Check for a cycle BEFORE recording the new edge: the edge
            # of a rejected acquisition must not poison the graph and
            # condemn the legitimate opposite order afterwards.
            inverted = holding in _reachable(lock) or holding == lock
            if not inverted:
                _order_edges.setdefault(holding, set()).add(lock)
        if inverted:
            raise RaceError(
                f"lock-order inversion: acquiring {_short(lock)} while "
                f"holding {_short(holding)}, but the opposite order was "
                f"recorded earlier — concurrent writers can deadlock "
                f"(held stack: {[_short(h) for h in held]})"
            )
    held.append(lock)
    _record(f"acquire {_short(lock)}")


def note_release(path) -> None:
    """The ``_FileLock`` on ``path`` is being released."""
    if not _enabled:
        return
    lock = _canon(path)
    held = _local.held
    if lock in held:
        held.remove(lock)
    _record(f"release {_short(lock)}")


def note_append(path) -> None:
    """``atomic_append`` is about to write ``path``."""
    _check_guarded(path, "append to")


def note_replace(path) -> None:
    """A sidecar merge is about to atomically replace ``path``."""
    _check_guarded(path, "replace")


def _check_guarded(path, verb: str) -> None:
    if not _enabled:
        return
    target = _canon(path)
    lockname = GUARDED_FILES.get(os.path.basename(target))
    if lockname is None:
        # Appends to non-cache files (progress logs, test scratch) are
        # outside the discipline.
        _record(f"{verb} {_short(target)} (unguarded file, ignored)")
        return
    expected = _canon(Path(target).parent / lockname)
    if expected not in _local.held:
        raise RaceError(
            f"unguarded cache-file write: {verb} {_short(target)} without "
            f"holding {lockname} (held: "
            f"{[_short(h) for h in _local.held] or 'nothing'}) — concurrent "
            f"writers can tear or drop records"
        )
    _record(f"{verb} {_short(target)}")


def _reachable(start: str) -> Set[str]:
    """Locks reachable from ``start`` in the order graph (callers hold
    ``_graph_lock``)."""
    seen: Set[str] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        for nxt in _order_edges.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def _short(path: str) -> str:
    parts = Path(path).parts
    return "/".join(parts[-2:]) if len(parts) >= 2 else path
