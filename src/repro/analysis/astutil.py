"""Shared AST helpers for the analyzers.

The rules need three things over and over: folding a module's imports
into dotted call names (``from time import sleep as s; s()`` resolves to
``time.sleep``), walking a function body without descending into nested
function scopes, and walking a module while tracking the enclosing
function stack.  They live here so each rule stays a short visitor.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Resolves local names through a module's import statements.

    ``import numpy as np`` maps ``np`` to ``numpy``;
    ``from time import sleep as s`` maps ``s`` to ``time.sleep``.
    Relative imports keep their leading dots so they never collide with
    absolute stdlib names.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: dict = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{prefix}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted name of an expression with imports folded in.

        Unimported bare names resolve to themselves (so builtins like
        ``open`` stay matchable); attribute chains rooted in a local
        object (``self.rng.random``) come back with the local root
        intact and therefore never match module-path blocklists.
        """
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return name
        return f"{base}.{rest}" if rest else base


def walk_shallow(body) -> Iterator[ast.AST]:
    """Walk statements/expressions without entering nested scopes.

    Descends through control flow, comprehensions, and class bodies.
    Nested ``def``/``async def``/``lambda`` nodes are *yielded* (so a
    caller can note their existence) but not descended into — those are
    separate scopes and get their own visit.
    """
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def walk_with_scopes(tree: ast.AST) -> Iterator[Tuple[ast.AST, tuple]]:
    """Yield ``(node, enclosing_function_stack)`` for every node.

    The stack holds the ``FunctionDef``/``AsyncFunctionDef`` nodes the
    yielded node sits inside (outermost first); module- and class-level
    nodes get an empty stack.  Class bodies do not extend the stack —
    a registration in a class body is importable at module load, which
    is what the scope-sensitive rules care about.
    """

    def _walk(node: ast.AST, stack: tuple) -> Iterator[Tuple[ast.AST, tuple]]:
        for child in ast.iter_child_nodes(node):
            yield child, stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Decorators evaluate in the *enclosing* scope — a
                # @register_* on a module-level def is a module-level
                # registration, not one inside the decorated function.
                for deco in child.decorator_list:
                    yield deco, stack
                    yield from _walk(deco, stack)
                inner = stack + (child,)
                for stmt in child.body:
                    yield stmt, inner
                    yield from _walk(stmt, inner)
            else:
                yield from _walk(child, stack)

    yield from _walk(tree, ())


def call_mode_arg(node: ast.Call) -> Optional[str]:
    """The ``mode`` argument of an ``open``-style call, if literal."""
    for kw in node.keywords:
        if (
            kw.arg == "mode"
            and isinstance(kw.value, ast.Constant)
            and isinstance(kw.value.value, str)
        ):
            return kw.value.value
    if (
        len(node.args) >= 2
        and isinstance(node.args[1], ast.Constant)
        and isinstance(node.args[1].value, str)
    ):
        return node.args[1].value
    return None
