"""Built-in REP rules.

Importing this package registers every rule in
:data:`repro.analysis.framework.LINTS`; the registry's lazy seed does
exactly that on first lookup, so ``from repro.analysis import rules``
is never needed in user code.
"""

from . import (  # noqa: F401
    rep001_cache_keys,
    rep002_cache_writes,
    rep003_async_blocking,
    rep004_nondeterminism,
    rep005_registry,
    rep006_pickle,
    rep007_obs_names,
    rep008_batch_keys,
    rep009_predictor_purity,
)
