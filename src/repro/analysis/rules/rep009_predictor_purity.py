"""REP009 — predictor functions are pure tier-0.

The analytic tier's whole contract is that a ``@register_predictor``
function is *instant* and *deterministic*: it turns a scenario into
closed-form :class:`~repro.analytic.models.AnalyticTerms` from tiling
and architecture arithmetic alone.  Three defect shapes break that
contract quietly:

* **importing the simulator** (``repro.simulator`` or a relative
  ``..simulator``) from a predictor — the million-point screen silently
  degrades into a tier-1 sweep; nothing fails, the "instant" tier just
  takes hours;
* **nondeterminism** (wall clock, unseeded RNGs, ``uuid``,
  ``os.urandom``) — calibration residuals stop being reproducible and
  the content-addressed calibration store caches garbage;
* **reading fields outside** :meth:`~repro.api.scenario.Scenario.
  cycles_dict` (``flow``, ``target_frequency_mhz``, ``objective``) or
  deriving from a wider view (``to_dict``, ``cache_dict``,
  ``cache_key``, ``physical_dict``, ``physical_key``) — the calibration
  arch-class is keyed on cycles-stage fields only (the REP008
  contract), so a physical-stage dependency makes two scenarios that
  share a calibration predict different cycles.

The rule checks every function decorated with ``register_predictor``
(any import spelling), plus module-level simulator imports in modules
that define predictors.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import ImportMap, dotted_name, walk_shallow
from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint
from .rep004_nondeterminism import _nondeterministic

#: Physical-stage scenario fields — reading one inside a predictor ties
#: a tier-0 prediction to inputs its calibration arch-class ignores.
FORBIDDEN_FIELDS = frozenset({"flow", "target_frequency_mhz", "objective"})

#: Scenario views wider than the cycles stage: deriving from one
#: smuggles every physical-stage field in wholesale.
FORBIDDEN_VIEWS = frozenset({
    "to_dict", "cache_dict", "cache_key", "physical_dict", "physical_key",
})


def _is_simulator_module(module: str) -> bool:
    """True for ``repro.simulator[.x]`` and relative ``.simulator[.x]``."""
    return "simulator" in module.lstrip(".").split(".")


def _predictor_functions(tree: ast.Module) -> Iterable[ast.AST]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = dotted_name(target)
            if name and name.split(".")[-1] == "register_predictor":
                yield node
                break


def _import_findings(node: ast.AST) -> Iterable[str]:
    """Simulator module paths imported by an Import/ImportFrom node."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            if _is_simulator_module(alias.name):
                yield alias.name
    elif isinstance(node, ast.ImportFrom):
        module = "." * node.level + (node.module or "")
        if _is_simulator_module(module):
            yield module


@register_lint("REP009")
class PredictorPurity(BaseLint):
    rule = "REP009"
    title = "predictor functions must be pure tier-0"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        predictors = list(_predictor_functions(ctx.tree))
        if not predictors:
            return
        imports = ImportMap(ctx.tree)
        # A module-level simulator import taints every predictor the
        # module defines: the tier-0 screen pays the import (and any
        # simulation the module does with it) before the first predict.
        for stmt in ctx.tree.body:
            for module in _import_findings(stmt):
                yield self.finding(
                    ctx,
                    stmt,
                    f"module defining predictors imports {module!r}: the "
                    f"analytic tier must stay importable (and instant) "
                    f"without the simulator",
                    hint="predictors compute closed-form terms; move "
                    "simulator-backed measurement into the calibration "
                    "protocol (repro.analytic.calibrate)",
                )
        for func in predictors:
            for node in walk_shallow(func.body):
                for module in _import_findings(node):
                    yield self.finding(
                        ctx,
                        node,
                        f"predictor {func.name!r} imports {module!r}: a "
                        f"tier-0 prediction must not touch the simulator",
                        hint="derive cycles analytically from tiling/arch "
                        "parameters; calibration owns the simulator runs",
                    )
                if isinstance(node, ast.Call):
                    resolved = imports.resolve(node.func)
                    if _nondeterministic(resolved):
                        yield self.finding(
                            ctx,
                            node,
                            f"nondeterministic call {resolved}(...) inside "
                            f"predictor {func.name!r}: calibration "
                            f"residuals and the content-addressed "
                            f"calibration store both require bit-stable "
                            f"predictions",
                            hint="predictor terms may only depend on "
                            "scenario fields and constants",
                        )
                if isinstance(node, ast.Attribute):
                    if node.attr in FORBIDDEN_FIELDS:
                        yield self.finding(
                            ctx,
                            node,
                            f"predictor {func.name!r} reads .{node.attr}, "
                            f"a physical-stage field outside cycles_dict():"
                            f" two scenarios sharing a calibration "
                            f"arch-class would predict different cycles",
                            hint="predictors may read cycles-stage fields "
                            "only (workload, capacity, cores, word size, "
                            "arch overrides, problem size)",
                        )
                    elif node.attr in FORBIDDEN_VIEWS:
                        yield self.finding(
                            ctx,
                            node,
                            f"predictor {func.name!r} derives from "
                            f".{node.attr}, a wider view than "
                            f"cycles_dict(): physical-stage fields leak "
                            f"into the tier-0 model",
                            hint="use cycles_dict() (or individual "
                            "cycles-stage fields) so predictions match "
                            "the calibration arch-class contract",
                        )
