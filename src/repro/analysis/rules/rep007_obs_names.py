"""REP007 — observability name integrity.

Spans and metrics are only as useful as their names: the trace viewer
groups by span name, the metrics registry get-or-creates by metric
name, and Prometheus scrapes reject malformed identifiers.  Three
defect shapes break that quietly:

* a **non-literal name** (f-string, concatenation, variable) defeats
  static auditing — nobody can grep the codebase for the spans a
  dashboard depends on, and a typo ships as a brand-new series instead
  of a lint error (the same argument as REP005's literal registry
  names);
* a **kind collision** — ``metrics.counter("x")`` in one file and
  ``metrics.gauge("x")`` in another — raises ``TypeError`` at runtime,
  but only in the import order that happens to create both, so the
  lint checks the whole tree at once;
* a **malformed metric name** fails the Prometheus exposition format
  (``[a-zA-Z_:][a-zA-Z0-9_:]*``) at scrape time, long after the code
  that minted it shipped.

Files inside ``repro/obs`` itself are exempt: they are the machinery
(names there are forwarded parameters, not call sites).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from ..astutil import ImportMap
from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint

#: Resolved call targets (leading relative dots stripped) → name kind.
OBS_CALLS = {
    "obs.trace.span": "span",
    "obs.metrics.counter": "counter",
    "obs.metrics.gauge": "gauge",
    "obs.metrics.histogram": "histogram",
}

#: The Prometheus exposition grammar for metric identifiers.
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _obs_kind(node: ast.Call, imports: ImportMap) -> Optional[str]:
    """Which observability name this call mints, or ``None``."""
    resolved = imports.resolve(node.func)
    if not resolved:
        return None
    # Relative in-repo imports resolve with leading dots
    # ("..obs.trace.span"): strip them so one suffix match covers both.
    tail = resolved.lstrip(".")
    for target, kind in OBS_CALLS.items():
        if tail == target or tail.endswith(f".{target}"):
            return kind
    return None


def _literal_name(node: ast.Call) -> Optional[str]:
    if (
        node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


def _is_obs_internal(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return "repro/obs/" in normalized


@register_lint("REP007")
class ObservabilityNames(BaseLint):
    rule = "REP007"
    title = "span/metric names must be literal, well-formed, collision-free"

    def __init__(self) -> None:
        # metric name -> (kind, path, line), for cross-file kind clashes.
        self._seen: Dict[str, Tuple[str, str, int]] = {}
        self._collisions: List[Finding] = []

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        if _is_obs_internal(ctx.relpath):
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _obs_kind(node, imports)
            if kind is None:
                continue
            name = _literal_name(node)
            if name is None:
                what = "span" if kind == "span" else f"{kind} metric"
                yield self.finding(
                    ctx,
                    node,
                    f"{what} name is not a string literal; dashboards and "
                    f"the trace viewer cannot be audited statically, and a "
                    f"typo becomes a new series instead of a lint error",
                    hint="pass the name as a literal string (split variants "
                    "into distinct literal names or span attributes)",
                )
                continue
            if kind == "span":
                continue  # span names may repeat; only metrics collide
            if not METRIC_NAME_RE.match(name):
                yield self.finding(
                    ctx,
                    node,
                    f"metric name {name!r} is not a valid Prometheus "
                    f"identifier ([a-zA-Z_:][a-zA-Z0-9_:]*); the text "
                    f"exposition breaks at scrape time",
                    hint="use lowercase snake_case, e.g. 'repro_jobs_total'",
                )
                continue
            site = (kind, ctx.relpath, node.lineno)
            first = self._seen.setdefault(name, site)
            if first[0] != kind:
                self._collisions.append(
                    self.finding(
                        ctx,
                        node,
                        f"metric {name!r} registered as a {kind} here but as "
                        f"a {first[0]} at {first[1]}:{first[2]} "
                        f"(MetricsRegistry raises TypeError at runtime, but "
                        f"only in the import order that creates both)",
                        hint="one kind per metric name; rename one of them",
                    )
                )

    def finalize(self) -> Iterable[Finding]:
        return self._collisions
