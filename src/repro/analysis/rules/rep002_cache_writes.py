"""REP002 — cache-write discipline.

The multi-writer disk tiers stay torn-line- and duplicate-free only
because every byte that lands in ``results.jsonl`` / ``stages.jsonl`` /
``stats.json`` goes through the guarded helpers: a single ``os.write``
on an ``O_APPEND`` fd (``atomic_append``) under the sidecar flock, or
the locked tmp-write + rename in ``_merge_sidecar``.  A raw
``open(..., "w")`` anywhere else can interleave with a concurrent
appender and corrupt the cache for every process sharing it.

A function is flagged when it both *names* a cache data file (string
literal or the ``FILENAME``/``STATS_FILENAME`` constants) and *writes*
(``open``/``Path.open`` in a write mode, ``os.open`` with write flags,
``write_text``), unless it is one of the allowlisted guarded helpers.
Calling ``atomic_append`` directly is flagged regardless of filename —
outside the helpers there is no lock around it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..astutil import ImportMap, call_mode_arg, walk_shallow
from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint

CACHE_FILES = {"results.jsonl", "stages.jsonl", "stats.json",
               "calibrations.jsonl"}
FILE_CONSTANTS = {"FILENAME", "STATS_FILENAME"}
WRITE_MODES = set("wax+")

#: Guarded helpers, keyed by module-path suffix.  Only these may touch
#: the cache data files directly.
ALLOWED_WRITERS = {
    "repro/sweep/cache.py": {"atomic_append", "ResultCache.put"},
    "repro/engine/cache.py": {
        "StageCache._append",
        "_merge_sidecar",
        "cache_clear",
        "cache_gc",
        "_gc_stage_file",
    },
    "repro/analytic/store.py": {"CalibrationStore.put"},
}


def _references_cache_file(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value in CACHE_FILES:
        return True
    if isinstance(node, ast.Attribute) and node.attr in FILE_CONSTANTS:
        return True
    if isinstance(node, ast.Name) and node.id in FILE_CONSTANTS:
        return True
    return False


def _is_write_call(node: ast.Call, imports: ImportMap) -> Optional[str]:
    """A short defect label when ``node`` is a raw write primitive."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode = call_mode_arg(node)
        if mode and WRITE_MODES & set(mode):
            return f"open(..., {mode!r})"
    if isinstance(func, ast.Attribute):
        if func.attr == "open":
            mode = call_mode_arg(node)
            if mode and WRITE_MODES & set(mode):
                return f".open({mode!r})"
        if func.attr == "write_text":
            return ".write_text(...)"
    resolved = imports.resolve(func)
    if resolved == "os.open":
        flags = {
            n.attr if isinstance(n, ast.Attribute) else getattr(n, "id", "")
            for arg in node.args[1:]
            for n in ast.walk(arg)
        }
        if flags & {"O_WRONLY", "O_RDWR", "O_APPEND"}:
            return "os.open(..., O_WRONLY/O_APPEND)"
    return None


def _is_atomic_append_call(node: ast.Call, imports: ImportMap) -> bool:
    resolved = imports.resolve(node.func)
    return bool(resolved) and resolved.split(".")[-1] == "atomic_append"


class _FunctionCollector(ast.NodeVisitor):
    """Collect every function with its dotted qualname."""

    def __init__(self) -> None:
        self.functions: List[Tuple[str, ast.AST]] = []
        self._stack: List[str] = []

    def _visit_scope(self, node) -> None:
        self._stack.append(node.name)
        self.functions.append((".".join(self._stack), node))
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope


@register_lint("REP002")
class CacheWriteDiscipline(BaseLint):
    rule = "REP002"
    title = "cache data files may only be written by the guarded helpers"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        allowed = set()
        for suffix, names in ALLOWED_WRITERS.items():
            if ctx.path.resolve().as_posix().endswith(suffix):
                allowed = names
                break

        collector = _FunctionCollector()
        collector.visit(ctx.tree)
        for qualname, fn in collector.functions:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if qualname in allowed:
                continue
            body_nodes = list(walk_shallow(fn.body))
            references = any(_references_cache_file(n) for n in body_nodes)
            for node in body_nodes:
                if not isinstance(node, ast.Call):
                    continue
                if _is_atomic_append_call(node, imports):
                    yield self.finding(
                        ctx,
                        node,
                        f"{qualname} calls atomic_append directly; outside the "
                        f"guarded helpers nothing holds the sidecar lock",
                        hint="go through ResultCache.put / StageCache._append, "
                        "or hold _FileLock on the matching .lock sidecar",
                    )
                    continue
                label = _is_write_call(node, imports)
                if label and references:
                    yield self.finding(
                        ctx,
                        node,
                        f"{qualname} writes a cache data file via {label} "
                        f"outside the guarded helpers in engine/cache.py",
                        hint="use ResultCache.put / StageCache._append / "
                        "_merge_sidecar; raw writes race concurrent appenders",
                    )
