"""REP006 — worker pickle-safety.

The process and remote backends ship work (and the flow/workload
registries, via ``_picklable_items``) across a pickle boundary.  Pickle
serializes functions *by reference* — ``module.qualname`` — so lambdas
and function-scoped defs do not survive the trip.  Worse, the failure
is silent by design: ``_picklable_items`` drops them from the worker's
registry, so the sweep "works" until a worker actually needs the
missing plugin.

Two defect shapes are flagged:

* a lambda or locally-defined function handed to a pool boundary
  (``submit`` / ``map`` / ``apply_async`` / ``imap*``, or a
  ``Process(target=...)``);
* a lambda or nested def registered as a flow/workload — those two
  registries cross the boundary in the hello protocol (objectives stay
  server-side and are exempt; ``_seed_objectives`` registers lambdas on
  purpose).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..astutil import ImportMap, walk_shallow, walk_with_scopes
from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint

BOUNDARY_METHODS = {"submit", "map", "apply_async", "imap", "imap_unordered"}

#: Registries whose contents are pickled to workers.
SHIPPED_REGISTRARS = {"register_flow": "flow", "register_workload": "workload"}


def _local_def_names(stack: tuple) -> Set[str]:
    """Names bound to nested defs/lambdas in the enclosing functions."""
    names: Set[str] = set()
    for fn in stack:
        for node in walk_shallow(fn.body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _unpicklable_label(arg: ast.expr, locals_: Set[str]) -> Optional[str]:
    if isinstance(arg, ast.Lambda):
        return "a lambda"
    if isinstance(arg, ast.Name) and arg.id in locals_:
        return f"function-scoped def {arg.id!r}"
    return None


def _registrar_kind(node: ast.Call, imports: ImportMap) -> Optional[str]:
    resolved = imports.resolve(node.func)
    if resolved is None:
        return None
    return SHIPPED_REGISTRARS.get(resolved.split(".")[-1])


@register_lint("REP006")
class WorkerPickleSafety(BaseLint):
    rule = "REP006"
    title = "objects crossing the worker boundary must pickle by reference"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        for node, stack in walk_with_scopes(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_boundary_call(ctx, node, stack)
                yield from self._check_registered_lambda(ctx, node, imports, stack)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and stack:
                yield from self._check_nested_registration(ctx, node, imports)

    def _check_boundary_call(self, ctx, node: ast.Call, stack) -> Iterable[Finding]:
        func = node.func
        is_pool_method = (
            isinstance(func, ast.Attribute) and func.attr in BOUNDARY_METHODS
        )
        is_process_ctor = (
            isinstance(func, ast.Name) and func.id == "Process"
        ) or (isinstance(func, ast.Attribute) and func.attr == "Process")
        if not (is_pool_method or is_process_ctor):
            return
        locals_ = _local_def_names(stack)
        candidates = list(node.args[:1] if is_pool_method else ())
        candidates += [kw.value for kw in node.keywords if kw.arg in ("target", "func")]
        for arg in candidates:
            label = _unpicklable_label(arg, locals_)
            if label is None:
                continue
            where = f".{func.attr}" if isinstance(func, ast.Attribute) else func.id
            yield self.finding(
                ctx,
                arg,
                f"{label} crosses the worker boundary via {where}(...): "
                f"pickle serializes functions by reference, so process/remote "
                f"backends cannot reconstruct it",
                hint="move the callable to module level (thread-only pools "
                "may suppress with # repro: ignore[REP006])",
            )

    def _check_registered_lambda(self, ctx, node: ast.Call, imports, stack) -> Iterable[Finding]:
        # Call form: register_workload("name")(lambda s: ...).
        if not isinstance(node.func, ast.Call):
            return
        kind = _registrar_kind(node.func, imports)
        if kind is None:
            return
        if any(fn.name.startswith("_seed") for fn in stack):
            return
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                yield self.finding(
                    ctx,
                    arg,
                    f"lambda registered as {kind}: {kind}s are shipped to "
                    f"workers via pickle and _picklable_items silently drops "
                    f"lambdas, so workers would lack this plugin",
                    hint="register a module-level def instead",
                )

    def _check_nested_registration(self, ctx, fn, imports) -> Iterable[Finding]:
        # Decorator form on a def that lives inside another function.
        for deco in fn.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            resolved = imports.resolve(target)
            if resolved is None:
                continue
            kind = SHIPPED_REGISTRARS.get(resolved.split(".")[-1])
            if kind is None:
                continue
            yield self.finding(
                ctx,
                deco,
                f"function-scoped def {fn.name!r} registered as {kind}: it "
                f"cannot pickle by reference, so process/remote workers "
                f"silently lose it",
                hint="move the def (and its registration) to module level",
            )
