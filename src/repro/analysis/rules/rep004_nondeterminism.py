"""REP004 — no nondeterminism in cache-keyed paths.

Cache keys must be pure functions of the scenario: the same inputs must
hash to the same key in every process, on every run, forever — that is
the whole contract of a content-addressed, multi-process-shared cache.
Wall-clock time, unseeded RNGs, ``uuid``, ``os.urandom``, and the
per-process ``id()``/salted ``hash()`` builtins all break it silently:
the cache still "works", it just never hits (or worse, collides
differently per interpreter).

A function is *keyed scope* when its name says so (``*_key``,
``*_dict``, ``*digest*``) or when it computes a digest (calls into
``hashlib``).  Inside keyed scope, any call into the nondeterministic
set below is an error.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from ..astutil import ImportMap, walk_shallow
from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint

_KEYED_NAME_RE = re.compile(r"(_key(s)?$|_dict$|digest)")

#: Exact dotted names (after import folding) that are nondeterministic.
NONDETERMINISTIC_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "os.getpid",
    "id",
    "hash",
}

#: Module prefixes that are nondeterministic wholesale (module-level
#: ``random.*`` uses the shared unseeded RNG; ``secrets`` is random by
#: definition).  Seeded generators (``np.random.default_rng(seed)``,
#: ``random.Random(seed)``) are bound to locals and resolve with a
#: non-module root, so they never match.
NONDETERMINISTIC_PREFIXES = ("random.", "secrets.")

_SEEDED_EXEMPT = {"random.Random", "numpy.random.default_rng"}


def _is_keyed_scope(fn, imports: ImportMap) -> bool:
    if _KEYED_NAME_RE.search(fn.name):
        return True
    for node in walk_shallow(fn.body):
        if isinstance(node, ast.Call):
            resolved = imports.resolve(node.func)
            if resolved and resolved.split(".")[0] == "hashlib":
                return True
    return False


def _nondeterministic(resolved: Optional[str]) -> bool:
    if resolved is None:
        return False
    if resolved in _SEEDED_EXEMPT:
        return False
    if resolved in NONDETERMINISTIC_CALLS:
        return True
    return resolved.startswith(NONDETERMINISTIC_PREFIXES)


@register_lint("REP004")
class KeyedPathNondeterminism(BaseLint):
    rule = "REP004"
    title = "cache-key computations must be deterministic"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_keyed_scope(node, imports):
                continue
            for stmt in walk_shallow(node.body):
                if not isinstance(stmt, ast.Call):
                    continue
                resolved = imports.resolve(stmt.func)
                if not _nondeterministic(resolved):
                    continue
                yield self.finding(
                    ctx,
                    stmt,
                    f"nondeterministic call {resolved}(...) inside keyed scope "
                    f"{node.name}: the same scenario would hash differently "
                    f"across runs/processes",
                    hint="keys may only depend on scenario fields and "
                    "CODE_MODEL_VERSION; derive randomness from an explicit "
                    "seed field if needed",
                )
