"""REP005 — registry integrity.

The lazy ``repro.*`` surface and the worker hello-protocol both assume
every registration is visible at module import: ``@register_flow`` at
module level runs when the module loads; the same decorator buried in a
function body runs *maybe*, *sometimes*, in *some* processes — workers
spawned before the call silently lack the plugin.  Names must also be
collision-free: ``Registry.register`` raises on duplicates at runtime,
but only in the import order that happens to trigger both, so the lint
checks the whole tree at once.

Allowed exceptions: the registries' own ``_seed*`` functions (they run
exactly once, under the registry lock, before first lookup) and any
function explicitly named ``_seed*`` following that contract.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from ..astutil import ImportMap, walk_with_scopes
from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint

#: ``register_<kind>`` decorator/call names → registry kind.
REGISTER_FUNCS = {
    "register_flow": "flow",
    "register_workload": "workload",
    "register_objective": "objective",
    "register_predictor": "predictor",
    "register_strategy": "strategy",
    "register_backend": "backend",
    "register_lint": "lint",
}

#: Registry globals whose ``.register(name, obj)`` method is the
#: call-form equivalent of the decorators above.
REGISTRY_GLOBALS = {
    "FLOWS": "flow",
    "WORKLOADS": "workload",
    "OBJECTIVES": "objective",
    "PREDICTORS": "predictor",
    "STRATEGIES": "strategy",
    "BACKENDS": "backend",
    "LINTS": "lint",
}


def _registration_kind(node: ast.Call, imports: ImportMap) -> Optional[str]:
    """The registry kind when ``node`` is a registration call."""
    func = node.func
    resolved = imports.resolve(func)
    if resolved:
        tail = resolved.split(".")[-1]
        if tail in REGISTER_FUNCS:
            return REGISTER_FUNCS[tail]
    if isinstance(func, ast.Attribute) and func.attr in ("register", "decorator"):
        root = func.value
        if isinstance(root, ast.Name) and root.id in REGISTRY_GLOBALS:
            return REGISTRY_GLOBALS[root.id]
        if isinstance(root, ast.Attribute) and root.attr in REGISTRY_GLOBALS:
            return REGISTRY_GLOBALS[root.attr]
    return None


def _registered_name(node: ast.Call) -> Optional[str]:
    if (
        node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


def _in_exempt_scope(stack: tuple) -> bool:
    """Seed functions and the ``register_*`` helpers themselves.

    ``_seed*`` runs once under the registry lock before first lookup;
    ``register_<kind>`` wrappers *are* the registration machinery —
    the call site that matters is whoever applies them.
    """
    return any(
        fn.name.startswith("_seed") or fn.name.startswith("register_")
        for fn in stack
    )


@register_lint("REP005")
class RegistryIntegrity(BaseLint):
    rule = "REP005"
    title = "registrations must be import-visible and collision-free"

    def __init__(self) -> None:
        # (kind, name) -> first site, for cross-file collision detection.
        self._seen: Dict[Tuple[str, str], Tuple[str, int]] = {}
        self._collisions: List[Finding] = []

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        for node, stack in walk_with_scopes(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _registration_kind(node, imports)
            if kind is None:
                continue
            if any(fn.name.startswith("register_") for fn in stack):
                # The register_* helpers' own internals: name is a
                # forwarded variable, the real site is their caller.
                continue
            if stack and not _in_exempt_scope(stack):
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} registration inside function "
                    f"{stack[-1].name!r} is invisible to workers and the lazy "
                    f"repro.* surface (it only exists after that call runs)",
                    hint="register at module level, or from a _seed* function "
                    "wired into the Registry constructor",
                )
                continue
            name = _registered_name(node)
            if name is None:
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} registration name is not a string literal; "
                    f"collisions cannot be checked statically",
                    severity="warning",
                    hint="pass the registry name as a literal",
                )
                continue
            site = (ctx.relpath, node.lineno)
            first = self._seen.setdefault((kind, name), site)
            if first != site:
                self._collisions.append(
                    self.finding(
                        ctx,
                        node,
                        f"duplicate {kind} name {name!r}: already registered "
                        f"at {first[0]}:{first[1]} (Registry.register would "
                        f"raise at import time)",
                        hint="pick a unique name; registries reject rebinding",
                    )
                )

    def finalize(self) -> Iterable[Finding]:
        return self._collisions
