"""REP003 — no blocking calls inside ``async def`` bodies.

The service runs on a single asyncio event loop; one ``time.sleep`` or
synchronous disk read in a handler stalls every connected client and
every in-flight job stream.  Blocking work belongs in
``asyncio.to_thread`` (or the runner's worker threads).

The rule checks the statements an ``async def`` owns directly — nested
``def``/``lambda`` bodies are separate scopes (they typically run via
``to_thread``) and nested ``async def`` gets its own visit.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..astutil import ImportMap, call_mode_arg, walk_shallow
from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint

#: Resolved dotted names that block the loop, with the async-native fix.
BLOCKING_CALLS = {
    "time.sleep": "await asyncio.sleep(...)",
    "subprocess.run": "asyncio.create_subprocess_exec(...)",
    "subprocess.call": "asyncio.create_subprocess_exec(...)",
    "subprocess.check_call": "asyncio.create_subprocess_exec(...)",
    "subprocess.check_output": "asyncio.create_subprocess_exec(...)",
    "subprocess.getoutput": "asyncio.create_subprocess_shell(...)",
    "subprocess.getstatusoutput": "asyncio.create_subprocess_shell(...)",
    "subprocess.Popen": "asyncio.create_subprocess_exec(...)",
    "os.system": "asyncio.create_subprocess_shell(...)",
    "os.popen": "asyncio.create_subprocess_shell(...)",
    "socket.create_connection": "asyncio.open_connection(...)",
    "socket.getaddrinfo": "loop.getaddrinfo(...)",
    "socket.gethostbyname": "loop.getaddrinfo(...)",
    "urllib.request.urlopen": "aiohttp or asyncio.to_thread(...)",
    "requests.get": "asyncio.to_thread(...)",
    "requests.post": "asyncio.to_thread(...)",
    "requests.put": "asyncio.to_thread(...)",
    "requests.delete": "asyncio.to_thread(...)",
    "requests.head": "asyncio.to_thread(...)",
    "requests.request": "asyncio.to_thread(...)",
    "http.client.HTTPConnection": "asyncio.open_connection(...)",
}

#: Method names that read/write files synchronously whatever the
#: receiver is (``Path`` and file objects).
BLOCKING_METHODS = {
    "read_text": "await asyncio.to_thread(path.read_text)",
    "write_text": "await asyncio.to_thread(path.write_text)",
    "read_bytes": "await asyncio.to_thread(path.read_bytes)",
    "write_bytes": "await asyncio.to_thread(path.write_bytes)",
}


def _blocking_label(node: ast.Call, imports: ImportMap) -> Optional[tuple]:
    resolved = imports.resolve(node.func)
    if resolved in BLOCKING_CALLS:
        return resolved, BLOCKING_CALLS[resolved]
    if resolved == "open" or (
        isinstance(node.func, ast.Attribute) and node.func.attr == "open"
    ):
        # Sync file I/O on the loop blocks regardless of mode; ``open``
        # resolved through an import alias (e.g. gzip.open) also counts.
        mode = call_mode_arg(node) or "r"
        return f"open(..., {mode!r})", "await asyncio.to_thread(...)"
    if isinstance(node.func, ast.Attribute) and node.func.attr in BLOCKING_METHODS:
        return f".{node.func.attr}(...)", BLOCKING_METHODS[node.func.attr]
    return None


@register_lint("REP003")
class AsyncBlockingCalls(BaseLint):
    rule = "REP003"
    title = "async def bodies must not make blocking calls"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for stmt in walk_shallow(node.body):
                if not isinstance(stmt, ast.Call):
                    continue
                label = _blocking_label(stmt, imports)
                if label is None:
                    continue
                what, instead = label
                yield self.finding(
                    ctx,
                    stmt,
                    f"blocking call {what} inside async def {node.name}: "
                    f"it stalls the event loop for every connected client",
                    hint=f"use {instead}",
                )
