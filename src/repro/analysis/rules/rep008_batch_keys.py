"""REP008 — batch compatibility keys derive only from cycles-keyed fields.

The ``batched`` backend groups scenarios into fleet batches by a
*compatibility key*, and the whole point of the grouping is that two
scenarios sharing a ``cycles_key`` land in the same class and share one
simulation.  That only holds if the key derives exclusively from
:meth:`~repro.api.scenario.Scenario.cycles_dict` fields — the inputs the
cycles stage is cached under.  Two defect shapes break it quietly:

* reading a **physical-stage field** (``flow``, ``target_frequency_mhz``,
  ``objective``) splits classes that should batch together: every flow
  variant re-simulates a cycle count the cache contract says is shared,
  silently destroying the speedup (no test fails — records stay
  correct, only the batching evaporates);
* deriving the key from a **wider dict view** (``to_dict``,
  ``cache_dict``, ``cache_key``) smuggles those same fields in
  wholesale, with the added hazard that a future scenario field changes
  grouping behaviour without anyone touching the batching code.

The rule checks any function whose name contains ``compatibility_key``
(the naming contract of :func:`repro.engine.batch.batch_compatibility_key`
and any future variant): inside one, the fields and views above must not
be read.  ``cycles_dict``/``cycles_key`` are the sanctioned surface.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint

#: Scenario fields outside ``cycles_dict()`` — reading one inside a
#: compatibility-key function splits batches the cache contract merges.
FORBIDDEN_FIELDS = frozenset({"flow", "target_frequency_mhz", "objective"})

#: Dict/key views wider than the cycles stage: using one as the key
#: source inherits every non-cycles field at once.
FORBIDDEN_VIEWS = frozenset({"to_dict", "cache_dict", "cache_key"})


def _key_functions(tree: ast.Module) -> Iterable[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if "compatibility_key" in node.name:
                yield node


@register_lint("REP008")
class BatchCompatibilityKeys(BaseLint):
    rule = "REP008"
    title = "batch compatibility keys must use only cycles_dict fields"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for func in _key_functions(ctx.tree):
            for node in ast.walk(func):
                if not isinstance(node, ast.Attribute):
                    continue
                if node.attr in FORBIDDEN_FIELDS:
                    yield self.finding(
                        ctx,
                        node,
                        f"compatibility-key function {func.name!r} reads "
                        f".{node.attr}, which is outside cycles_dict(): "
                        f"scenarios sharing a cycles_key would land in "
                        f"different batches and re-simulate a cached "
                        f"cycle count",
                        hint="derive the key only from cycles_dict() "
                        "fields (workload, capacity, cores, word size, "
                        "arch overrides)",
                    )
                elif node.attr in FORBIDDEN_VIEWS:
                    yield self.finding(
                        ctx,
                        node,
                        f"compatibility-key function {func.name!r} derives "
                        f"from .{node.attr}, a wider view than "
                        f"cycles_dict(): physical-stage fields (flow, "
                        f"frequency target, objective) leak into the "
                        f"grouping key",
                        hint="build the key from cycles_dict() (or "
                        "cycles_key) so grouping matches the cycles-stage "
                        "cache contract",
                    )
