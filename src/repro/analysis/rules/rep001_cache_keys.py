"""REP001 — cache-key completeness.

The stage-factored cache (PR 5/6) keys physical results on
``physical_dict()`` and cycle results on ``cycles_dict()``; the
canonical key hashes ``cache_dict()``.  A field that reaches *none* of
the three is invisible to memoization: two scenarios differing only in
that field share a cache entry and one of them is served a stale
result.  That is the silent-corruption failure mode this rule exists
for — it fires when someone adds a ``Scenario`` field and forgets to
route it into a stage key.

The rule is structural, not name-bound: any class that defines
``cache_dict`` plus at least one of ``physical_dict``/``cycles_dict``
is treated as a scenario-shaped key provider, so the corpus (and any
future key-bearing type) is checked by the same code as
``repro.api.scenario.Scenario``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..findings import Finding
from ..framework import BaseLint, LintContext, register_lint

#: Fields that only rank/aggregate results and deliberately stay out of
#: every cache key (``objective`` re-ranks cached metrics for free).
RANKING_ONLY = {"objective"}


def _deleted_keys(fn: ast.FunctionDef) -> Set[str]:
    """String keys removed via ``del data["key"]`` inside ``fn``."""
    keys = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _calls_self_method(fn: ast.FunctionDef, method: str) -> bool:
    return any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "self"
        for node in ast.walk(fn)
    )


def _returned_dict_keys(fn: Optional[ast.FunctionDef]) -> Set[str]:
    """Literal string keys of dict literals returned by ``fn``."""
    keys = set()
    if fn is None:
        return keys
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return keys


@register_lint("REP001")
class CacheKeyCompleteness(BaseLint):
    rule = "REP001"
    title = "every Scenario field must reach canonical ∪ physical ∪ cycles key"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: LintContext, cls: ast.ClassDef) -> Iterable[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        if "cache_dict" not in methods:
            return
        if not {"physical_dict", "cycles_dict"} & methods.keys():
            return
        fields = [
            stmt.target.id
            for stmt in cls.body
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
        ]
        if not fields:
            return

        cache_fn = methods["cache_dict"]
        cache_excluded = _deleted_keys(cache_fn)
        for key in sorted(cache_excluded - RANKING_ONLY):
            yield self.finding(
                ctx,
                cache_fn,
                f"{cls.name}.cache_dict drops field {key!r} from the canonical "
                f"cache key without a ranking-only exemption",
                hint="only ranking-only fields (e.g. 'objective') may be deleted "
                "from cache_dict; anything else makes distinct scenarios collide",
            )

        cycles_excluded: Set[str] = set()
        cycles_fn = methods.get("cycles_dict")
        if cycles_fn is not None:
            # cycles_dict typically starts from cache_dict()/to_dict() and
            # deletes physical-only fields; fields it inherits as excluded
            # from cache_dict stay excluded here too.
            if _calls_self_method(cycles_fn, "cache_dict"):
                cycles_excluded |= cache_excluded
            cycles_excluded |= _deleted_keys(cycles_fn)

        physical_keys = _returned_dict_keys(methods.get("physical_dict"))
        for key in sorted(physical_keys - set(fields)):
            yield self.finding(
                ctx,
                methods["physical_dict"],
                f"{cls.name}.physical_dict key {key!r} is not a field of "
                f"{cls.name} (typo or stale key)",
                severity="warning",
                hint="physical_dict keys must name declared fields",
            )

        # A field is covered when it survives into the cycles key or is
        # explicitly listed in the physical key.
        covered = physical_keys | (set(fields) - cycles_excluded)
        for name in fields:
            if name in RANKING_ONLY or name in covered:
                continue
            yield self.finding(
                ctx,
                cls,
                f"{cls.name} field {name!r} reaches neither physical_dict nor "
                f"cycles_dict: stage caches would serve stale results when it "
                f"changes",
                hint=f"add {name!r} to physical_dict or stop deleting it in "
                f"cycles_dict (or mark it ranking-only)",
            )
