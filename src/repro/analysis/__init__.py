"""repro.analysis — repo-aware static analysis and runtime race checks.

Static side: an AST lint framework whose rules live in the ``LINTS``
registry (the sixth registry in the stack) and report structured
:class:`Finding` objects — ``repro check`` is the CLI front end.
Dynamic side: :mod:`repro.analysis.racecheck`, a lock/append tracer the
cache primitives call into when ``REPRO_RACE_CHECK=1``.

Imports are lazy (module ``__getattr__``, same pattern as the top-level
``repro`` package) so that ``repro.sweep.cache`` can import the
stdlib-only ``racecheck`` module without dragging the lint framework —
and its registry seed — into every cache-touching process.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

_EXPORTS = {
    "Finding": ".findings",
    "AnalysisReport": ".framework",
    "BaseLint": ".framework",
    "LINTS": ".framework",
    "LintContext": ".framework",
    "analyze_paths": ".framework",
    "available_lints": ".framework",
    "register_lint": ".framework",
    "RaceError": ".racecheck",
    "racecheck": ".racecheck",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import racecheck  # noqa: F401
    from .findings import Finding  # noqa: F401
    from .framework import (  # noqa: F401
        LINTS,
        AnalysisReport,
        BaseLint,
        LintContext,
        analyze_paths,
        available_lints,
        register_lint,
    )
    from .racecheck import RaceError  # noqa: F401


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(module_name, __name__)
    if name == "racecheck":
        value = module
    else:
        value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__(self=None):
    return sorted(set(globals()) | set(__all__))
