"""Structured findings emitted by the repo-aware analyzers.

A :class:`Finding` is one defect report: where (``path:line:col``), what
(rule id + message), how bad (severity), and how to fix it (hint).  The
CLI renders findings as ``file:line:col: RULE severity: message`` lines
or as the JSON document CI archives; both forms come from here so every
consumer sees the same fields.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: Severities in increasing weight.  ``error`` findings fail
#: ``repro check``; ``warning`` findings are reported but do not gate.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a source location.

    Attributes:
        path: File the finding is in (as displayed; normalized posix).
        line: 1-based source line.
        col: 0-based column offset.
        rule: Rule id (``REP001``..``REP006``, or ``PARSE`` for files
            the framework could not parse).
        message: One-sentence statement of the defect.
        severity: ``"error"`` or ``"warning"``.
        hint: Short fix suggestion (may be empty).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def format(self) -> str:
        """The human-readable one-line form."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (field order preserved)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)
